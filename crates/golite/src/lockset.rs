//! Eraser-style static lockset analysis over the Go-lite CFG.
//!
//! The study attributes most of its Table 3 to plain mutex misuse: fields
//! guarded at some sites and bare at others, two code paths agreeing on
//! *a* lock but not the *same* lock, `sync/atomic` mixed with unannotated
//! accesses, and the classic double-checked-locking idiom. This pass finds
//! those shapes statically:
//!
//! 1. A forward dataflow over each [`FuncCfg`] context computes the set of
//!    locks held at every block entry (meet = intersection, keeping the
//!    weaker mode at a join; `defer Unlock` was already folded in by CFG
//!    construction, so a deferred release simply never leaves the set).
//! 2. Every variable access is annotated with its *effective* lockset: a
//!    `Read`-mode lock (`RLock`) protects reads but not writes, so a write
//!    under `RLock` has an empty effective set even though a lock is held.
//! 3. Accesses are grouped by variable identity — file-wide for globals
//!    and receiver fields, per-function for locals — and each group is
//!    tested against the rules in [`LockRule`].
//!
//! Sharedness is approximated the way Eraser does at warm-up: a variable
//! counts as shared once it is touched from two execution contexts, from a
//! goroutine spawned in a loop (concurrent with itself), or — for globals
//! and fields — once any access bothers to take a lock (the "lock signal":
//! somebody believed this needs protection). Declaration-initializer
//! writes are exempt from race evidence, mirroring Eraser's init phase.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use crate::ast::File;
use crate::cfg::{build_file, BlockId, Event, FuncCfg, LockMode, VarKey};
use crate::resolve::Resolution;
use crate::token::Pos;

/// Locks held at a program point, with the strongest mode held per lock.
pub type Lockset = BTreeMap<VarKey, LockMode>;

/// One annotated variable access, the unit the rules consume.
#[derive(Debug, Clone)]
pub struct AccessRecord {
    /// The accessed variable.
    pub var: VarKey,
    /// Source spelling, for messages.
    pub display: String,
    /// Write vs read.
    pub write: bool,
    /// Performed through `sync/atomic`.
    pub atomic: bool,
    /// Declaration-initializer write (exempt from race evidence).
    pub init: bool,
    /// Branch tag when this is an `if`-condition read.
    pub cond_of: Option<u32>,
    /// The place was reached through an index expression (`m[k]`).
    pub indexed: bool,
    /// Branch tags of the enclosing `if` regions.
    pub branch_tags: Vec<u32>,
    /// Source position.
    pub pos: Pos,
    /// Enclosing function name.
    pub func: String,
    /// Index of the function in the file (context disambiguator).
    pub func_idx: usize,
    /// Execution context within the function (0 = body, else goroutine).
    pub ctx: u32,
    /// The context is a goroutine spawned inside a loop.
    pub ctx_in_loop: bool,
    /// Locks held at the access, with modes, before mode filtering.
    pub raw: Lockset,
}

impl AccessRecord {
    /// Locks that actually protect this access: a `Read`-mode lock excludes
    /// writers only, so it protects reads but not writes.
    #[must_use]
    pub fn effective(&self) -> BTreeSet<VarKey> {
        self.raw
            .iter()
            .filter(|(_, m)| **m == LockMode::Write || !self.write)
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// True when at least one lock protects the access.
    #[must_use]
    pub fn guarded(&self) -> bool {
        !self.effective().is_empty()
    }
}

/// The lockset-derived race rules (Table 3's shared-memory classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockRule {
    /// Guarded at some sites, bare at others.
    MissingLock,
    /// Every site locks, but no common lock exists.
    InconsistentLock,
    /// `sync/atomic` operations mixed with plain accesses.
    AtomicMixedWithPlain,
    /// Unsynchronized fast-path check before a locked re-check.
    DoubleCheckedLocking,
    /// A write while holding only a `Read`-mode lock.
    WriteUnderRlock,
}

/// One finding from the lockset pass.
#[derive(Debug, Clone)]
pub struct LockFinding {
    /// Which rule fired.
    pub rule: LockRule,
    /// The variable the finding is about (lets the interprocedural layer
    /// avoid double-reporting a variable already flagged here).
    pub var: VarKey,
    /// Source position of the offending access.
    pub pos: Pos,
    /// Enclosing function.
    pub func: String,
    /// Human-readable explanation.
    pub message: String,
}

/// Computes the lockset at each block entry of `cfg` by forward fixpoint.
///
/// `None` marks an unreachable block. Each context starts empty at its
/// entry (a goroutine inherits no locks — Go locks are not reentrant and
/// the spawner's critical section does not extend into the child).
#[must_use]
pub fn block_entry_locksets(cfg: &FuncCfg) -> Vec<Option<Lockset>> {
    let mut insets: Vec<Option<Lockset>> = vec![None; cfg.blocks.len()];
    let mut work: VecDeque<BlockId> = VecDeque::new();
    for ctx in &cfg.contexts {
        insets[ctx.entry.0] = Some(Lockset::new());
        work.push_back(ctx.entry);
    }
    while let Some(b) = work.pop_front() {
        let mut out = insets[b.0].clone().unwrap_or_default();
        apply_events(&mut out, &cfg.blocks[b.0].events);
        for &s in &cfg.blocks[b.0].succs {
            let merged = match &insets[s.0] {
                None => out.clone(),
                Some(prev) => meet(prev, &out),
            };
            if insets[s.0].as_ref() != Some(&merged) {
                insets[s.0] = Some(merged);
                work.push_back(s);
            }
        }
    }
    insets
}

fn apply_events(set: &mut Lockset, events: &[Event]) {
    for e in events {
        match e {
            Event::Acquire { lock, mode, .. } => {
                let entry = set.entry(lock.clone()).or_insert(*mode);
                if *mode > *entry {
                    *entry = *mode;
                }
            }
            Event::Release { lock, .. } => {
                set.remove(lock);
            }
            Event::Access { .. } | Event::Call { .. } => {}
        }
    }
}

/// Join operator: a lock survives a merge only if held on both paths, at
/// the weaker of the two modes.
fn meet(a: &Lockset, b: &Lockset) -> Lockset {
    a.iter()
        .filter_map(|(k, ma)| b.get(k).map(|mb| (k.clone(), (*ma).min(*mb))))
        .collect()
}

/// Annotates every access in `cfgs` with its lockset.
#[must_use]
pub fn collect_accesses(cfgs: &[FuncCfg]) -> Vec<AccessRecord> {
    let mut out = Vec::new();
    for (func_idx, cfg) in cfgs.iter().enumerate() {
        let insets = block_entry_locksets(cfg);
        for (bid, block) in cfg.blocks.iter().enumerate() {
            // Unreachable blocks (code after return/break) carry no races.
            let Some(entry) = &insets[bid] else { continue };
            let mut cur = entry.clone();
            let in_loop = cfg.contexts[block.ctx as usize].in_loop;
            for e in &block.events {
                match e {
                    Event::Access {
                        var,
                        display,
                        write,
                        atomic,
                        init,
                        cond_of,
                        indexed,
                        pos,
                    } => out.push(AccessRecord {
                        var: var.clone(),
                        display: display.clone(),
                        write: *write,
                        atomic: *atomic,
                        init: *init,
                        cond_of: *cond_of,
                        indexed: *indexed,
                        branch_tags: block.branch_tags.clone(),
                        pos: *pos,
                        func: cfg.func.clone(),
                        func_idx,
                        ctx: block.ctx,
                        ctx_in_loop: in_loop,
                        raw: cur.clone(),
                    }),
                    _ => apply_events(&mut cur, std::slice::from_ref(e)),
                }
            }
        }
    }
    out
}

/// Grouping key: globals and receiver fields have file-wide identity,
/// locals are per-function.
#[derive(PartialEq, Eq, Hash)]
struct GroupKey {
    func_scope: Option<usize>,
    var: VarKey,
}

/// Runs the lockset analysis over `file` and returns all findings, sorted
/// by source position.
#[must_use]
pub fn analyze_file(file: &File, res: &Resolution) -> Vec<LockFinding> {
    analyze_cfgs(&build_file(file, res))
}

/// Runs the rules over already-built CFGs.
#[must_use]
pub fn analyze_cfgs(cfgs: &[FuncCfg]) -> Vec<LockFinding> {
    analyze_cfgs_scoped(cfgs, &BTreeSet::new())
}

/// Runs the rules over already-built CFGs, excluding the *file-wide* group
/// evidence contributed by the functions in `called` (by index into
/// `cfgs`).
///
/// When the interprocedural layer is active, a function reachable through
/// in-file calls is judged along its call chains — with the caller's locks
/// in effect — by `summary::interproc_findings`, so counting its raw
/// accesses here would produce exactly the false positives the summaries
/// exist to avoid (a write that looks bare but is always made under a
/// caller's lock). Per-access rules (`WriteUnderRlock`), atomic mixing,
/// and double-checked locking stay file-wide: those shapes are wrong
/// regardless of what locks a caller adds. Local-variable groups are
/// never excluded — a caller's lock cannot protect a callee's locals.
#[must_use]
pub fn analyze_cfgs_scoped(cfgs: &[FuncCfg], called: &BTreeSet<usize>) -> Vec<LockFinding> {
    let accesses = collect_accesses(cfgs);
    let mut groups: HashMap<GroupKey, Vec<&AccessRecord>> = HashMap::new();
    for a in &accesses {
        let func_scope = if a.var.is_file_wide() {
            None
        } else {
            Some(a.func_idx)
        };
        groups
            .entry(GroupKey {
                func_scope,
                var: a.var.clone(),
            })
            .or_default()
            .push(a);
    }

    let mut findings = Vec::new();
    for (key, accs) in &groups {
        check_group(&key.var, accs, called, &mut findings);
    }
    findings.sort_by_key(|f| f.pos);
    findings
}

pub(crate) fn lock_names(set: &BTreeSet<VarKey>) -> String {
    let mut names: Vec<String> = set.iter().map(key_display).collect();
    names.sort();
    names.join(", ")
}

pub(crate) fn key_display(k: &VarKey) -> String {
    match &k.root {
        crate::cfg::VarRoot::Global(n) => format!("{n}{}", k.path),
        crate::cfg::VarRoot::Field(t) => format!("{t}{}", k.path),
        crate::cfg::VarRoot::Local(_) => k.path.trim_start_matches('.').to_string(),
    }
}

#[allow(clippy::too_many_lines)]
fn check_group(
    var: &VarKey,
    accs: &[&AccessRecord],
    called: &BTreeSet<usize>,
    findings: &mut Vec<LockFinding>,
) {
    let non_init: Vec<&&AccessRecord> = accs.iter().filter(|a| !a.init).collect();
    if non_init.is_empty() {
        return;
    }
    let display = non_init[0].display.clone();
    // Evidence for the group rules: for a file-wide variable, accesses made
    // by functions that have in-file callers are judged interprocedurally
    // (along their call chains) instead of here.
    let scoped: Vec<&&AccessRecord> = non_init
        .iter()
        .filter(|a| !(var.is_file_wide() && called.contains(&a.func_idx)))
        .copied()
        .collect();

    // Rule: a write while holding only Read-mode locks. Independent of
    // sharedness — holding RLock around a write is wrong on its face.
    let mut rlock_write_positions = BTreeSet::new();
    for a in &non_init {
        if a.write
            && !a.atomic
            && !a.raw.is_empty()
            && a.raw.values().all(|m| *m == LockMode::Read)
        {
            rlock_write_positions.insert(a.pos);
            findings.push(LockFinding {
                rule: LockRule::WriteUnderRlock,
                var: var.clone(),
                pos: a.pos,
                func: a.func.clone(),
                message: format!(
                    "write to '{}' while holding {} in read (RLock) mode; \
                     RLock excludes writers but admits other readers — use Lock",
                    a.display,
                    lock_names(&a.raw.keys().cloned().collect()),
                ),
            });
        }
    }

    if !non_init.iter().any(|a| a.write) {
        // Read-only data cannot race.
        return;
    }

    // Sharedness: two execution contexts, a self-concurrent goroutine, or
    // (for file-wide variables) any access that takes a lock. Judged over
    // the scoped evidence — called functions argue through their chains.
    let ctxs: BTreeSet<(usize, u32)> = scoped.iter().map(|a| (a.func_idx, a.ctx)).collect();
    let self_concurrent = scoped.iter().any(|a| a.ctx != 0 && a.ctx_in_loop);
    let lock_signal = var.is_file_wide() && scoped.iter().any(|a| !a.raw.is_empty());
    let shared = ctxs.len() >= 2 || self_concurrent || lock_signal;

    // Rule: sync/atomic mixed with plain accesses. The atomic call itself
    // is the sharedness signal.
    let atomics: Vec<_> = non_init.iter().filter(|a| a.atomic).collect();
    let plains: Vec<_> = non_init.iter().filter(|a| !a.atomic).collect();
    if !atomics.is_empty() && !plains.is_empty() {
        let a = plains[0];
        findings.push(LockFinding {
            rule: LockRule::AtomicMixedWithPlain,
            var: var.clone(),
            pos: a.pos,
            func: a.func.clone(),
            message: format!(
                "'{}' is accessed with sync/atomic elsewhere but {} plainly here; \
                 atomic operations only synchronize with other atomic operations",
                display,
                if a.write { "written" } else { "read" },
            ),
        });
        return;
    }

    // Rule: double-checked locking — an unguarded if-condition read of the
    // variable whose guarded write sits inside that very branch.
    for r in &non_init {
        if r.write || r.guarded() {
            continue;
        }
        let Some(tag) = r.cond_of else { continue };
        let dcl_write = non_init.iter().any(|w| {
            w.write && w.guarded() && w.func_idx == r.func_idx && w.branch_tags.contains(&tag)
        });
        if dcl_write {
            findings.push(LockFinding {
                rule: LockRule::DoubleCheckedLocking,
                var: var.clone(),
                pos: r.pos,
                func: r.func.clone(),
                message: format!(
                    "double-checked locking on '{display}': the fast-path read is \
                     unsynchronized while the write inside the branch holds a lock; \
                     the unlocked read can observe a partially-initialized value",
                ),
            });
            return;
        }
    }

    if !shared {
        return;
    }

    let guarded: Vec<_> = scoped.iter().filter(|a| a.guarded()).collect();
    let unguarded: Vec<_> = scoped
        .iter()
        .filter(|a| !a.guarded() && !rlock_write_positions.contains(&a.pos))
        .collect();

    if !guarded.is_empty() && !unguarded.is_empty() {
        // Rule: guarded at some sites, bare at others.
        let a = unguarded[0];
        let locks: BTreeSet<VarKey> = guarded
            .iter()
            .flat_map(|g| g.effective().into_iter())
            .collect();
        findings.push(LockFinding {
            rule: LockRule::MissingLock,
            var: var.clone(),
            pos: a.pos,
            func: a.func.clone(),
            message: format!(
                "'{}' is {} without a lock here but guarded by {} elsewhere",
                display,
                if a.write { "written" } else { "read" },
                lock_names(&locks),
            ),
        });
        return;
    }

    if unguarded.is_empty() && guarded.len() >= 2 {
        // Rule: every site locks, but no lock is common to all of them.
        let mut common: Option<BTreeSet<VarKey>> = None;
        for g in &guarded {
            let eff = g.effective();
            common = Some(match common {
                None => eff,
                Some(c) => c.intersection(&eff).cloned().collect(),
            });
        }
        if common.as_ref().is_some_and(BTreeSet::is_empty) {
            let a = guarded[0];
            findings.push(LockFinding {
                rule: LockRule::InconsistentLock,
                var: var.clone(),
                pos: a.pos,
                func: a.func.clone(),
                message: format!(
                    "every access to '{display}' holds a lock, but no single lock is \
                     common to all of them — two sites can still run concurrently",
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;
    use crate::resolve::resolve_file;

    fn analyze(src: &str) -> Vec<LockFinding> {
        let file = parse_file(src).expect("parses");
        let res = resolve_file(&file);
        analyze_file(&file, &res)
    }

    fn rules(src: &str) -> Vec<LockRule> {
        analyze(src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn missing_lock_fires_on_partial_locking() {
        let racy = r"
package p
var version int
func Set(v int) {
    mu.Lock()
    version = v
    mu.Unlock()
}
func Get() int {
    return version
}
";
        assert!(rules(racy).contains(&LockRule::MissingLock), "racy variant");
        let fixed = r"
package p
var version int
func Set(v int) {
    mu.Lock()
    version = v
    mu.Unlock()
}
func Get() int {
    mu.Lock()
    v := version
    mu.Unlock()
    return v
}
";
        assert!(rules(fixed).is_empty(), "fixed variant: {:?}", rules(fixed));
    }

    #[test]
    fn inconsistent_lock_requires_a_common_lock() {
        let racy = r"
package p
var total int
func Add(n int) {
    mu.Lock()
    total = total + n
    mu.Unlock()
}
func Reset() {
    other.Lock()
    total = 0
    other.Unlock()
}
";
        assert!(rules(racy).contains(&LockRule::InconsistentLock));
        let fixed = r"
package p
var total int
func Add(n int) {
    mu.Lock()
    total = total + n
    mu.Unlock()
}
func Reset() {
    mu.Lock()
    total = 0
    mu.Unlock()
}
";
        assert!(rules(fixed).is_empty(), "{:?}", rules(fixed));
    }

    #[test]
    fn atomic_mixed_with_plain() {
        let racy = r"
package p
var ops int
func f() {
    go func() {
        atomic.AddInt64(&ops, 1)
    }()
    if ops > 10 {
        report(ops)
    }
}
";
        assert!(rules(racy).contains(&LockRule::AtomicMixedWithPlain));
        let fixed = r"
package p
var ops int
func f() {
    go func() {
        atomic.AddInt64(&ops, 1)
    }()
    if atomic.LoadInt64(&ops) > 10 {
        report()
    }
}
";
        assert!(rules(fixed).is_empty(), "{:?}", rules(fixed));
    }

    #[test]
    fn double_checked_locking_shape() {
        let racy = r"
package p
var instance int
func Get() int {
    if instance == 0 {
        mu.Lock()
        if instance == 0 {
            instance = build()
        }
        mu.Unlock()
    }
    return instance
}
";
        let rs = rules(racy);
        assert!(rs.contains(&LockRule::DoubleCheckedLocking), "{rs:?}");
        assert!(
            !rs.contains(&LockRule::MissingLock),
            "DCL must subsume MissingLock: {rs:?}"
        );
        let fixed = r"
package p
var instance int
func Get() int {
    mu.Lock()
    defer mu.Unlock()
    if instance == 0 {
        instance = build()
    }
    return instance
}
";
        assert!(rules(fixed).is_empty(), "{:?}", rules(fixed));
    }

    #[test]
    fn write_under_rlock_uses_flow_not_text() {
        let racy = r"
package p
func (s *Store) bump() {
    s.mu.RLock()
    s.count = s.count + 1
    s.mu.RUnlock()
}
";
        assert!(rules(racy).contains(&LockRule::WriteUnderRlock));
        // Write after the RUnlock: not under the read lock any more.
        let sequential = r"
package p
func (s *Store) bump() {
    s.mu.RLock()
    v := s.count
    s.mu.RUnlock()
    s.count = v + 1
}
";
        assert!(!rules(sequential).contains(&LockRule::WriteUnderRlock));
    }

    #[test]
    fn defer_unlock_holds_to_exit() {
        let src = r"
package p
var version int
func Set(v int) {
    mu.Lock()
    defer mu.Unlock()
    if v > 0 {
        version = v
    }
}
func Get() int {
    mu.Lock()
    defer mu.Unlock()
    return version
}
";
        assert!(rules(src).is_empty(), "{:?}", rules(src));
    }

    #[test]
    fn rwmutex_read_write_split_is_fine() {
        // Reads under RLock, writes under Lock: the canonical correct use.
        let src = r"
package p
func (g *Gate) Ready() bool {
    g.mu.RLock()
    defer g.mu.RUnlock()
    return g.ready
}
func (g *Gate) Open() {
    g.mu.Lock()
    defer g.mu.Unlock()
    g.ready = true
}
";
        assert!(rules(src).is_empty(), "{:?}", rules(src));
    }

    #[test]
    fn local_without_goroutine_is_private() {
        let src = r"
package p
func f() {
    count := 0
    for i := 0; i < 10; i++ {
        count = count + 1
    }
    use(count)
}
";
        assert!(rules(src).is_empty(), "{:?}", rules(src));
    }

    #[test]
    fn captured_local_mixed_guarding_fires() {
        let src = r"
package p
func f() {
    count := 0
    go func() {
        mu.Lock()
        count = count + 1
        mu.Unlock()
    }()
    use(count)
}
";
        assert!(rules(src).contains(&LockRule::MissingLock));
    }

    #[test]
    fn branch_join_keeps_only_common_locks() {
        // Lock taken on one arm only: the access after the join is
        // effectively unguarded, making the guarded write elsewhere a mix.
        let src = r"
package p
var n int
func f(c bool) {
    if c {
        mu.Lock()
    }
    n = n + 1
    mu.Unlock()
}
func g() {
    mu.Lock()
    n = 0
    mu.Unlock()
}
";
        assert!(rules(src).contains(&LockRule::MissingLock), "{:?}", rules(src));
    }
}
