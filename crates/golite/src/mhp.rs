//! May-happen-in-parallel facts for goroutine spawns.
//!
//! A goroutine spawned at position `P` runs concurrently with the rest of
//! its spawning function — *until the parent blocks on a join*. The two
//! joins Go-lite models are `WaitGroup.Wait()` (any `x.Wait()` call) and a
//! channel receive (`<-ch`), both of which the study's fix corpus uses to
//! order a spawned computation before a subsequent access. Positions of
//! those **kill points** are collected per function, from the function's
//! own body only: a `Wait` inside a `go` closure or a deferred call does
//! not block the parent at that source position.
//!
//! The relation is deliberately coarse (a kill point inside one `if` arm
//! still counts), erring toward *not* reporting — it gates the
//! interprocedural GR018 rule, where a false "parallel" verdict would file
//! a spurious race report.

use crate::ast::{Decl, Expr, File, Stmt};
use crate::token::Pos;

/// Per-function kill points, aligned with the CFG list of
/// [`build_file`](crate::cfg::build_file) (bodied functions, in
/// declaration order).
#[derive(Debug, Default)]
pub struct Mhp {
    kills: Vec<Vec<Pos>>,
}

impl Mhp {
    /// Collects kill points for every bodied function of `file`.
    #[must_use]
    pub fn build(file: &File) -> Mhp {
        let kills = file
            .decls
            .iter()
            .filter_map(|d| match d {
                Decl::Func(f) => f.body.as_ref().map(|b| {
                    let mut ks = Vec::new();
                    for s in &b.stmts {
                        kill_points(s, &mut ks);
                    }
                    ks.sort_unstable();
                    ks
                }),
                _ => None,
            })
            .collect();
        Mhp { kills }
    }

    /// Kill points of function `func` (CFG index), sorted by position.
    #[must_use]
    pub fn kills_of(&self, func: usize) -> &[Pos] {
        self.kills.get(func).map_or(&[], Vec::as_slice)
    }

    /// May an access at `access` in function `func` run in parallel with a
    /// goroutine spawned at `spawn` in the same function?
    ///
    /// True only when the access follows the spawn with no kill point
    /// strictly between the two: an access textually before the spawn is
    /// sequenced before it, and a `Wait`/receive in between orders the
    /// spawned work before the access.
    #[must_use]
    pub fn may_parallel(&self, func: usize, spawn: Pos, access: Pos) -> bool {
        access > spawn
            && !self
                .kills_of(func)
                .iter()
                .any(|w| *w > spawn && *w < access)
    }
}

/// Walks `s` collecting join positions, skipping closure bodies and the
/// calls of `go`/`defer` statements (they do not block here).
fn kill_points(s: &Stmt, out: &mut Vec<Pos>) {
    match s {
        Stmt::Decl(v) => {
            for e in &v.values {
                expr_kills(e, out);
            }
        }
        Stmt::Define { values, .. } => {
            for e in values {
                expr_kills(e, out);
            }
        }
        Stmt::Assign { lhs, rhs, .. } => {
            for e in lhs.iter().chain(rhs) {
                expr_kills(e, out);
            }
        }
        Stmt::IncDec { expr, .. } => expr_kills(expr, out),
        Stmt::Expr(e) => expr_kills(e, out),
        Stmt::Send { chan, value, .. } => {
            expr_kills(chan, out);
            expr_kills(value, out);
        }
        Stmt::Go { .. } | Stmt::Defer { .. } => {}
        Stmt::Return { values, .. } => {
            for e in values {
                expr_kills(e, out);
            }
        }
        Stmt::If {
            init,
            cond,
            then,
            els,
            ..
        } => {
            if let Some(i) = init {
                kill_points(i, out);
            }
            expr_kills(cond, out);
            for s in &then.stmts {
                kill_points(s, out);
            }
            if let Some(e) = els {
                kill_points(e, out);
            }
        }
        Stmt::Block(b) => {
            for s in &b.stmts {
                kill_points(s, out);
            }
        }
        Stmt::For {
            init,
            cond,
            post,
            range,
            body,
            ..
        } => {
            if let Some(i) = init {
                kill_points(i, out);
            }
            if let Some(c) = cond {
                expr_kills(c, out);
            }
            if let Some(p) = post {
                kill_points(p, out);
            }
            if let Some(r) = range {
                expr_kills(&r.expr, out);
            }
            for s in &body.stmts {
                kill_points(s, out);
            }
        }
        Stmt::Switch { tag, cases, .. } => {
            if let Some(t) = tag {
                expr_kills(t, out);
            }
            for c in cases {
                for e in &c.exprs {
                    expr_kills(e, out);
                }
                for s in &c.body {
                    kill_points(s, out);
                }
            }
        }
        Stmt::Select { cases, .. } => {
            for c in cases {
                if let Some(comm) = &c.comm {
                    kill_points(comm, out);
                }
                for s in &c.body {
                    kill_points(s, out);
                }
            }
        }
        Stmt::Branch { .. } | Stmt::Empty => {}
    }
}

fn expr_kills(e: &Expr, out: &mut Vec<Pos>) {
    match e {
        Expr::Call { func, args, .. } => {
            // `x.Wait()` joins; FuncLit callees (IIFEs) run here, so
            // their bodies are NOT skipped by recursing into `func`
            // would be wrong — but an IIFE body blocking is rare enough
            // to ignore; only the arguments are scanned.
            if let Expr::Selector(_, m) = func.as_ref() {
                if m == "Wait" {
                    if let Some(p) = func.pos() {
                        out.push(p);
                    }
                }
            }
            for a in args {
                expr_kills(a, out);
            }
        }
        Expr::Unary { op: "<-", expr } => {
            if let Some(p) = expr.pos() {
                out.push(p);
            }
            expr_kills(expr, out);
        }
        Expr::Unary { expr, .. } => expr_kills(expr, out),
        Expr::Binary { lhs, rhs, .. } => {
            expr_kills(lhs, out);
            expr_kills(rhs, out);
        }
        Expr::Paren(inner) | Expr::Selector(inner, _) => expr_kills(inner, out),
        Expr::Index(b, i) => {
            expr_kills(b, out);
            expr_kills(i, out);
        }
        Expr::SliceExpr { expr, low, high } => {
            expr_kills(expr, out);
            if let Some(l) = low {
                expr_kills(l, out);
            }
            if let Some(h) = high {
                expr_kills(h, out);
            }
        }
        Expr::CompositeLit { elems, .. } => {
            for (k, v) in elems {
                if let Some(k) = k {
                    expr_kills(k, out);
                }
                expr_kills(v, out);
            }
        }
        // Closure bodies run at an unknown time — never a join here.
        Expr::FuncLit { .. } => {}
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn mhp_of(src: &str) -> Mhp {
        Mhp::build(&parse_file(src).expect("parses"))
    }

    #[test]
    fn wait_between_spawn_and_access_kills_parallelism() {
        let m = mhp_of(
            r"
package p
func Run() {
    go work()
    wg.Wait()
    report(total)
}
",
        );
        assert_eq!(m.kills_of(0).len(), 1);
        let spawn = Pos { line: 4, col: 5 };
        let access = Pos { line: 6, col: 12 };
        assert!(!m.may_parallel(0, spawn, access));
        // Without the Wait the pair is parallel.
        let m2 = mhp_of("package p\nfunc Run() {\n    go work()\n    report(total)\n}\n");
        assert!(m2.may_parallel(0, Pos { line: 3, col: 5 }, Pos { line: 4, col: 12 }));
    }

    #[test]
    fn channel_receive_is_a_kill_point() {
        let m = mhp_of(
            r"
package p
func Run() {
    done := make(chan int)
    go work(done)
    <-done
    report(total)
}
",
        );
        assert_eq!(m.kills_of(0).len(), 1);
        assert!(!m.may_parallel(
            0,
            Pos { line: 5, col: 5 },
            Pos { line: 7, col: 12 }
        ));
    }

    #[test]
    fn waits_inside_goroutines_do_not_count() {
        let m = mhp_of(
            r"
package p
func Run() {
    go func() {
        wg.Wait()
    }()
    report(total)
}
",
        );
        assert!(m.kills_of(0).is_empty());
        // Accesses before the spawn are sequenced, not parallel.
        assert!(!m.may_parallel(0, Pos { line: 6, col: 1 }, Pos { line: 3, col: 1 }));
    }
}
