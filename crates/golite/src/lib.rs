//! **Go-lite**: a compiler frontend for a substantial subset of Go.
//!
//! The study's Table 1 is a *static* experiment: scan a 46-MLoC Go monorepo
//! (and a 19-MLoC Java one) for concurrency-creation, point-to-point
//! synchronization, and group-synchronization constructs, and compare
//! per-MLoC densities. The paper also closes by suggesting its bug patterns
//! "can inspire further research in static race detection for Go" (§5).
//! This crate supplies both pieces for the reproduction:
//!
//! * [`lexer::Lexer`] — a full tokenizer with Go's automatic semicolon
//!   insertion,
//! * [`parser::parse_file`] — a recursive-descent parser building a typed
//!   [`ast`] for packages, declarations, statements (including `go`,
//!   `defer`, `select`, `range`), and expressions (including closures and
//!   composite literals),
//! * [`scan`] — the construct scanner producing Table 1's feature counts,
//! * [`resolve`] — lexical scope resolution (Go's `:=` redeclaration rule,
//!   shadowing, closure capture sets),
//! * [`cfg`] — per-function control-flow graphs with goroutine-spawn edges
//!   and lock/access events,
//! * [`lockset`] — an Eraser-style static lockset dataflow over the CFG,
//! * [`callgraph`] — the file-level call graph over resolved functions,
//!   with per-site lock context, spawn facts, and Tarjan SCCs,
//! * [`summary`] — bottom-up per-function summaries (lock effects, shared
//!   accesses with call chains, escaping-parameter effects) feeding the
//!   interprocedural rules GR013–GR018,
//! * [`mhp`] — may-happen-in-parallel facts from spawn points and
//!   `Wait`/channel-receive join points,
//! * [`lint`] — static race lints for the §4 patterns (loop-variable
//!   capture, `err` capture, named-return capture, `WaitGroup.Add` inside
//!   the goroutine, mutex-by-value, map writes in goroutines) plus the
//!   Table-3 locking rules (missing lock, inconsistent lock, writes under
//!   `RLock`, atomic-mixed-with-plain, double-checked locking),
//! * [`diag`] — stable rule IDs (`GR001`…) rendered as compiler-style
//!   lines or hand-rolled JSON.
//!
//! # Example
//!
//! ```
//! use grs_golite::{lint, parser, scan};
//!
//! let src = r#"
//! package worker
//!
//! func ProcessAll(jobs []int) {
//!     for _, job := range jobs {
//!         go func() {
//!             process(job)
//!         }()
//!     }
//! }
//! "#;
//! let file = parser::parse_file(src).expect("parses");
//! let counts = scan::scan_file(&file);
//! assert_eq!(counts.go_statements, 1);
//! let findings = lint::lint_file(&file);
//! assert!(findings.iter().any(|f| f.rule == lint::Rule::LoopVarCapture));
//! ```

pub mod ast;
pub mod callgraph;
pub mod cfg;
pub mod diag;
pub mod error;
pub mod lexer;
pub mod lint;
pub mod lockset;
pub mod mhp;
pub mod parser;
pub mod resolve;
pub mod scan;
pub mod summary;
pub mod token;

pub use error::ParseError;
pub use lint::{lint_file, Finding, Rule, Severity};
pub use parser::parse_file;
pub use resolve::{resolve_file, Resolution};
pub use scan::{scan_file, scan_source, ConstructCounts};
