//! The Go-lite abstract syntax tree.
//!
//! Nodes carry the [`Pos`] of their first token so scanners and lints can
//! report source locations.

use crate::token::Pos;

/// A parsed source file.
#[derive(Debug, Clone, PartialEq)]
pub struct File {
    /// `package <name>`.
    pub package: String,
    /// Import paths.
    pub imports: Vec<String>,
    /// Top-level declarations.
    pub decls: Vec<Decl>,
}

/// A top-level declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// `func` declaration (possibly a method).
    Func(FuncDecl),
    /// `var` declaration.
    Var(VarDecl),
    /// `const` declaration.
    Const(VarDecl),
    /// `type` declaration.
    Type(TypeDecl),
}

/// A function or method declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Position of the `func` keyword.
    pub pos: Pos,
    /// Method receiver, when present.
    pub receiver: Option<Param>,
    /// Function name.
    pub name: String,
    /// The signature.
    pub sig: Signature,
    /// The body (absent for external declarations).
    pub body: Option<Block>,
}

/// A function signature.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Signature {
    /// Parameters.
    pub params: Vec<Param>,
    /// Results; named results have non-empty names (the "named return"
    /// feature behind Listings 3–4).
    pub results: Vec<Param>,
}

impl Signature {
    /// True when any result parameter is named.
    #[must_use]
    pub fn has_named_results(&self) -> bool {
        self.results.iter().any(|r| !r.name.is_empty())
    }
}

/// A parameter / result / receiver: `name Type` (name may be empty).
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name (may be empty or `_`).
    pub name: String,
    /// The type.
    pub ty: Type,
}

/// A `var`/`const` declaration (possibly multi-name).
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Position of the keyword.
    pub pos: Pos,
    /// Declared names.
    pub names: Vec<String>,
    /// Declared type, when explicit.
    pub ty: Option<Type>,
    /// Initializer expressions.
    pub values: Vec<Expr>,
}

/// A `type` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeDecl {
    /// Position of the keyword.
    pub pos: Pos,
    /// Type name.
    pub name: String,
    /// Underlying type.
    pub ty: Type,
}

/// A Go-lite type.
#[derive(Debug, Clone, PartialEq)]
pub enum Type {
    /// `int`, `MyStruct`, `pkg.Type`.
    Name(String),
    /// `*T`.
    Pointer(Box<Type>),
    /// `[]T`.
    Slice(Box<Type>),
    /// `[N]T` (size kept as text).
    Array(String, Box<Type>),
    /// `map[K]V`.
    Map(Box<Type>, Box<Type>),
    /// `chan T` / `<-chan T` / `chan<- T`.
    Chan(ChanDir, Box<Type>),
    /// `func(params) results`.
    Func(Box<Signature>),
    /// `struct { fields }`.
    Struct(Vec<Param>),
    /// `interface { ... }` (methods elided).
    Interface,
}

impl Type {
    /// The dotted name when this is a (possibly qualified) named type.
    #[must_use]
    pub fn name(&self) -> Option<&str> {
        match self {
            Type::Name(n) => Some(n),
            _ => None,
        }
    }
}

/// Channel direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChanDir {
    /// `chan T`.
    Both,
    /// `<-chan T`.
    Recv,
    /// `chan<- T`.
    Send,
}

/// A `{ ... }` statement block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// Statements, in order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local `var`/`const` declaration.
    Decl(VarDecl),
    /// `lhs := rhs` (short variable declaration).
    Define {
        /// Position.
        pos: Pos,
        /// Left-hand names.
        names: Vec<String>,
        /// Right-hand expressions.
        values: Vec<Expr>,
    },
    /// `lhs = rhs` or compound (`+=` etc.).
    Assign {
        /// Position.
        pos: Pos,
        /// Targets.
        lhs: Vec<Expr>,
        /// Operator spelling (`"="`, `"+="`, ...).
        op: &'static str,
        /// Sources.
        rhs: Vec<Expr>,
    },
    /// `x++` / `x--`.
    IncDec {
        /// Position.
        pos: Pos,
        /// Target.
        expr: Expr,
        /// `true` for `++`.
        inc: bool,
    },
    /// Bare expression (usually a call).
    Expr(Expr),
    /// `ch <- v`.
    Send {
        /// Position.
        pos: Pos,
        /// Channel expression.
        chan: Expr,
        /// Value expression.
        value: Expr,
    },
    /// `go f(...)`.
    Go {
        /// Position of `go`.
        pos: Pos,
        /// The call expression.
        call: Expr,
    },
    /// `defer f(...)`.
    Defer {
        /// Position of `defer`.
        pos: Pos,
        /// The call expression.
        call: Expr,
    },
    /// `return [exprs]`.
    Return {
        /// Position.
        pos: Pos,
        /// Returned values (empty = naked return).
        values: Vec<Expr>,
    },
    /// `if [init;] cond { } [else ...]`.
    If {
        /// Position.
        pos: Pos,
        /// Optional init statement.
        init: Option<Box<Stmt>>,
        /// Condition.
        cond: Expr,
        /// Then-block.
        then: Block,
        /// Else branch (block or nested if).
        els: Option<Box<Stmt>>,
    },
    /// Bare block `{ ... }` (also used for else-blocks).
    Block(Block),
    /// Any of Go's `for` forms.
    For {
        /// Position.
        pos: Pos,
        /// `for init; cond; post { }` pieces (all optional).
        init: Option<Box<Stmt>>,
        /// Loop condition (absent = infinite or range).
        cond: Option<Expr>,
        /// Post statement.
        post: Option<Box<Stmt>>,
        /// `for k, v := range x` clause, when present.
        range: Option<RangeClause>,
        /// The body.
        body: Block,
    },
    /// `switch [init;] [tag] { cases }` (simplified: cases hold plain
    /// statement lists).
    Switch {
        /// Position.
        pos: Pos,
        /// The tag expression, when present.
        tag: Option<Expr>,
        /// Case clauses.
        cases: Vec<CaseClause>,
    },
    /// `select { comm cases }`.
    Select {
        /// Position.
        pos: Pos,
        /// Communication clauses.
        cases: Vec<CommClause>,
    },
    /// `break` / `continue` / `fallthrough` / `goto L` (identifier kept).
    Branch {
        /// Position.
        pos: Pos,
        /// The keyword spelling.
        kind: &'static str,
        /// Optional label.
        label: Option<String>,
    },
    /// An empty statement (stray semicolon).
    Empty,
}

/// The `k, v := range x` clause of a range-for.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeClause {
    /// Key variable (may be `_` or empty).
    pub key: String,
    /// Value variable (may be empty).
    pub value: String,
    /// Whether `:=` (define) or `=` (assign) was used.
    pub define: bool,
    /// The ranged expression.
    pub expr: Expr,
}

/// One `case`/`default` clause of a switch.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseClause {
    /// Case expressions (empty = `default`).
    pub exprs: Vec<Expr>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// One communication clause of a `select`.
#[derive(Debug, Clone, PartialEq)]
pub struct CommClause {
    /// The communication statement (`<-ch`, `v := <-ch`, `ch <- v`), or
    /// `None` for `default`.
    pub comm: Option<Box<Stmt>>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Identifier.
    Ident(Pos, String),
    /// Integer literal.
    Int(Pos, String),
    /// Float literal.
    Float(Pos, String),
    /// String literal.
    Str(Pos, String),
    /// Rune literal.
    Rune(Pos, String),
    /// `x.sel`.
    Selector(Box<Expr>, String),
    /// `f(args...)`; `spread` marks a trailing `...`.
    Call {
        /// Callee.
        func: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
        /// Trailing `...`.
        spread: bool,
    },
    /// `x[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// `x[a:b]` (either bound optional).
    SliceExpr {
        /// Sliced expression.
        expr: Box<Expr>,
        /// Low bound.
        low: Option<Box<Expr>>,
        /// High bound.
        high: Option<Box<Expr>>,
    },
    /// Unary operation (`-x`, `!x`, `*p`, `&v`, `<-ch`).
    Unary {
        /// Operator spelling.
        op: &'static str,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator spelling.
        op: &'static str,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `func(params) results { body }` — a closure.
    FuncLit {
        /// Position of `func`.
        pos: Pos,
        /// Signature.
        sig: Box<Signature>,
        /// Body.
        body: Block,
    },
    /// `T{elems...}` composite literal (keyed elements keep their keys).
    CompositeLit {
        /// The literal's type, when syntactically present.
        ty: Option<Box<Type>>,
        /// Elements (keyed as `key: value` pairs or bare values).
        elems: Vec<(Option<Expr>, Expr)>,
    },
    /// A parenthesized expression.
    Paren(Box<Expr>),
    /// A type used in expression position (conversions like `[]byte(s)`).
    TypeExpr(Box<Type>),
}

impl Expr {
    /// The position of the expression's first token, when tracked.
    #[must_use]
    pub fn pos(&self) -> Option<Pos> {
        match self {
            Expr::Ident(p, _)
            | Expr::Int(p, _)
            | Expr::Float(p, _)
            | Expr::Str(p, _)
            | Expr::Rune(p, _)
            | Expr::FuncLit { pos: p, .. } => Some(*p),
            Expr::Selector(e, _)
            | Expr::Index(e, _)
            | Expr::Paren(e)
            | Expr::SliceExpr { expr: e, .. } => e.pos(),
            Expr::Call { func, .. } => func.pos(),
            Expr::Unary { expr, .. } => expr.pos(),
            Expr::Binary { lhs, .. } => lhs.pos(),
            Expr::CompositeLit { .. } | Expr::TypeExpr(_) => None,
        }
    }

    /// The identifier name when this is a bare identifier.
    #[must_use]
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            Expr::Ident(_, n) => Some(n),
            _ => None,
        }
    }

    /// Renders a selector chain like `wg.Add` as dotted text, when the
    /// expression is exactly an identifier or selector chain.
    #[must_use]
    pub fn dotted(&self) -> Option<String> {
        match self {
            Expr::Ident(_, n) => Some(n.clone()),
            Expr::Selector(base, sel) => Some(format!("{}.{}", base.dotted()?, sel)),
            _ => None,
        }
    }
}
