//! Intraprocedural control-flow graphs over the Go-lite AST.
//!
//! The CFG is built per function declaration, with one **context** per
//! execution thread the function creates: context 0 is the function's own
//! body, and every `go func(){...}(...)` statement spawns a fresh context
//! whose entry block is connected to the spawning block by a spawn edge.
//! Blocks carry *events* — the only facts the lockset pass needs:
//!
//! * [`Event::Acquire`]/[`Event::Release`] for `x.Lock()`, `x.Unlock()`,
//!   `x.RLock()`, `x.RUnlock()` (a `defer x.Unlock()` simply never emits a
//!   release, which models "held to the end of the function" exactly),
//! * [`Event::Access`] for reads/writes of trackable variables, with an
//!   `atomic` flag for `sync/atomic` calls and a `cond_of` tag linking a
//!   read to the `if` branch it guards (the double-checked-locking shape),
//! * [`Event::Call`] for calls that resolve within the file (named
//!   functions, receiver methods, function-typed parameters) — the raw
//!   material of the interprocedural layer in
//!   [`callgraph`](crate::callgraph) and [`summary`](crate::summary).
//!
//! Variable identity comes from [`resolve`](crate::resolve): a package-level
//! variable keys the same in every function of the file, a receiver field
//! keys by *receiver type* (so `(g *Gate) get` and `(g *Gate) set` meet),
//! and locals key by their resolved symbol — two locals that shadow each
//! other never collide.

use crate::ast::{Block, Decl, Expr, File, FuncDecl, Stmt, Type};
use crate::resolve::{Resolution, SymbolId, SymbolKind};
use crate::token::Pos;

/// Index into [`FuncCfg::blocks`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockId(pub usize);

/// How a lock is held.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockMode {
    /// `RLock` — excludes writers only.
    Read,
    /// `Lock` — exclusive.
    Write,
}

/// The root of a place expression.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VarRoot {
    /// A package-level variable, keyed by name (file-wide identity).
    Global(String),
    /// A field chain on a method receiver, keyed by the receiver's type
    /// name (so all methods of one type agree).
    Field(String),
    /// A function-local symbol (param, `:=`, `var`, loop var, named
    /// result) — identity is the resolved symbol.
    Local(SymbolId),
}

/// A trackable place: root plus selector path (`".mu"`, `".stats.n"`, `""`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarKey {
    /// The root binding.
    pub root: VarRoot,
    /// Dotted selector path below the root (empty for the root itself).
    pub path: String,
}

impl VarKey {
    /// True when the key has file-wide identity (global or receiver field)
    /// rather than per-function identity.
    #[must_use]
    pub fn is_file_wide(&self) -> bool {
        matches!(self.root, VarRoot::Global(_) | VarRoot::Field(_))
    }
}

/// What a call expression resolves to, when it stays inside the file.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CallTarget {
    /// A package-level function declared in this file.
    Named(String),
    /// A method call through the enclosing method's receiver: the callee
    /// is the method `name` on the receiver type `recv`.
    Method {
        /// Receiver type name.
        recv: String,
        /// Method name.
        name: String,
    },
    /// A call through a function-typed parameter of the enclosing
    /// function, identified by parameter index.
    Param(usize),
}

/// One analysis-relevant fact inside a block.
#[derive(Debug, Clone)]
pub enum Event {
    /// `x.Lock()` / `x.RLock()`.
    Acquire {
        /// The lock's identity.
        lock: VarKey,
        /// Exclusive or shared.
        mode: LockMode,
        /// Source spelling, for messages (`"g.mu"`).
        display: String,
        /// Call position.
        pos: Pos,
    },
    /// `x.Unlock()` / `x.RUnlock()` (not deferred — deferred releases
    /// never emit, keeping the lock held to function exit).
    Release {
        /// The lock's identity.
        lock: VarKey,
        /// Exclusive or shared.
        mode: LockMode,
        /// Call position.
        pos: Pos,
    },
    /// A read or write of a trackable variable.
    Access {
        /// The variable.
        var: VarKey,
        /// Source spelling, for messages.
        display: String,
        /// Write (or read-modify-write) vs read.
        write: bool,
        /// Performed through `sync/atomic`.
        atomic: bool,
        /// Declaration-initializer write (`x := v`, `var x = v`): excluded
        /// from race evidence, Eraser-style.
        init: bool,
        /// When this read occurs in an `if` condition, the branch tag of
        /// that `if` (for double-checked-locking detection).
        cond_of: Option<u32>,
        /// The place was reached through an index expression (`m[k]`) —
        /// a container element access rather than the binding itself.
        indexed: bool,
        /// Source position.
        pos: Pos,
    },
    /// A call that resolves within the file: raw material for the
    /// interprocedural layer (`callgraph`/`summary`). The lockset pass
    /// ignores these.
    Call {
        /// The resolved callee.
        target: CallTarget,
        /// Launched with `go` — the callee runs on a fresh goroutine
        /// that inherits none of the caller's locks.
        spawned: bool,
        /// The call site sits inside a loop of the current context.
        in_loop: bool,
        /// Function-literal arguments: `(argument index, literal position)`
        /// — the position keys `Resolution::captures_at`.
        closure_args: Vec<(usize, Pos)>,
        /// Trackable places passed as arguments:
        /// `(argument index, key, source spelling)`.
        var_args: Vec<(usize, VarKey, String)>,
        /// Call position.
        pos: Pos,
    },
}

/// One basic block.
#[derive(Debug, Default)]
pub struct BasicBlock {
    /// Events in execution order.
    pub events: Vec<Event>,
    /// Successor blocks (same context).
    pub succs: Vec<BlockId>,
    /// Contexts spawned from this block (`go` statements).
    pub spawns: Vec<u32>,
    /// The context this block belongs to.
    pub ctx: u32,
    /// Branch tags of every enclosing `if` then/else region, innermost
    /// last.
    pub branch_tags: Vec<u32>,
}

/// One execution context: the function body (id 0) or a spawned goroutine.
#[derive(Debug)]
pub struct Context {
    /// Context id (index into [`FuncCfg::contexts`]).
    pub id: u32,
    /// Entry block of the context.
    pub entry: BlockId,
    /// Spawning context, `None` for the function body.
    pub parent: Option<u32>,
    /// The `go` statement position, when spawned.
    pub spawn_pos: Option<Pos>,
    /// Spawned inside a loop — concurrent with other instances of itself.
    pub in_loop: bool,
}

/// The CFG of one function declaration.
#[derive(Debug)]
pub struct FuncCfg {
    /// Function name.
    pub func: String,
    /// Receiver type name for methods (pointer stripped).
    pub recv_type: Option<String>,
    /// All blocks, across all contexts.
    pub blocks: Vec<BasicBlock>,
    /// All contexts; index 0 is the function body.
    pub contexts: Vec<Context>,
}

impl FuncCfg {
    /// Blocks belonging to context `ctx`, in creation order.
    pub fn blocks_of(&self, ctx: u32) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .filter(move |(_, b)| b.ctx == ctx)
            .map(|(i, b)| (BlockId(i), b))
    }
}

/// Builds a CFG for every function in `file` that has a body.
#[must_use]
pub fn build_file(file: &File, res: &Resolution) -> Vec<FuncCfg> {
    file.decls
        .iter()
        .filter_map(|d| match d {
            Decl::Func(f) => build_func(f, res),
            _ => None,
        })
        .collect()
}

/// Builds the CFG for `f` (returns `None` for bodyless declarations).
#[must_use]
pub fn build_func(f: &FuncDecl, res: &Resolution) -> Option<FuncCfg> {
    let body = f.body.as_ref()?;
    let recv_type = f.receiver.as_ref().map(|r| type_root_name(&r.ty));
    // Parameter symbols in declaration order, so calls through
    // function-typed parameters can name the parameter by index.
    let params: Vec<Option<SymbolId>> = f
        .sig
        .params
        .iter()
        .map(|p| {
            res.symbols()
                .iter()
                .find(|s| {
                    s.kind == SymbolKind::Param && s.decl_pos == Some(f.pos) && s.name == p.name
                })
                .map(|s| s.id)
        })
        .collect();
    let mut b = Builder {
        res,
        recv_type: recv_type.clone(),
        params,
        blocks: vec![BasicBlock::default()],
        contexts: vec![Context {
            id: 0,
            entry: BlockId(0),
            parent: None,
            spawn_pos: None,
            in_loop: false,
        }],
        current: BlockId(0),
        ctx: 0,
        loop_stack: Vec::new(),
        loop_depth: 0,
        branch_stack: Vec::new(),
        next_branch: 0,
    };
    b.stmts(&body.stmts);
    Some(FuncCfg {
        func: f.name.clone(),
        recv_type,
        blocks: b.blocks,
        contexts: b.contexts,
    })
}

fn type_root_name(ty: &Type) -> String {
    match ty {
        Type::Pointer(inner) => type_root_name(inner),
        Type::Name(n) => n.clone(),
        _ => String::from("?"),
    }
}

/// A resolved place expression.
struct Place {
    key: VarKey,
    display: String,
    pos: Pos,
    indexed: bool,
}

struct LoopFrame {
    head: BlockId,
    after: BlockId,
}

struct Builder<'a> {
    res: &'a Resolution,
    recv_type: Option<String>,
    /// Parameter symbols of the enclosing function, in signature order
    /// (`None` for unnamed/unresolved parameters).
    params: Vec<Option<SymbolId>>,
    blocks: Vec<BasicBlock>,
    contexts: Vec<Context>,
    current: BlockId,
    ctx: u32,
    loop_stack: Vec<LoopFrame>,
    loop_depth: u32,
    branch_stack: Vec<u32>,
    next_branch: u32,
}

impl Builder<'_> {
    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len());
        self.blocks.push(BasicBlock {
            ctx: self.ctx,
            branch_tags: self.branch_stack.clone(),
            ..BasicBlock::default()
        });
        id
    }

    fn link(&mut self, from: BlockId, to: BlockId) {
        if !self.blocks[from.0].succs.contains(&to) {
            self.blocks[from.0].succs.push(to);
        }
    }

    fn emit(&mut self, e: Event) {
        self.blocks[self.current.0].events.push(e);
    }

    /// Resolves `e` as a trackable place (identifier / selector chain /
    /// index expression rooted in a local, global, or receiver).
    fn place(&self, e: &Expr) -> Option<Place> {
        match e {
            Expr::Ident(pos, name) => {
                let sym = self.res.symbol_at(*pos)?;
                let root = match sym.kind {
                    SymbolKind::GlobalVar => VarRoot::Global(name.clone()),
                    // An unresolved name in single-file analysis is almost
                    // always a package-level symbol from a sibling file —
                    // treat it as a global (builtin literals excepted).
                    SymbolKind::Universe
                        if !matches!(name.as_str(), "true" | "false" | "nil" | "iota") =>
                    {
                        VarRoot::Global(name.clone())
                    }
                    k if k.capturable() => VarRoot::Local(sym.id),
                    _ => return None,
                };
                Some(Place {
                    key: VarKey {
                        root,
                        path: String::new(),
                    },
                    display: name.clone(),
                    pos: *pos,
                    indexed: false,
                })
            }
            Expr::Selector(base, sel) => {
                let b = self.place(base)?;
                // A selector directly on the method receiver keys by the
                // receiver TYPE so all methods of the type agree.
                let key = match (&b.key.root, self.recv_type.as_ref()) {
                    (VarRoot::Local(id), Some(ty))
                        if b.key.path.is_empty()
                            && self.res.symbol(*id).kind == SymbolKind::Receiver =>
                    {
                        VarKey {
                            root: VarRoot::Field(ty.clone()),
                            path: format!(".{sel}"),
                        }
                    }
                    _ => VarKey {
                        root: b.key.root.clone(),
                        path: format!("{}.{sel}", b.key.path),
                    },
                };
                Some(Place {
                    key,
                    display: format!("{}.{sel}", b.display),
                    pos: b.pos,
                    indexed: b.indexed,
                })
            }
            // `m[k]` accesses the container `m`.
            Expr::Index(base, _) => {
                let mut p = self.place(base)?;
                p.indexed = true;
                Some(p)
            }
            Expr::Paren(inner) => self.place(inner),
            // `*p` accesses what `p` points at; approximate by `p` itself.
            Expr::Unary { op: "*", expr } => self.place(expr),
            _ => None,
        }
    }

    fn access(&mut self, p: Place, write: bool, atomic: bool, cond_of: Option<u32>) {
        self.emit(Event::Access {
            var: p.key,
            display: p.display,
            write,
            atomic,
            init: false,
            cond_of,
            indexed: p.indexed,
            pos: p.pos,
        });
    }

    fn init_write(&mut self, id: SymbolId, name: &str, pos: Pos) {
        self.emit(Event::Access {
            var: VarKey {
                root: VarRoot::Local(id),
                path: String::new(),
            },
            display: name.to_string(),
            write: true,
            atomic: false,
            init: true,
            cond_of: None,
            indexed: false,
            pos,
        });
    }

    /// Resolves a callee expression to an in-file call target: a declared
    /// package-level function, a method on the enclosing receiver type, or
    /// a function-typed parameter of the enclosing function.
    fn resolve_call_target(&self, callee: &Expr) -> Option<(CallTarget, Pos)> {
        match callee {
            Expr::Ident(pos, name) => {
                let sym = self.res.symbol_at(*pos)?;
                match sym.kind {
                    SymbolKind::Func => Some((CallTarget::Named(name.clone()), *pos)),
                    SymbolKind::Param => {
                        let idx = self.params.iter().position(|p| *p == Some(sym.id))?;
                        Some((CallTarget::Param(idx), *pos))
                    }
                    _ => None,
                }
            }
            Expr::Selector(base, method) => {
                let recv = self.recv_type.clone()?;
                if let Expr::Ident(pos, _) = base.as_ref() {
                    let sym = self.res.symbol_at(*pos)?;
                    if sym.kind == SymbolKind::Receiver {
                        return Some((
                            CallTarget::Method {
                                recv,
                                name: method.clone(),
                            },
                            *pos,
                        ));
                    }
                }
                None
            }
            Expr::Paren(inner) => self.resolve_call_target(inner),
            _ => None,
        }
    }

    /// Argument facts for a [`Event::Call`]: which arguments are function
    /// literals and which are trackable places.
    #[allow(clippy::type_complexity)]
    fn call_args_meta(&self, args: &[Expr]) -> (Vec<(usize, Pos)>, Vec<(usize, VarKey, String)>) {
        let mut closures = Vec::new();
        let mut vars = Vec::new();
        for (i, a) in args.iter().enumerate() {
            if let Expr::FuncLit { pos, .. } = a {
                closures.push((i, *pos));
            } else if let Some(p) = self.place(a) {
                vars.push((i, p.key, p.display));
            }
        }
        (closures, vars)
    }

    /// Emits the [`Event::Call`] for a resolvable callee, if any.
    fn call_event(&mut self, callee: &Expr, args: &[Expr], spawned: bool, go_pos: Option<Pos>) {
        if let Some((target, pos)) = self.resolve_call_target(callee) {
            let (closure_args, var_args) = self.call_args_meta(args);
            self.emit(Event::Call {
                target,
                spawned,
                in_loop: self.loop_depth > 0,
                closure_args,
                var_args,
                pos: go_pos.unwrap_or(pos),
            });
        }
    }

    /// The symbol declared by a `var`/`:=` at `pos` under `name`.
    fn declared_symbol(&self, pos: Pos, name: &str) -> Option<SymbolId> {
        self.res
            .symbols()
            .iter()
            .find(|s| s.decl_pos == Some(pos) && s.name == name && s.kind.capturable())
            .map(|s| s.id)
    }

    /// Emits read accesses for every trackable place in `e`, handling lock
    /// and atomic calls specially.
    fn reads(&mut self, e: &Expr, cond_of: Option<u32>) {
        if let Some(p) = self.place(e) {
            self.access(p, false, false, cond_of);
            // Still visit index sub-expressions: `m[k]` reads `k` too.
            self.read_index_parts(e, cond_of);
            return;
        }
        match e {
            Expr::Call { func, args, .. } => self.call(func, args, cond_of),
            Expr::Unary { expr, .. } => self.reads(expr, cond_of),
            Expr::Binary { lhs, rhs, .. } => {
                self.reads(lhs, cond_of);
                self.reads(rhs, cond_of);
            }
            Expr::Paren(inner) => self.reads(inner, cond_of),
            Expr::Index(b, i) => {
                self.reads(b, cond_of);
                self.reads(i, cond_of);
            }
            Expr::SliceExpr { expr, low, high } => {
                self.reads(expr, cond_of);
                if let Some(l) = low {
                    self.reads(l, cond_of);
                }
                if let Some(h) = high {
                    self.reads(h, cond_of);
                }
            }
            Expr::CompositeLit { elems, .. } => {
                for (k, v) in elems {
                    // A bare-identifier key is a struct field name, not a
                    // variable read; anything else (map keys) is evaluated.
                    if let Some(k) = k {
                        if k.as_ident().is_none() {
                            self.reads(k, cond_of);
                        }
                    }
                    self.reads(v, cond_of);
                }
            }
            Expr::Selector(base, _) => self.reads(base, cond_of),
            // Closures not launched by `go` run at an unknown time; their
            // bodies are outside this CFG (conservative: no events).
            Expr::FuncLit { .. } => {}
            _ => {}
        }
    }

    fn read_index_parts(&mut self, e: &Expr, cond_of: Option<u32>) {
        match e {
            Expr::Index(b, i) => {
                self.read_index_parts(b, cond_of);
                self.reads(i, cond_of);
            }
            Expr::Selector(b, _) | Expr::Paren(b) => self.read_index_parts(b, cond_of),
            Expr::Unary { expr, .. } => self.read_index_parts(expr, cond_of),
            _ => {}
        }
    }

    /// Handles a call expression: lock operations, `sync/atomic`, inline
    /// `func(){...}()` literals, and plain calls.
    fn call(&mut self, callee: &Expr, args: &[Expr], cond_of: Option<u32>) {
        if let Expr::Selector(base, method) = callee {
            let lock_op = match method.as_str() {
                "Lock" => Some((LockMode::Write, true)),
                "Unlock" => Some((LockMode::Write, false)),
                "RLock" => Some((LockMode::Read, true)),
                "RUnlock" => Some((LockMode::Read, false)),
                _ => None,
            };
            if let Some((mode, acquire)) = lock_op {
                if let Some(p) = self.place(base) {
                    let ev = if acquire {
                        Event::Acquire {
                            lock: p.key,
                            mode,
                            display: p.display,
                            pos: p.pos,
                        }
                    } else {
                        Event::Release {
                            lock: p.key,
                            mode,
                            pos: p.pos,
                        }
                    };
                    self.emit(ev);
                    return;
                }
            }
            // `atomic.AddInt64(&v, 1)` family: the first argument is the
            // atomically-accessed place; `Load*` reads, everything else
            // (Add/Store/Swap/CompareAndSwap) writes.
            if base.as_ident() == Some("atomic") {
                let write = !method.starts_with("Load");
                if let Some(Expr::Unary { op: "&", expr }) = args.first() {
                    if let Some(p) = self.place(expr) {
                        self.access(p, write, true, cond_of);
                    }
                }
                for a in args.iter().skip(1) {
                    self.reads(a, cond_of);
                }
                return;
            }
            // Ordinary method call: the receiver chain itself is not a data
            // access we model (`wg.Add(1)` mutates through a method, which
            // the dedicated lints handle); arguments are evaluated here.
            for a in args {
                self.reads(a, cond_of);
            }
            self.call_event(callee, args, false, None);
            return;
        }
        // Immediately-invoked closure: runs here, on this thread.
        if let Expr::FuncLit { body, .. } = callee {
            for a in args {
                self.reads(a, cond_of);
            }
            self.stmts(&body.stmts);
            return;
        }
        for a in args {
            self.reads(a, cond_of);
        }
        self.call_event(callee, args, false, None);
    }

    fn write_target(&mut self, e: &Expr) {
        if let Some(p) = self.place(e) {
            self.access(p, true, false, None);
        }
        // Index parts of the target are still reads (`m[k] = v` reads k).
        self.read_index_parts(e, None);
    }

    fn stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    #[allow(clippy::too_many_lines)]
    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl(v) => {
                for e in &v.values {
                    self.reads(e, None);
                }
                if !v.values.is_empty() {
                    for name in &v.names {
                        if let Some(id) = self.declared_symbol(v.pos, name) {
                            self.init_write(id, name, v.pos);
                        }
                    }
                }
            }
            Stmt::Define { pos, names, values } => {
                for e in values {
                    self.reads(e, None);
                }
                for name in names {
                    if name == "_" {
                        continue;
                    }
                    // A define that reuses an existing same-scope symbol is
                    // a real write; a fresh declaration is an init write.
                    if let Some(id) = self.declared_symbol(*pos, name) {
                        self.init_write(id, name, *pos);
                    } else if let Some(id) = self.res.use_at(*pos) {
                        if self.res.symbol(id).name == *name {
                            self.emit(Event::Access {
                                var: VarKey {
                                    root: VarRoot::Local(id),
                                    path: String::new(),
                                },
                                display: name.clone(),
                                write: true,
                                atomic: false,
                                init: false,
                                cond_of: None,
                                indexed: false,
                                pos: *pos,
                            });
                        }
                    }
                }
            }
            Stmt::Assign { lhs, rhs, op, .. } => {
                for e in rhs {
                    self.reads(e, None);
                }
                for e in lhs {
                    if *op != "=" {
                        // Compound assignment reads the target too.
                        self.reads(e, None);
                    }
                    self.write_target(e);
                }
            }
            Stmt::IncDec { expr, .. } => {
                self.reads(expr, None);
                self.write_target(expr);
            }
            Stmt::Expr(e) => self.reads(e, None),
            Stmt::Send { chan, value, .. } => {
                self.reads(chan, None);
                self.reads(value, None);
            }
            Stmt::Go { pos, call } => {
                if let Expr::Call { func, args, .. } = call {
                    // Arguments evaluate on the spawning thread.
                    for a in args {
                        self.reads(a, None);
                    }
                    if let Expr::FuncLit { body, .. } = func.as_ref() {
                        self.spawn(*pos, body);
                    } else if self.resolve_call_target(func).is_some() {
                        // `go f(x)` with an in-file callee: the spawned call
                        // becomes interprocedural material, positioned at
                        // the `go` keyword (the spawn point for MHP).
                        self.call_event(func, args, true, Some(*pos));
                    } else {
                        // `go f(x)` — the callee body is out of scope for an
                        // intraprocedural pass.
                        self.reads(func, None);
                    }
                } else {
                    self.reads(call, None);
                }
            }
            Stmt::Defer { call, .. } => {
                // `defer x.Unlock()` keeps the lock held to function exit:
                // modeled by NOT emitting a release. Deferred closures run
                // at exit; their bodies are skipped (conservative).
                if let Expr::Call { func, args, .. } = call {
                    let is_unlock = matches!(
                        func.as_ref(),
                        Expr::Selector(_, m) if m == "Unlock" || m == "RUnlock"
                    );
                    if !is_unlock && !matches!(func.as_ref(), Expr::FuncLit { .. }) {
                        for a in args {
                            self.reads(a, None);
                        }
                    }
                }
            }
            Stmt::Return { values, .. } => {
                for e in values {
                    self.reads(e, None);
                }
                // Control leaves the function; the rest of the block is
                // unreachable — continue in a fresh, disconnected block.
                self.current = self.new_block();
            }
            Stmt::If {
                init,
                cond,
                then,
                els,
                ..
            } => {
                if let Some(i) = init {
                    self.stmt(i);
                }
                let tag = self.next_branch;
                self.next_branch += 1;
                self.reads(cond, Some(tag));
                let head = self.current;
                let join = self.new_block();

                self.branch_stack.push(tag);
                let then_entry = self.new_block();
                self.link(head, then_entry);
                self.current = then_entry;
                self.stmts(&then.stmts);
                let then_exit = self.current;
                self.link(then_exit, join);
                self.branch_stack.pop();

                if let Some(e) = els {
                    self.branch_stack.push(tag);
                    let else_entry = self.new_block();
                    self.link(head, else_entry);
                    self.current = else_entry;
                    self.stmt(e);
                    let else_exit = self.current;
                    self.link(else_exit, join);
                    self.branch_stack.pop();
                } else {
                    self.link(head, join);
                }
                self.current = join;
            }
            Stmt::Block(b) => self.stmts(&b.stmts),
            Stmt::For {
                init,
                cond,
                post,
                range,
                body,
                ..
            } => {
                if let Some(i) = init {
                    self.stmt(i);
                }
                let head = self.new_block();
                self.link(self.current, head);
                self.current = head;
                if let Some(c) = cond {
                    self.reads(c, None);
                }
                if let Some(r) = range {
                    self.reads(&r.expr, None);
                }
                let after = self.new_block();
                self.link(head, after);

                let body_entry = self.new_block();
                self.link(head, body_entry);
                self.current = body_entry;
                self.loop_stack.push(LoopFrame { head, after });
                self.loop_depth += 1;
                self.stmts(&body.stmts);
                if let Some(p) = post {
                    self.stmt(p);
                }
                self.loop_depth -= 1;
                self.loop_stack.pop();
                let body_exit = self.current;
                self.link(body_exit, head);
                self.current = after;
            }
            Stmt::Switch { tag, cases, .. } => {
                if let Some(t) = tag {
                    self.reads(t, None);
                }
                let head = self.current;
                let join = self.new_block();
                for c in cases {
                    self.current = head;
                    for e in &c.exprs {
                        self.reads(e, None);
                    }
                    let entry = self.new_block();
                    self.link(head, entry);
                    self.current = entry;
                    self.stmts(&c.body);
                    let exit = self.current;
                    self.link(exit, join);
                }
                // Without a default clause, control may skip every case.
                self.link(head, join);
                self.current = join;
            }
            Stmt::Select { cases, .. } => {
                let head = self.current;
                let join = self.new_block();
                for c in cases {
                    let entry = self.new_block();
                    self.link(head, entry);
                    self.current = entry;
                    if let Some(comm) = &c.comm {
                        self.stmt(comm);
                    }
                    self.stmts(&c.body);
                    let exit = self.current;
                    self.link(exit, join);
                }
                self.current = join;
            }
            Stmt::Branch { kind, .. } => match *kind {
                "break" => {
                    if let Some(f) = self.loop_stack.last() {
                        let after = f.after;
                        let cur = self.current;
                        self.link(cur, after);
                        self.current = self.new_block();
                    }
                }
                "continue" => {
                    if let Some(f) = self.loop_stack.last() {
                        let head = f.head;
                        let cur = self.current;
                        self.link(cur, head);
                        self.current = self.new_block();
                    }
                }
                _ => {}
            },
            Stmt::Empty => {}
        }
    }

    /// Builds a spawned goroutine body as a new context.
    fn spawn(&mut self, pos: Pos, body: &Block) {
        let ctx_id = u32::try_from(self.contexts.len()).unwrap_or(u32::MAX);
        let saved_ctx = self.ctx;
        let saved_current = self.current;
        let saved_loops = std::mem::take(&mut self.loop_stack);
        let saved_branches = std::mem::take(&mut self.branch_stack);
        let saved_depth = self.loop_depth;

        self.ctx = ctx_id;
        self.loop_depth = 0;
        let entry = self.new_block();
        self.contexts.push(Context {
            id: ctx_id,
            entry,
            parent: Some(saved_ctx),
            spawn_pos: Some(pos),
            in_loop: saved_depth > 0,
        });
        self.blocks[saved_current.0].spawns.push(ctx_id);
        self.current = entry;
        self.stmts(&body.stmts);

        self.ctx = saved_ctx;
        self.current = saved_current;
        self.loop_stack = saved_loops;
        self.branch_stack = saved_branches;
        self.loop_depth = saved_depth;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;
    use crate::resolve::resolve_file;

    fn cfg_of(src: &str) -> FuncCfg {
        let file = parse_file(src).expect("parses");
        let res = resolve_file(&file);
        build_file(&file, &res)
            .into_iter()
            .next()
            .expect("a function with a body")
    }

    fn all_events(cfg: &FuncCfg) -> Vec<&Event> {
        cfg.blocks.iter().flat_map(|b| b.events.iter()).collect()
    }

    #[test]
    fn spawn_creates_context_with_edge() {
        let cfg = cfg_of(
            r"
package p
func f(jobs []int) {
    for _, j := range jobs {
        go func() { use(j) }()
    }
}
",
        );
        assert_eq!(cfg.contexts.len(), 2);
        assert!(cfg.contexts[1].in_loop, "goroutine spawned inside a loop");
        assert_eq!(cfg.contexts[1].parent, Some(0));
        assert!(cfg.blocks.iter().any(|b| b.spawns.contains(&1)));
    }

    #[test]
    fn lock_events_and_defer_unlock() {
        let cfg = cfg_of(
            r"
package p
func (g *Gate) update() {
    g.mu.RLock()
    defer g.mu.RUnlock()
    g.ready = true
}
",
        );
        let evs = all_events(&cfg);
        let acquires = evs
            .iter()
            .filter(|e| matches!(e, Event::Acquire { mode: LockMode::Read, .. }))
            .count();
        let releases = evs.iter().filter(|e| matches!(e, Event::Release { .. })).count();
        assert_eq!(acquires, 1);
        assert_eq!(releases, 0, "deferred release must not emit");
        // The write keys by receiver type.
        assert!(evs.iter().any(|e| matches!(
            e,
            Event::Access { var, write: true, .. }
                if var.root == VarRoot::Field("Gate".to_string()) && var.path == ".ready"
        )));
    }

    #[test]
    fn atomic_calls_mark_accesses() {
        let cfg = cfg_of(
            r"
package p
var ops int
func f() {
    atomic.AddInt64(&ops, 1)
    use(atomic.LoadInt64(&ops))
}
",
        );
        let evs = all_events(&cfg);
        let atomics: Vec<bool> = evs
            .iter()
            .filter_map(|e| match e {
                Event::Access { atomic: true, write, .. } => Some(*write),
                _ => None,
            })
            .collect();
        assert_eq!(atomics, vec![true, false], "Add writes, Load reads");
    }

    #[test]
    fn if_condition_reads_are_tagged() {
        let cfg = cfg_of(
            r"
package p
var instance int
func f() {
    if instance == 0 {
        instance = 1
    }
}
",
        );
        let evs = all_events(&cfg);
        let tag = evs
            .iter()
            .find_map(|e| match e {
                Event::Access { write: false, cond_of: Some(t), .. } => Some(*t),
                _ => None,
            })
            .expect("condition read tagged");
        // The guarded write lives in a block tagged with the same branch.
        let write_in_branch = cfg.blocks.iter().any(|b| {
            b.branch_tags.contains(&tag)
                && b.events
                    .iter()
                    .any(|e| matches!(e, Event::Access { write: true, .. }))
        });
        assert!(write_in_branch);
    }

    #[test]
    fn loops_have_back_edges() {
        let cfg = cfg_of(
            r"
package p
func f(n int) {
    for i := 0; i < n; i++ {
        work(i)
    }
}
",
        );
        let back_edge = cfg
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| b.succs.iter().any(|s| s.0 <= i));
        assert!(back_edge);
    }

    #[test]
    fn shadowed_locals_key_differently() {
        let cfg = cfg_of(
            r"
package p
var version int
func f() {
    version := 2
    use(version)
}
",
        );
        for e in all_events(&cfg) {
            if let Event::Access { var, .. } = e {
                assert!(
                    matches!(var.root, VarRoot::Local(_)),
                    "shadowed name resolved to {var:?}"
                );
            }
        }
    }

    #[test]
    fn explicit_runlock_releases() {
        let cfg = cfg_of(
            r"
package p
func (s *Store) bump() {
    s.mu.RLock()
    v := s.count
    s.mu.RUnlock()
    s.count = v + 1
}
",
        );
        let evs = all_events(&cfg);
        assert_eq!(
            evs.iter().filter(|e| matches!(e, Event::Release { .. })).count(),
            1
        );
        // count is read once and written once (v's init write aside).
        let count_accesses = evs
            .iter()
            .filter(|e| matches!(e, Event::Access { var, .. } if var.path == ".count"))
            .count();
        assert_eq!(count_accesses, 2);
    }
}
