//! The concurrency-construct scanner behind Table 1.
//!
//! The paper counts, per monorepo: concurrency creation (`go` statements /
//! `.start()` in Java), point-to-point synchronization (`Lock`/`Unlock`,
//! `RLock`/`RUnlock`, channel `<-`), and group communication
//! (`WaitGroup`). This module walks the Go-lite AST and produces those
//! counts plus the supporting features (maps, defers, selects) used in §4's
//! density comparisons.

use crate::ast::*;
use crate::error::ParseError;
use crate::parser::parse_file;

/// Construct counts for one file (or an aggregate over many).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConstructCounts {
    /// Physical source lines (newline count + 1 for non-empty files).
    pub lines: u64,
    /// `go` statements — concurrency creation.
    pub go_statements: u64,
    /// `ch <- v` sends (including `select` send arms).
    pub chan_sends: u64,
    /// `<-ch` receives (including `select` receive arms and range-over-chan).
    pub chan_recvs: u64,
    /// `.Lock()` calls.
    pub lock_calls: u64,
    /// `.Unlock()` calls.
    pub unlock_calls: u64,
    /// `.RLock()` calls.
    pub rlock_calls: u64,
    /// `.RUnlock()` calls.
    pub runlock_calls: u64,
    /// Declared `sync.WaitGroup` variables/fields — group communication.
    pub waitgroup_decls: u64,
    /// `.Add(` / `.Done(` / `.Wait(` calls on wait groups (by name match).
    pub waitgroup_calls: u64,
    /// `sync.Mutex` declarations.
    pub mutex_decls: u64,
    /// `sync.RWMutex` declarations.
    pub rwmutex_decls: u64,
    /// `map[...]...` types, `make(map...)`, and map composite literals.
    pub map_constructs: u64,
    /// `chan` types.
    pub chan_types: u64,
    /// `select` statements.
    pub select_stmts: u64,
    /// `defer` statements.
    pub defer_stmts: u64,
    /// Function declarations.
    pub func_decls: u64,
    /// Function literals (closures).
    pub func_lits: u64,
}

impl ConstructCounts {
    /// Point-to-point synchronization constructs (Table 1's middle block):
    /// lock+unlock, rlock+runlock, channel send/recv.
    #[must_use]
    pub fn point_to_point(&self) -> u64 {
        self.lock_calls
            + self.unlock_calls
            + self.rlock_calls
            + self.runlock_calls
            + self.chan_sends
            + self.chan_recvs
    }

    /// Group communication constructs (Table 1's bottom block).
    #[must_use]
    pub fn group_sync(&self) -> u64 {
        self.waitgroup_decls
    }

    /// Concurrency creation constructs.
    #[must_use]
    pub fn concurrency_creation(&self) -> u64 {
        self.go_statements
    }

    /// Per-million-lines density of `metric`.
    #[must_use]
    pub fn per_mloc(&self, metric: u64) -> f64 {
        if self.lines == 0 {
            0.0
        } else {
            metric as f64 * 1_000_000.0 / self.lines as f64
        }
    }

    /// Adds another file's counts into this aggregate.
    pub fn merge(&mut self, other: &ConstructCounts) {
        self.lines += other.lines;
        self.go_statements += other.go_statements;
        self.chan_sends += other.chan_sends;
        self.chan_recvs += other.chan_recvs;
        self.lock_calls += other.lock_calls;
        self.unlock_calls += other.unlock_calls;
        self.rlock_calls += other.rlock_calls;
        self.runlock_calls += other.runlock_calls;
        self.waitgroup_decls += other.waitgroup_decls;
        self.waitgroup_calls += other.waitgroup_calls;
        self.mutex_decls += other.mutex_decls;
        self.rwmutex_decls += other.rwmutex_decls;
        self.map_constructs += other.map_constructs;
        self.chan_types += other.chan_types;
        self.select_stmts += other.select_stmts;
        self.defer_stmts += other.defer_stmts;
        self.func_decls += other.func_decls;
        self.func_lits += other.func_lits;
    }
}

/// Parses `src` and scans it, filling in the line count.
///
/// # Errors
///
/// Propagates parse errors.
pub fn scan_source(src: &str) -> Result<ConstructCounts, ParseError> {
    let file = parse_file(src)?;
    let mut counts = scan_file(&file);
    counts.lines = src.lines().count() as u64;
    Ok(counts)
}

/// Scans a parsed file (the `lines` field stays zero — use
/// [`scan_source`] when you have the text).
#[must_use]
pub fn scan_file(file: &File) -> ConstructCounts {
    let mut c = ConstructCounts::default();
    for decl in &file.decls {
        scan_decl(decl, &mut c);
    }
    c
}

fn scan_decl(decl: &Decl, c: &mut ConstructCounts) {
    match decl {
        Decl::Func(f) => {
            c.func_decls += 1;
            if let Some(r) = &f.receiver {
                scan_type(&r.ty, c);
            }
            scan_signature(&f.sig, c);
            if let Some(b) = &f.body {
                scan_block(b, c);
            }
        }
        Decl::Var(v) | Decl::Const(v) => scan_var(v, c),
        Decl::Type(t) => scan_type(&t.ty, c),
    }
}

fn scan_var(v: &VarDecl, c: &mut ConstructCounts) {
    if let Some(ty) = &v.ty {
        scan_type(ty, c);
        count_sync_decl(ty, v.names.len() as u64, c);
    }
    for e in &v.values {
        scan_expr(e, c);
    }
}

fn count_sync_decl(ty: &Type, n: u64, c: &mut ConstructCounts) {
    match ty {
        Type::Name(name) => match name.as_str() {
            "sync.WaitGroup" => c.waitgroup_decls += n,
            "sync.Mutex" => c.mutex_decls += n,
            "sync.RWMutex" => c.rwmutex_decls += n,
            _ => {}
        },
        Type::Pointer(inner) | Type::Slice(inner) | Type::Array(_, inner) => {
            count_sync_decl(inner, n, c);
        }
        _ => {}
    }
}

fn scan_signature(sig: &Signature, c: &mut ConstructCounts) {
    for p in sig.params.iter().chain(sig.results.iter()) {
        scan_type(&p.ty, c);
    }
}

fn scan_type(ty: &Type, c: &mut ConstructCounts) {
    match ty {
        Type::Name(_) | Type::Interface => {}
        Type::Pointer(t) | Type::Slice(t) | Type::Array(_, t) => scan_type(t, c),
        Type::Map(k, v) => {
            c.map_constructs += 1;
            scan_type(k, c);
            scan_type(v, c);
        }
        Type::Chan(_, t) => {
            c.chan_types += 1;
            scan_type(t, c);
        }
        Type::Func(sig) => scan_signature(sig, c),
        Type::Struct(fields) => {
            for f in fields {
                scan_type(&f.ty, c);
                count_sync_decl(&f.ty, 1, c);
            }
        }
    }
}

fn scan_block(b: &Block, c: &mut ConstructCounts) {
    for s in &b.stmts {
        scan_stmt(s, c);
    }
}

fn scan_stmt(s: &Stmt, c: &mut ConstructCounts) {
    match s {
        Stmt::Decl(v) => scan_var(v, c),
        Stmt::Define { values, .. } => {
            for e in values {
                scan_expr(e, c);
            }
        }
        Stmt::Assign { lhs, rhs, .. } => {
            for e in lhs.iter().chain(rhs.iter()) {
                scan_expr(e, c);
            }
        }
        Stmt::IncDec { expr, .. } => scan_expr(expr, c),
        Stmt::Expr(e) => scan_expr(e, c),
        Stmt::Send { chan, value, .. } => {
            c.chan_sends += 1;
            scan_expr(chan, c);
            scan_expr(value, c);
        }
        Stmt::Go { call, .. } => {
            c.go_statements += 1;
            scan_expr(call, c);
        }
        Stmt::Defer { call, .. } => {
            c.defer_stmts += 1;
            scan_expr(call, c);
        }
        Stmt::Return { values, .. } => {
            for e in values {
                scan_expr(e, c);
            }
        }
        Stmt::If {
            init,
            cond,
            then,
            els,
            ..
        } => {
            if let Some(i) = init {
                scan_stmt(i, c);
            }
            scan_expr(cond, c);
            scan_block(then, c);
            if let Some(e) = els {
                scan_stmt(e, c);
            }
        }
        Stmt::Block(b) => scan_block(b, c),
        Stmt::For {
            init,
            cond,
            post,
            range,
            body,
            ..
        } => {
            if let Some(i) = init {
                scan_stmt(i, c);
            }
            if let Some(e) = cond {
                scan_expr(e, c);
            }
            if let Some(p) = post {
                scan_stmt(p, c);
            }
            if let Some(r) = range {
                scan_expr(&r.expr, c);
            }
            scan_block(body, c);
        }
        Stmt::Switch { tag, cases, .. } => {
            if let Some(t) = tag {
                scan_expr(t, c);
            }
            for cl in cases {
                for e in &cl.exprs {
                    scan_expr(e, c);
                }
                for st in &cl.body {
                    scan_stmt(st, c);
                }
            }
        }
        Stmt::Select { cases, .. } => {
            c.select_stmts += 1;
            for cl in cases {
                if let Some(comm) = &cl.comm {
                    scan_stmt(comm, c);
                }
                for st in &cl.body {
                    scan_stmt(st, c);
                }
            }
        }
        Stmt::Branch { .. } | Stmt::Empty => {}
    }
}

fn scan_expr(e: &Expr, c: &mut ConstructCounts) {
    match e {
        Expr::Ident(..)
        | Expr::Int(..)
        | Expr::Float(..)
        | Expr::Str(..)
        | Expr::Rune(..) => {}
        Expr::Selector(base, _) => scan_expr(base, c),
        Expr::Call { func, args, .. } => {
            if let Expr::Selector(_, method) = func.as_ref() {
                match method.as_str() {
                    "Lock" => c.lock_calls += 1,
                    "Unlock" => c.unlock_calls += 1,
                    "RLock" => c.rlock_calls += 1,
                    "RUnlock" => c.runlock_calls += 1,
                    "Add" | "Done" | "Wait" => c.waitgroup_calls += 1,
                    _ => {}
                }
            }
            scan_expr(func, c);
            for a in args {
                scan_expr(a, c);
            }
        }
        Expr::Index(b, i) => {
            scan_expr(b, c);
            scan_expr(i, c);
        }
        Expr::SliceExpr { expr, low, high } => {
            scan_expr(expr, c);
            if let Some(l) = low {
                scan_expr(l, c);
            }
            if let Some(h) = high {
                scan_expr(h, c);
            }
        }
        Expr::Unary { op, expr } => {
            if *op == "<-" {
                c.chan_recvs += 1;
            }
            scan_expr(expr, c);
        }
        Expr::Binary { lhs, rhs, .. } => {
            scan_expr(lhs, c);
            scan_expr(rhs, c);
        }
        Expr::FuncLit { sig, body, .. } => {
            c.func_lits += 1;
            scan_signature(sig, c);
            scan_block(body, c);
        }
        Expr::CompositeLit { ty, elems } => {
            if let Some(t) = ty {
                scan_type(t, c);
            }
            for (k, v) in elems {
                if let Some(k) = k {
                    scan_expr(k, c);
                }
                scan_expr(v, c);
            }
        }
        Expr::Paren(inner) => scan_expr(inner, c),
        Expr::TypeExpr(ty) => scan_type(ty, c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_the_full_feature_set() {
        let src = r#"
package svc

import "sync"

type server struct {
    mu    sync.Mutex
    gate  sync.RWMutex
    wg    sync.WaitGroup
    cache map[string]int
}

func (s *server) Serve(jobs []int) error {
    results := make(chan int, 8)
    var wg sync.WaitGroup
    for _, j := range jobs {
        wg.Add(1)
        go func(j int) {
            defer wg.Done()
            s.mu.Lock()
            s.cache["k"] = j
            s.mu.Unlock()
            results <- j
        }(j)
    }
    go func() {
        wg.Wait()
    }()
    s.gate.RLock()
    v := <-results
    s.gate.RUnlock()
    select {
    case r := <-results:
        _ = r
    default:
    }
    _ = v
    return nil
}
"#;
        let c = scan_source(src).expect("parses");
        assert_eq!(c.go_statements, 2);
        assert_eq!(c.lock_calls, 1);
        assert_eq!(c.unlock_calls, 1);
        assert_eq!(c.rlock_calls, 1);
        assert_eq!(c.runlock_calls, 1);
        assert_eq!(c.chan_sends, 1);
        assert_eq!(c.chan_recvs, 2, "plain recv + select arm");
        assert_eq!(c.waitgroup_decls, 2, "struct field + local var");
        assert_eq!(c.waitgroup_calls, 3, "Add, Done, Wait");
        assert_eq!(c.mutex_decls, 1);
        assert_eq!(c.rwmutex_decls, 1);
        assert_eq!(c.map_constructs, 1, "the cache field's map type");
        assert!(c.chan_types >= 1);
        assert_eq!(c.select_stmts, 1);
        assert_eq!(c.defer_stmts, 1);
        assert_eq!(c.func_decls, 1);
        assert_eq!(c.func_lits, 2);
        assert!(c.lines > 10);
    }

    #[test]
    fn table1_aggregates() {
        let src = r#"
package p

import "sync"

var mu sync.Mutex

func f(ch chan int) {
    go g()
    mu.Lock()
    ch <- 1
    mu.Unlock()
    <-ch
}

func g() {}
"#;
        let c = scan_source(src).expect("parses");
        assert_eq!(c.concurrency_creation(), 1);
        assert_eq!(c.point_to_point(), 4, "Lock+Unlock+send+recv");
        assert_eq!(c.group_sync(), 0);
        assert!(c.per_mloc(c.point_to_point()) > 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let a = scan_source("package a\nfunc f() { go g() }\nfunc g() {}").expect("parses");
        let b = scan_source("package b\nfunc h(ch chan int) { ch <- 1 }").expect("parses");
        let mut sum = ConstructCounts::default();
        sum.merge(&a);
        sum.merge(&b);
        assert_eq!(sum.go_statements, 1);
        assert_eq!(sum.chan_sends, 1);
        assert_eq!(sum.lines, a.lines + b.lines);
    }
}
