//! Recursive-descent parser for Go-lite.
//!
//! The grammar follows Go's, with the pragmatic restrictions a
//! construct-scanning and lint frontend can afford (no generics, interface
//! bodies elided, labels accepted but not resolved). Two classic Go parsing
//! wrinkles are handled faithfully because the study's patterns depend on
//! them:
//!
//! * **composite-literal vs block ambiguity** — `if x == T{}` — resolved
//!   as in gc by forbidding unparenthesized composite literals in control
//!   clause headers;
//! * **type arguments in call position** — `make(map[string]error)`,
//!   `make(chan int, 8)` — parsed as type expressions.

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::tokenize;
use crate::token::{Keyword as K, Pos, Tok, Token};

/// Parses a complete source file.
///
/// # Errors
///
/// Returns the first lexical or syntax error with its position.
pub fn parse_file(src: &str) -> Result<File, ParseError> {
    let tokens = tokenize(src)?;
    Parser::new(tokens).file()
}

/// Parses a single expression (used by tests and tools).
///
/// # Errors
///
/// Returns the first error.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser::new(tokens);
    let e = p.expr()?;
    Ok(e)
}

/// One `name [, name...] [Type] [= exprs]` specification of a var/const
/// declaration: `(names, type, initializers)`.
type VarSpec = (Vec<String>, Option<Type>, Vec<Expr>);

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Composite literals with bare type names are disallowed while > 0
    /// (inside if/for/switch headers).
    no_composite: u32,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            no_composite: 0,
        }
    }

    fn peek(&self) -> &Tok {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].tok
    }

    fn peek_at(&self, n: usize) -> &Tok {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].tok
    }

    fn here(&self) -> Pos {
        self.tokens[self.pos.min(self.tokens.len() - 1)].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].tok.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(ParseError::new(
                self.here(),
                format!("expected `{t}`, found `{}`", self.peek()),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(ParseError::new(
                self.here(),
                format!("expected identifier, found `{other}`"),
            )),
        }
    }

    fn skip_semis(&mut self) {
        while self.eat(&Tok::Semi) {}
    }

    // ---- file & declarations ----

    fn file(&mut self) -> Result<File, ParseError> {
        self.skip_semis();
        self.expect(&Tok::Kw(K::Package))?;
        let package = self.expect_ident()?;
        self.skip_semis();
        let mut imports = Vec::new();
        while self.peek() == &Tok::Kw(K::Import) {
            self.bump();
            if self.eat(&Tok::LParen) {
                self.skip_semis();
                while self.peek() != &Tok::RParen {
                    // Optional alias.
                    if matches!(self.peek(), Tok::Ident(_)) {
                        self.bump();
                    }
                    match self.bump() {
                        Tok::Str(s) => imports.push(s),
                        other => {
                            return Err(ParseError::new(
                                self.here(),
                                format!("expected import path string, found `{other}`"),
                            ))
                        }
                    }
                    self.skip_semis();
                }
                self.expect(&Tok::RParen)?;
            } else {
                if matches!(self.peek(), Tok::Ident(_))
                    && matches!(self.peek_at(1), Tok::Str(_))
                {
                    self.bump(); // alias
                }
                match self.bump() {
                    Tok::Str(s) => imports.push(s),
                    other => {
                        return Err(ParseError::new(
                            self.here(),
                            format!("expected import path string, found `{other}`"),
                        ))
                    }
                }
            }
            self.skip_semis();
        }
        let mut decls = Vec::new();
        loop {
            self.skip_semis();
            match self.peek() {
                Tok::Eof => break,
                Tok::Kw(K::Func) => decls.push(Decl::Func(self.func_decl()?)),
                Tok::Kw(K::Var) => decls.push(Decl::Var(self.var_decl(false)?)),
                Tok::Kw(K::Const) => decls.push(Decl::Const(self.var_decl(true)?)),
                Tok::Kw(K::Type) => decls.push(Decl::Type(self.type_decl()?)),
                other => {
                    return Err(ParseError::new(
                        self.here(),
                        format!("expected declaration, found `{other}`"),
                    ))
                }
            }
        }
        Ok(File {
            package,
            imports,
            decls,
        })
    }

    fn func_decl(&mut self) -> Result<FuncDecl, ParseError> {
        let pos = self.here();
        self.expect(&Tok::Kw(K::Func))?;
        let receiver = if self.peek() == &Tok::LParen {
            // Could be a method receiver: `func (m *T) Name(...)`.
            let save = self.pos;
            self.bump();
            let recv = self.param_list_single();
            match recv {
                Ok(p) if self.eat(&Tok::RParen) && matches!(self.peek(), Tok::Ident(_)) => {
                    Some(p)
                }
                _ => {
                    self.pos = save;
                    None
                }
            }
        } else {
            None
        };
        let name = self.expect_ident()?;
        let sig = self.signature()?;
        let body = if self.peek() == &Tok::LBrace {
            Some(self.block()?)
        } else {
            None
        };
        Ok(FuncDecl {
            pos,
            receiver,
            name,
            sig,
            body,
        })
    }

    /// Parses exactly one `name Type` (used for receivers).
    fn param_list_single(&mut self) -> Result<Param, ParseError> {
        let name = self.expect_ident()?;
        let ty = self.parse_type()?;
        Ok(Param { name, ty })
    }

    fn signature(&mut self) -> Result<Signature, ParseError> {
        self.expect(&Tok::LParen)?;
        let params = self.param_list()?;
        self.expect(&Tok::RParen)?;
        let mut results = Vec::new();
        if self.peek() == &Tok::LParen {
            self.bump();
            results = self.param_list()?;
            self.expect(&Tok::RParen)?;
        } else if self.type_starts_here() {
            let ty = self.parse_type()?;
            results.push(Param {
                name: String::new(),
                ty,
            });
        }
        Ok(Signature { params, results })
    }

    /// Parses a comma-separated parameter list, resolving Go's shared-type
    /// grouping (`a, b int`) and unnamed lists (`int, error`).
    fn param_list(&mut self) -> Result<Vec<Param>, ParseError> {
        let mut out: Vec<Param> = Vec::new();
        let mut pending: Vec<String> = Vec::new();
        loop {
            if self.peek() == &Tok::RParen {
                break;
            }
            // Variadic `...T`.
            if self.eat(&Tok::Ellipsis) {
                let ty = self.parse_type()?;
                let name = pending.pop().unwrap_or_default();
                for n in pending.drain(..) {
                    out.push(Param {
                        name: n,
                        ty: Type::Name("<grouped>".into()),
                    });
                }
                out.push(Param {
                    name,
                    ty: Type::Slice(Box::new(ty)),
                });
            } else if matches!(self.peek(), Tok::Ident(_))
                && self.peek_at(1) == &Tok::Ellipsis
            {
                // Named variadic: `v ...T`.
                let name = self.expect_ident()?;
                self.expect(&Tok::Ellipsis)?;
                let ty = self.parse_type()?;
                for n in pending.drain(..) {
                    out.push(Param {
                        name: n,
                        ty: Type::Slice(Box::new(ty.clone())),
                    });
                }
                out.push(Param {
                    name,
                    ty: Type::Slice(Box::new(ty)),
                });
            } else if matches!(self.peek(), Tok::Ident(_))
                && matches!(self.peek_at(1), Tok::Comma | Tok::RParen)
            {
                // Ambiguous: either an unnamed type or a name sharing a
                // later type.
                if let Tok::Ident(s) = self.bump() {
                    pending.push(s);
                }
            } else if matches!(self.peek(), Tok::Ident(_)) && self.type_starts_at(1) {
                // `name Type`.
                let name = self.expect_ident()?;
                let ty = self.parse_type()?;
                for n in pending.drain(..) {
                    out.push(Param {
                        name: n,
                        ty: ty.clone(),
                    });
                }
                out.push(Param { name, ty });
            } else {
                // Unnamed non-ident type (`*T`, `[]T`, `map[..]..`, ...).
                let ty = self.parse_type()?;
                for n in pending.drain(..) {
                    out.push(Param {
                        name: String::new(),
                        ty: Type::Name(n),
                    });
                }
                out.push(Param {
                    name: String::new(),
                    ty,
                });
            }
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        // Leftover pending names are unnamed type parameters.
        for n in pending {
            out.push(Param {
                name: String::new(),
                ty: Type::Name(n),
            });
        }
        Ok(out)
    }

    fn var_decl(&mut self, constant: bool) -> Result<VarDecl, ParseError> {
        let pos = self.here();
        self.bump(); // var / const
        let _ = constant;
        // Parenthesized groups: keep only the first spec's shape by
        // flattening all specs into one decl (fine for scanning/linting).
        if self.eat(&Tok::LParen) {
            let mut names = Vec::new();
            let mut values = Vec::new();
            let mut ty = None;
            self.skip_semis();
            while self.peek() != &Tok::RParen {
                let (mut n, t, mut v) = self.var_spec()?;
                names.append(&mut n);
                values.append(&mut v);
                if ty.is_none() {
                    ty = t;
                }
                self.skip_semis();
            }
            self.expect(&Tok::RParen)?;
            return Ok(VarDecl {
                pos,
                names,
                ty,
                values,
            });
        }
        let (names, ty, values) = self.var_spec()?;
        Ok(VarDecl {
            pos,
            names,
            ty,
            values,
        })
    }

    fn var_spec(&mut self) -> Result<VarSpec, ParseError> {
        let mut names = vec![self.expect_ident()?];
        while self.eat(&Tok::Comma) {
            names.push(self.expect_ident()?);
        }
        let mut ty = None;
        if self.peek() != &Tok::Assign && self.peek() != &Tok::Semi && self.type_starts_here() {
            ty = Some(self.parse_type()?);
        }
        let mut values = Vec::new();
        if self.eat(&Tok::Assign) {
            values.push(self.expr()?);
            while self.eat(&Tok::Comma) {
                values.push(self.expr()?);
            }
        }
        Ok((names, ty, values))
    }

    fn type_decl(&mut self) -> Result<TypeDecl, ParseError> {
        let pos = self.here();
        self.expect(&Tok::Kw(K::Type))?;
        if self.eat(&Tok::LParen) {
            // Grouped type declarations: keep the first, parse the rest.
            self.skip_semis();
            let name = self.expect_ident()?;
            let ty = self.parse_type()?;
            self.skip_semis();
            while self.peek() != &Tok::RParen {
                let _ = self.expect_ident()?;
                let _ = self.parse_type()?;
                self.skip_semis();
            }
            self.expect(&Tok::RParen)?;
            return Ok(TypeDecl { pos, name, ty });
        }
        let name = self.expect_ident()?;
        let ty = self.parse_type()?;
        Ok(TypeDecl { pos, name, ty })
    }

    // ---- types ----

    fn type_starts_here(&self) -> bool {
        self.type_starts_at(0)
    }

    fn type_starts_at(&self, n: usize) -> bool {
        matches!(
            self.peek_at(n),
            Tok::Ident(_)
                | Tok::Star
                | Tok::LBracket
                | Tok::Kw(K::Map)
                | Tok::Kw(K::Chan)
                | Tok::Kw(K::Func)
                | Tok::Kw(K::Struct)
                | Tok::Kw(K::Interface)
                | Tok::Arrow
        )
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                if self.peek() == &Tok::Dot && matches!(self.peek_at(1), Tok::Ident(_)) {
                    self.bump();
                    let sel = self.expect_ident()?;
                    Ok(Type::Name(format!("{name}.{sel}")))
                } else {
                    Ok(Type::Name(name))
                }
            }
            Tok::Star => {
                self.bump();
                Ok(Type::Pointer(Box::new(self.parse_type()?)))
            }
            Tok::LBracket => {
                self.bump();
                if self.eat(&Tok::RBracket) {
                    Ok(Type::Slice(Box::new(self.parse_type()?)))
                } else {
                    let size = match self.bump() {
                        Tok::Int(s) => s,
                        Tok::Ident(s) => s, // named constant size
                        other => {
                            return Err(ParseError::new(
                                self.here(),
                                format!("expected array size, found `{other}`"),
                            ))
                        }
                    };
                    self.expect(&Tok::RBracket)?;
                    Ok(Type::Array(size, Box::new(self.parse_type()?)))
                }
            }
            Tok::Kw(K::Map) => {
                self.bump();
                self.expect(&Tok::LBracket)?;
                let k = self.parse_type()?;
                self.expect(&Tok::RBracket)?;
                let v = self.parse_type()?;
                Ok(Type::Map(Box::new(k), Box::new(v)))
            }
            Tok::Kw(K::Chan) => {
                self.bump();
                let dir = if self.eat(&Tok::Arrow) {
                    ChanDir::Send
                } else {
                    ChanDir::Both
                };
                Ok(Type::Chan(dir, Box::new(self.parse_type()?)))
            }
            Tok::Arrow => {
                self.bump();
                self.expect(&Tok::Kw(K::Chan))?;
                Ok(Type::Chan(ChanDir::Recv, Box::new(self.parse_type()?)))
            }
            Tok::Kw(K::Func) => {
                self.bump();
                let sig = self.signature()?;
                Ok(Type::Func(Box::new(sig)))
            }
            Tok::Kw(K::Struct) => {
                self.bump();
                self.expect(&Tok::LBrace)?;
                let mut fields = Vec::new();
                self.skip_semis();
                while self.peek() != &Tok::RBrace {
                    // `a, b T` field groups; embedded fields are a bare type.
                    if matches!(self.peek(), Tok::Ident(_))
                        && (self.type_starts_at(1) || self.peek_at(1) == &Tok::Comma)
                    {
                        let mut names = vec![self.expect_ident()?];
                        while self.eat(&Tok::Comma) {
                            names.push(self.expect_ident()?);
                        }
                        let ty = self.parse_type()?;
                        for name in names {
                            fields.push(Param {
                                name,
                                ty: ty.clone(),
                            });
                        }
                    } else {
                        let ty = self.parse_type()?;
                        fields.push(Param {
                            name: String::new(),
                            ty,
                        });
                    }
                    // Optional struct tag.
                    if matches!(self.peek(), Tok::Str(_)) {
                        self.bump();
                    }
                    self.skip_semis();
                }
                self.expect(&Tok::RBrace)?;
                Ok(Type::Struct(fields))
            }
            Tok::Kw(K::Interface) => {
                self.bump();
                self.expect(&Tok::LBrace)?;
                // Elide interface bodies: skip to the matching brace.
                let mut depth = 1;
                while depth > 0 {
                    match self.bump() {
                        Tok::LBrace => depth += 1,
                        Tok::RBrace => depth -= 1,
                        Tok::Eof => {
                            return Err(ParseError::new(
                                self.here(),
                                "unterminated interface body",
                            ))
                        }
                        _ => {}
                    }
                }
                Ok(Type::Interface)
            }
            other => Err(ParseError::new(
                self.here(),
                format!("expected type, found `{other}`"),
            )),
        }
    }

    // ---- statements ----

    fn block(&mut self) -> Result<Block, ParseError> {
        self.expect(&Tok::LBrace)?;
        // Composite literals are legal again inside the braces.
        let saved = self.no_composite;
        self.no_composite = 0;
        let mut stmts = Vec::new();
        self.skip_semis();
        while self.peek() != &Tok::RBrace && self.peek() != &Tok::Eof {
            stmts.push(self.stmt()?);
            self.skip_semis();
        }
        self.expect(&Tok::RBrace)?;
        self.no_composite = saved;
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.here();
        match self.peek().clone() {
            Tok::Kw(K::Var) => Ok(Stmt::Decl(self.var_decl(false)?)),
            Tok::Kw(K::Const) => Ok(Stmt::Decl(self.var_decl(true)?)),
            Tok::Kw(K::Go) => {
                self.bump();
                let call = self.expr()?;
                Ok(Stmt::Go { pos, call })
            }
            Tok::Kw(K::Defer) => {
                self.bump();
                let call = self.expr()?;
                Ok(Stmt::Defer { pos, call })
            }
            Tok::Kw(K::Return) => {
                self.bump();
                let mut values = Vec::new();
                if !matches!(self.peek(), Tok::Semi | Tok::RBrace | Tok::Eof) {
                    values.push(self.expr()?);
                    while self.eat(&Tok::Comma) {
                        values.push(self.expr()?);
                    }
                }
                Ok(Stmt::Return { pos, values })
            }
            Tok::Kw(K::If) => self.if_stmt(),
            Tok::Kw(K::For) => self.for_stmt(),
            Tok::Kw(K::Switch) => self.switch_stmt(),
            Tok::Kw(K::Select) => self.select_stmt(),
            Tok::Kw(K::Break) => {
                self.bump();
                let label = self.opt_label();
                Ok(Stmt::Branch {
                    pos,
                    kind: "break",
                    label,
                })
            }
            Tok::Kw(K::Continue) => {
                self.bump();
                let label = self.opt_label();
                Ok(Stmt::Branch {
                    pos,
                    kind: "continue",
                    label,
                })
            }
            Tok::Kw(K::Fallthrough) => {
                self.bump();
                Ok(Stmt::Branch {
                    pos,
                    kind: "fallthrough",
                    label: None,
                })
            }
            Tok::Kw(K::Goto) => {
                self.bump();
                let label = Some(self.expect_ident()?);
                Ok(Stmt::Branch {
                    pos,
                    kind: "goto",
                    label,
                })
            }
            Tok::LBrace => Ok(Stmt::Block(self.block()?)),
            Tok::Semi => {
                self.bump();
                Ok(Stmt::Empty)
            }
            _ => self.simple_stmt(),
        }
    }

    fn opt_label(&mut self) -> Option<String> {
        if let Tok::Ident(s) = self.peek().clone() {
            self.bump();
            Some(s)
        } else {
            None
        }
    }

    /// Expression statement, define, assign, send, or inc/dec.
    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.here();
        let first = self.expr()?;
        match self.peek().clone() {
            Tok::Define | Tok::Comma if self.defines_ahead() => {
                let mut exprs = vec![first];
                while self.eat(&Tok::Comma) {
                    exprs.push(self.expr()?);
                }
                if self.eat(&Tok::Define) {
                    let names = exprs
                        .iter()
                        .map(|e| {
                            e.as_ident().map(String::from).ok_or_else(|| {
                                ParseError::new(pos, "non-identifier on left of :=")
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    let mut values = vec![self.expr()?];
                    while self.eat(&Tok::Comma) {
                        values.push(self.expr()?);
                    }
                    Ok(Stmt::Define { pos, names, values })
                } else {
                    self.expect(&Tok::Assign)?;
                    let mut values = vec![self.expr()?];
                    while self.eat(&Tok::Comma) {
                        values.push(self.expr()?);
                    }
                    Ok(Stmt::Assign {
                        pos,
                        lhs: exprs,
                        op: "=",
                        rhs: values,
                    })
                }
            }
            Tok::Assign => {
                self.bump();
                let mut values = vec![self.expr()?];
                while self.eat(&Tok::Comma) {
                    values.push(self.expr()?);
                }
                Ok(Stmt::Assign {
                    pos,
                    lhs: vec![first],
                    op: "=",
                    rhs: values,
                })
            }
            Tok::OpAssign(op) => {
                self.bump();
                let rhs = self.expr()?;
                Ok(Stmt::Assign {
                    pos,
                    lhs: vec![first],
                    op,
                    rhs: vec![rhs],
                })
            }
            Tok::Arrow => {
                self.bump();
                let value = self.expr()?;
                Ok(Stmt::Send {
                    pos,
                    chan: first,
                    value,
                })
            }
            Tok::Inc => {
                self.bump();
                Ok(Stmt::IncDec {
                    pos,
                    expr: first,
                    inc: true,
                })
            }
            Tok::Dec => {
                self.bump();
                Ok(Stmt::IncDec {
                    pos,
                    expr: first,
                    inc: false,
                })
            }
            _ => Ok(Stmt::Expr(first)),
        }
    }

    /// After having parsed one expression and seeing `,` or `:=`: is this a
    /// multi-target define/assign (vs an expression list elsewhere)? Scan
    /// ahead at depth 0 for `:=`/`=` before a terminator.
    fn defines_ahead(&self) -> bool {
        if self.peek() == &Tok::Define {
            return true;
        }
        let mut i = 0;
        let mut depth = 0u32;
        loop {
            match self.peek_at(i) {
                Tok::LParen | Tok::LBracket | Tok::LBrace => depth += 1,
                Tok::RParen | Tok::RBracket | Tok::RBrace => {
                    if depth == 0 {
                        return false;
                    }
                    depth -= 1;
                }
                Tok::Define | Tok::Assign if depth == 0 => return true,
                Tok::Semi | Tok::Eof => return false,
                _ => {}
            }
            i += 1;
            if i > 4096 {
                return false;
            }
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.here();
        self.expect(&Tok::Kw(K::If))?;
        self.no_composite += 1;
        let first = self.simple_stmt()?;
        let (init, cond) = if self.eat(&Tok::Semi) {
            let cond_expr = self.expr()?;
            (Some(Box::new(first)), cond_expr)
        } else {
            match first {
                Stmt::Expr(e) => (None, e),
                other => {
                    // `if err := f(); err != nil` handled above; anything
                    // else with a non-expression head is malformed.
                    return Err(ParseError::new(
                        pos,
                        format!("if condition is not an expression: {other:?}"),
                    ));
                }
            }
        };
        self.no_composite -= 1;
        let then = self.block()?;
        let els = if self.eat(&Tok::Kw(K::Else)) {
            if self.peek() == &Tok::Kw(K::If) {
                Some(Box::new(self.if_stmt()?))
            } else {
                Some(Box::new(Stmt::Block(self.block()?)))
            }
        } else {
            None
        };
        Ok(Stmt::If {
            pos,
            init,
            cond,
            then,
            els,
        })
    }

    fn for_stmt(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.here();
        self.expect(&Tok::Kw(K::For))?;
        self.no_composite += 1;
        // `for {`
        if self.peek() == &Tok::LBrace {
            self.no_composite -= 1;
            let body = self.block()?;
            return Ok(Stmt::For {
                pos,
                init: None,
                cond: None,
                post: None,
                range: None,
                body,
            });
        }
        // Range form? Scan ahead for `range` at depth 0 before `{` or `;`.
        if self.range_ahead() {
            let range = self.range_clause()?;
            self.no_composite -= 1;
            let body = self.block()?;
            return Ok(Stmt::For {
                pos,
                init: None,
                cond: None,
                post: None,
                range: Some(range),
                body,
            });
        }
        let first = self.simple_stmt()?;
        if self.eat(&Tok::Semi) {
            // for init; cond; post
            let cond = if self.peek() == &Tok::Semi {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect(&Tok::Semi)?;
            let post = if self.peek() == &Tok::LBrace {
                None
            } else {
                Some(Box::new(self.simple_stmt()?))
            };
            self.no_composite -= 1;
            let body = self.block()?;
            Ok(Stmt::For {
                pos,
                init: Some(Box::new(first)),
                cond,
                post,
                range: None,
                body,
            })
        } else {
            // for cond
            let cond = match first {
                Stmt::Expr(e) => e,
                other => {
                    return Err(ParseError::new(
                        pos,
                        format!("for condition is not an expression: {other:?}"),
                    ))
                }
            };
            self.no_composite -= 1;
            let body = self.block()?;
            Ok(Stmt::For {
                pos,
                init: None,
                cond: Some(cond),
                post: None,
                range: None,
                body,
            })
        }
    }

    fn range_ahead(&self) -> bool {
        let mut i = 0;
        let mut depth = 0u32;
        loop {
            match self.peek_at(i) {
                Tok::Kw(K::Range) if depth == 0 => return true,
                Tok::LParen | Tok::LBracket => depth += 1,
                Tok::RParen | Tok::RBracket => depth = depth.saturating_sub(1),
                Tok::LBrace | Tok::Semi | Tok::Eof => return false,
                _ => {}
            }
            i += 1;
            if i > 4096 {
                return false;
            }
        }
    }

    fn range_clause(&mut self) -> Result<RangeClause, ParseError> {
        // `for range x` (no variables).
        if self.eat(&Tok::Kw(K::Range)) {
            let expr = self.expr()?;
            return Ok(RangeClause {
                key: String::new(),
                value: String::new(),
                define: false,
                expr,
            });
        }
        let key = self.expect_ident()?;
        let value = if self.eat(&Tok::Comma) {
            self.expect_ident()?
        } else {
            String::new()
        };
        let define = if self.eat(&Tok::Define) {
            true
        } else {
            self.expect(&Tok::Assign)?;
            false
        };
        self.expect(&Tok::Kw(K::Range))?;
        let expr = self.expr()?;
        Ok(RangeClause {
            key,
            value,
            define,
            expr,
        })
    }

    fn switch_stmt(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.here();
        self.expect(&Tok::Kw(K::Switch))?;
        self.no_composite += 1;
        let tag = if self.peek() == &Tok::LBrace {
            None
        } else {
            Some(self.expr()?)
        };
        self.no_composite -= 1;
        self.expect(&Tok::LBrace)?;
        let mut cases = Vec::new();
        self.skip_semis();
        while self.peek() != &Tok::RBrace {
            let exprs = if self.eat(&Tok::Kw(K::Case)) {
                let mut es = vec![self.expr()?];
                while self.eat(&Tok::Comma) {
                    es.push(self.expr()?);
                }
                es
            } else {
                self.expect(&Tok::Kw(K::Default))?;
                Vec::new()
            };
            self.expect(&Tok::Colon)?;
            let mut body = Vec::new();
            self.skip_semis();
            while !matches!(
                self.peek(),
                Tok::Kw(K::Case) | Tok::Kw(K::Default) | Tok::RBrace
            ) {
                body.push(self.stmt()?);
                self.skip_semis();
            }
            cases.push(CaseClause { exprs, body });
        }
        self.expect(&Tok::RBrace)?;
        Ok(Stmt::Switch { pos, tag, cases })
    }

    fn select_stmt(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.here();
        self.expect(&Tok::Kw(K::Select))?;
        self.expect(&Tok::LBrace)?;
        let mut cases = Vec::new();
        self.skip_semis();
        while self.peek() != &Tok::RBrace {
            let comm = if self.eat(&Tok::Kw(K::Case)) {
                Some(Box::new(self.simple_stmt()?))
            } else {
                self.expect(&Tok::Kw(K::Default))?;
                None
            };
            self.expect(&Tok::Colon)?;
            let mut body = Vec::new();
            self.skip_semis();
            while !matches!(
                self.peek(),
                Tok::Kw(K::Case) | Tok::Kw(K::Default) | Tok::RBrace
            ) {
                body.push(self.stmt()?);
                self.skip_semis();
            }
            cases.push(CommClause { comm, body });
        }
        self.expect(&Tok::RBrace)?;
        Ok(Stmt::Select { pos, cases })
    }

    // ---- expressions ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.binary_expr(1)
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (op, prec): (&'static str, u8) = match self.peek() {
                Tok::OrOr => ("||", 1),
                Tok::AndAnd => ("&&", 2),
                Tok::EqEq => ("==", 3),
                Tok::NotEq => ("!=", 3),
                Tok::Lt => ("<", 3),
                Tok::Le => ("<=", 3),
                Tok::Gt => (">", 3),
                Tok::Ge => (">=", 3),
                Tok::Plus => ("+", 4),
                Tok::Minus => ("-", 4),
                Tok::Pipe => ("|", 4),
                Tok::Caret => ("^", 4),
                Tok::Star => ("*", 5),
                Tok::Slash => ("/", 5),
                Tok::Percent => ("%", 5),
                Tok::Shl => ("<<", 5),
                Tok::Shr => (">>", 5),
                Tok::Amp => ("&", 5),
                Tok::AmpCaret => ("&^", 5),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        let op: Option<&'static str> = match self.peek() {
            Tok::Minus => Some("-"),
            Tok::Plus => Some("+"),
            Tok::Not => Some("!"),
            Tok::Caret => Some("^"),
            Tok::Star => Some("*"),
            Tok::Amp => Some("&"),
            Tok::Arrow => Some("<-"),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let expr = self.unary_expr()?;
            return Ok(Expr::Unary {
                op,
                expr: Box::new(expr),
            });
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.operand()?;
        loop {
            match self.peek().clone() {
                Tok::Dot => {
                    self.bump();
                    // Type assertion `x.(T)` — elide to the base expression.
                    if self.eat(&Tok::LParen) {
                        if !self.eat(&Tok::Kw(K::Type)) {
                            let _ = self.parse_type()?;
                        }
                        self.expect(&Tok::RParen)?;
                        continue;
                    }
                    let sel = self.expect_ident()?;
                    e = Expr::Selector(Box::new(e), sel);
                }
                Tok::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    let mut spread = false;
                    // Composite literals are allowed inside call arguments
                    // even within control headers.
                    let saved = self.no_composite;
                    self.no_composite = 0;
                    while self.peek() != &Tok::RParen {
                        if self.arg_is_type() {
                            let ty = self.parse_type()?;
                            args.push(Expr::TypeExpr(Box::new(ty)));
                        } else {
                            args.push(self.expr()?);
                        }
                        if self.eat(&Tok::Ellipsis) {
                            spread = true;
                        }
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.no_composite = saved;
                    self.expect(&Tok::RParen)?;
                    e = Expr::Call {
                        func: Box::new(e),
                        args,
                        spread,
                    };
                }
                Tok::LBracket => {
                    self.bump();
                    let saved = self.no_composite;
                    self.no_composite = 0;
                    if self.eat(&Tok::Colon) {
                        let high = if self.peek() == &Tok::RBracket {
                            None
                        } else {
                            Some(Box::new(self.expr()?))
                        };
                        self.no_composite = saved;
                        self.expect(&Tok::RBracket)?;
                        e = Expr::SliceExpr {
                            expr: Box::new(e),
                            low: None,
                            high,
                        };
                    } else {
                        let idx = self.expr()?;
                        if self.eat(&Tok::Colon) {
                            let high = if self.peek() == &Tok::RBracket {
                                None
                            } else {
                                Some(Box::new(self.expr()?))
                            };
                            self.no_composite = saved;
                            self.expect(&Tok::RBracket)?;
                            e = Expr::SliceExpr {
                                expr: Box::new(e),
                                low: Some(Box::new(idx)),
                                high,
                            };
                        } else {
                            self.no_composite = saved;
                            self.expect(&Tok::RBracket)?;
                            e = Expr::Index(Box::new(e), Box::new(idx));
                        }
                    }
                }
                Tok::LBrace if self.no_composite == 0 && composable(&e) => {
                    let elems = self.composite_body()?;
                    let ty = expr_to_type(&e);
                    e = Expr::CompositeLit {
                        ty: ty.map(Box::new),
                        elems,
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    /// Heuristic: does the next call argument start a type rather than an
    /// expression? (`make(map[string]int)`, `make(chan int)`, `new([]T)`).
    fn arg_is_type(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Kw(K::Map) | Tok::Kw(K::Chan) | Tok::Kw(K::Struct) | Tok::Kw(K::Interface)
        ) || (self.peek() == &Tok::LBracket
            && matches!(self.peek_at(1), Tok::RBracket | Tok::Int(_)))
            || (self.peek() == &Tok::Kw(K::Func) && {
                // func type (no body) vs func literal: look for `{` after
                // the signature — too costly; assume literal.
                false
            })
    }

    fn operand(&mut self) -> Result<Expr, ParseError> {
        let pos = self.here();
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(Expr::Ident(pos, name))
            }
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(pos, v))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Expr::Float(pos, v))
            }
            Tok::Str(v) => {
                self.bump();
                Ok(Expr::Str(pos, v))
            }
            Tok::Rune(v) => {
                self.bump();
                Ok(Expr::Rune(pos, v))
            }
            Tok::LParen => {
                self.bump();
                let saved = self.no_composite;
                self.no_composite = 0;
                let inner = self.expr()?;
                self.no_composite = saved;
                self.expect(&Tok::RParen)?;
                Ok(Expr::Paren(Box::new(inner)))
            }
            Tok::Kw(K::Func) => {
                self.bump();
                let sig = self.signature()?;
                let body = self.block()?;
                Ok(Expr::FuncLit {
                    pos,
                    sig: Box::new(sig),
                    body,
                })
            }
            Tok::LBracket | Tok::Kw(K::Map) | Tok::Kw(K::Chan) | Tok::Kw(K::Struct) => {
                // A type in expression position: conversion `[]byte(x)` or a
                // composite literal `[]int{...}` / `map[K]V{...}`.
                let ty = self.parse_type()?;
                match self.peek() {
                    Tok::LBrace => {
                        let elems = self.composite_body()?;
                        Ok(Expr::CompositeLit {
                            ty: Some(Box::new(ty)),
                            elems,
                        })
                    }
                    Tok::LParen => {
                        self.bump();
                        let inner = self.expr()?;
                        self.expect(&Tok::RParen)?;
                        Ok(Expr::Call {
                            func: Box::new(Expr::TypeExpr(Box::new(ty))),
                            args: vec![inner],
                            spread: false,
                        })
                    }
                    other => Err(ParseError::new(
                        self.here(),
                        format!("expected `{{` or `(` after type, found `{other}`"),
                    )),
                }
            }
            other => Err(ParseError::new(
                pos,
                format!("expected expression, found `{other}`"),
            )),
        }
    }

    fn composite_body(&mut self) -> Result<Vec<(Option<Expr>, Expr)>, ParseError> {
        self.expect(&Tok::LBrace)?;
        let saved = self.no_composite;
        self.no_composite = 0;
        let mut elems = Vec::new();
        self.skip_semis();
        while self.peek() != &Tok::RBrace {
            // Nested bare `{...}` elements (inner composite with elided type).
            let first = if self.peek() == &Tok::LBrace {
                let inner = self.composite_body()?;
                Expr::CompositeLit {
                    ty: None,
                    elems: inner,
                }
            } else {
                self.expr()?
            };
            if self.eat(&Tok::Colon) {
                let value = if self.peek() == &Tok::LBrace {
                    let inner = self.composite_body()?;
                    Expr::CompositeLit {
                        ty: None,
                        elems: inner,
                    }
                } else {
                    self.expr()?
                };
                elems.push((Some(first), value));
            } else {
                elems.push((None, first));
            }
            if !self.eat(&Tok::Comma) {
                self.skip_semis();
                break;
            }
            self.skip_semis();
        }
        self.expect(&Tok::RBrace)?;
        self.no_composite = saved;
        Ok(elems)
    }
}

/// Is `e` a legal composite-literal type position (identifier or selector
/// chain, i.e. `T{...}` / `pkg.T{...}`)?
fn composable(e: &Expr) -> bool {
    match e {
        Expr::Ident(_, _) => true,
        Expr::Selector(base, _) => composable(base),
        _ => false,
    }
}

fn expr_to_type(e: &Expr) -> Option<Type> {
    e.dotted().map(Type::Name)
}
