//! Lexing and parsing errors.

use std::fmt;

use crate::token::Pos;

/// An error with a source position, produced by the lexer or parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where the error occurred.
    pub pos: Pos,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// Creates an error at `pos`.
    #[must_use]
    pub fn new(pos: Pos, message: impl Into<String>) -> Self {
        ParseError {
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new(Pos { line: 4, col: 2 }, "unexpected token");
        assert_eq!(e.to_string(), "4:2: unexpected token");
    }
}
