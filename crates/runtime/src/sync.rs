//! Go's `sync` package: `Mutex`, `RWMutex`, `WaitGroup`, `Once`, and
//! `sync/atomic`.
//!
//! Two deliberate fidelity points matter for the study's patterns:
//!
//! * **Value vs. pointer semantics** (Observation 6): a [`Mutex`] handle
//!   clone aliases the same lock (Go pointer semantics), while
//!   [`Mutex::copy_value`] produces an *independent* lock sharing no state —
//!   exactly what happens when a Go `sync.Mutex` is accidentally passed by
//!   value (Listing 7).
//! * **Flexible group synchronization** (Observation 8): [`WaitGroup`]
//!   participants are registered dynamically via `Add`, so misplacing the
//!   `Add` inside the goroutine body lets `Wait` return early (Listing 10) —
//!   the runtime faithfully reproduces that premature unblocking.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use crate::ctx::Ctx;
use crate::event::{AccessKind, EventKind, LockMode, SourceLoc};
use crate::ids::{Addr, LockUid, OnceId, WgId};
use crate::kernel::{BlockReason, LockState, OnceState, WgState};
use crate::runtime::RuntimeError;

/// A Go `sync.Mutex`.
///
/// # Example
///
/// ```
/// use grs_runtime::{NullMonitor, Program, RunConfig, Runtime};
///
/// let p = Program::new("mutex", |ctx| {
///     let mu = ctx.mutex("mu");
///     let counter = ctx.cell("counter", 0i64);
///     let (mu2, c2) = (mu.clone(), counter.clone());
///     ctx.go("worker", move |ctx| {
///         mu2.lock(ctx);
///         ctx.update(&c2, |v| v + 1);
///         mu2.unlock(ctx);
///     });
///     mu.lock(ctx);
///     ctx.update(&counter, |v| v + 1);
///     mu.unlock(ctx);
/// });
/// let (outcome, _) = Runtime::new(RunConfig::with_seed(2)).run(&p, NullMonitor);
/// assert!(outcome.is_clean());
/// ```
#[derive(Debug, Clone)]
pub struct Mutex {
    uid: LockUid,
    name: Arc<str>,
}

impl Ctx {
    /// Creates a mutex.
    pub fn mutex(&self, name: &str) -> Mutex {
        let id = self.kernel().alloc_id();
        self.kernel().lock().locks.insert(id, LockState::default());
        Mutex {
            uid: LockUid(id),
            name: Arc::from(name),
        }
    }

    /// Creates a reader-writer mutex.
    pub fn rwmutex(&self, name: &str) -> RwMutex {
        let id = self.kernel().alloc_id();
        self.kernel().lock().locks.insert(id, LockState::default());
        RwMutex {
            uid: LockUid(id),
            name: Arc::from(name),
        }
    }

    /// Creates a wait group with counter zero.
    pub fn waitgroup(&self, name: &str) -> WaitGroup {
        let id = self.kernel().alloc_id();
        self.kernel().lock().wgs.insert(id, WgState::default());
        WaitGroup {
            id: WgId(id),
            name: Arc::from(name),
        }
    }

    /// Creates a `sync.Once`.
    pub fn once(&self, name: &str) -> Once {
        let id = self.kernel().alloc_id();
        self.kernel()
            .lock()
            .onces
            .insert(id, crate::kernel::OnceSlot::default());
        Once {
            id: OnceId(id),
            name: Arc::from(name),
        }
    }

    /// Creates an atomic integer cell (`sync/atomic`).
    pub fn atomic(&self, name: &str, value: i64) -> AtomicCell {
        AtomicCell {
            addr: Addr(self.kernel().alloc_id()),
            name: Arc::from(name),
            value: Arc::new(AtomicI64::new(value)),
        }
    }
}

impl Mutex {
    /// The lock's identity (stable across handle clones, distinct across
    /// [`Mutex::copy_value`] copies).
    #[must_use]
    pub fn uid(&self) -> LockUid {
        self.uid
    }

    /// The debug name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Models Go's pass-by-value of a `sync.Mutex` (Listing 7): the copy is
    /// a *different* lock sharing no internal state, so critical sections
    /// "protected" by the copy exclude nothing.
    #[must_use]
    pub fn copy_value(&self, ctx: &Ctx) -> Mutex {
        let id = ctx.kernel().alloc_id();
        ctx.kernel().lock().locks.insert(id, LockState::default());
        Mutex {
            uid: LockUid(id),
            name: Arc::from(format!("{} (copy)", self.name).as_str()),
        }
    }

    /// Acquires the lock, blocking while held by anyone (including the
    /// calling goroutine: Go mutexes are not reentrant, so a self-relock
    /// deadlocks, which the runtime reports as such).
    pub fn lock(&self, ctx: &Ctx) {
        let kernel = ctx.kernel().clone();
        let gid = ctx.gid();
        kernel.yield_point(gid);
        let mut k = kernel.lock();
        loop {
            let ls = k.locks.get_mut(&self.uid.0).expect("lock exists");
            if ls.writer.is_none() && ls.readers == 0 {
                ls.writer = Some(gid);
                kernel.emit_locked(
                    &mut k,
                    gid,
                    EventKind::Acquire {
                        lock: self.uid,
                        mode: LockMode::Write,
                    },
                );
                return;
            }
            ls.waiters.push(gid);
            k = kernel.park(k, gid, BlockReason::Lock(self.uid));
        }
    }

    /// Releases the lock. Unlocking an unlocked mutex records
    /// [`RuntimeError::UnlockOfUnlockedMutex`] (Go panics). Like Go, the
    /// unlocker need not be the locker.
    pub fn unlock(&self, ctx: &Ctx) {
        let kernel = ctx.kernel().clone();
        let gid = ctx.gid();
        let mut k = kernel.lock();
        let ls = k.locks.get_mut(&self.uid.0).expect("lock exists");
        if ls.writer.is_none() {
            let name = self.name.to_string();
            k.errors
                .push(RuntimeError::UnlockOfUnlockedMutex { mutex: name });
            return;
        }
        ls.writer = None;
        let waiters = std::mem::take(&mut ls.waiters);
        kernel.emit_locked(
            &mut k,
            gid,
            EventKind::Release {
                lock: self.uid,
                mode: LockMode::Write,
            },
        );
        for g in waiters {
            crate::kernel::Kernel::wake(&mut k, g);
        }
        drop(k);
        kernel.yield_point(gid);
    }

    /// Runs `f` with the lock held (lock/unlock convenience).
    pub fn with<R>(&self, ctx: &Ctx, f: impl FnOnce(&Ctx) -> R) -> R {
        self.lock(ctx);
        let r = f(ctx);
        self.unlock(ctx);
        r
    }
}

/// A Go `sync.RWMutex` with writer preference (as in Go: a blocked writer
/// stops new readers from acquiring).
#[derive(Debug, Clone)]
pub struct RwMutex {
    uid: LockUid,
    name: Arc<str>,
}

impl RwMutex {
    /// The lock's identity.
    #[must_use]
    pub fn uid(&self) -> LockUid {
        self.uid
    }

    /// The debug name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Acquires in shared (read) mode.
    pub fn rlock(&self, ctx: &Ctx) {
        let kernel = ctx.kernel().clone();
        let gid = ctx.gid();
        kernel.yield_point(gid);
        let mut k = kernel.lock();
        loop {
            let ls = k.locks.get_mut(&self.uid.0).expect("lock exists");
            if ls.writer.is_none() && ls.write_waiters.is_empty() {
                ls.readers += 1;
                kernel.emit_locked(
                    &mut k,
                    gid,
                    EventKind::Acquire {
                        lock: self.uid,
                        mode: LockMode::Read,
                    },
                );
                return;
            }
            ls.waiters.push(gid);
            k = kernel.park(k, gid, BlockReason::Lock(self.uid));
        }
    }

    /// Releases shared mode.
    pub fn runlock(&self, ctx: &Ctx) {
        let kernel = ctx.kernel().clone();
        let gid = ctx.gid();
        let mut k = kernel.lock();
        let ls = k.locks.get_mut(&self.uid.0).expect("lock exists");
        if ls.readers == 0 {
            let name = self.name.to_string();
            k.errors
                .push(RuntimeError::UnlockOfUnlockedMutex { mutex: name });
            return;
        }
        ls.readers -= 1;
        let waiters = std::mem::take(&mut ls.waiters);
        kernel.emit_locked(
            &mut k,
            gid,
            EventKind::Release {
                lock: self.uid,
                mode: LockMode::Read,
            },
        );
        for g in waiters {
            crate::kernel::Kernel::wake(&mut k, g);
        }
        drop(k);
        kernel.yield_point(gid);
    }

    /// Acquires in exclusive (write) mode.
    pub fn lock(&self, ctx: &Ctx) {
        let kernel = ctx.kernel().clone();
        let gid = ctx.gid();
        kernel.yield_point(gid);
        let mut k = kernel.lock();
        let mut registered = false;
        loop {
            let ls = k.locks.get_mut(&self.uid.0).expect("lock exists");
            if ls.writer.is_none() && ls.readers == 0 {
                ls.writer = Some(gid);
                if registered {
                    ls.write_waiters.retain(|&g| g != gid);
                }
                kernel.emit_locked(
                    &mut k,
                    gid,
                    EventKind::Acquire {
                        lock: self.uid,
                        mode: LockMode::Write,
                    },
                );
                return;
            }
            if !registered {
                ls.write_waiters.push(gid);
                registered = true;
            }
            ls.waiters.push(gid);
            k = kernel.park(k, gid, BlockReason::Lock(self.uid));
        }
    }

    /// Releases exclusive mode.
    pub fn unlock(&self, ctx: &Ctx) {
        let kernel = ctx.kernel().clone();
        let gid = ctx.gid();
        let mut k = kernel.lock();
        let ls = k.locks.get_mut(&self.uid.0).expect("lock exists");
        if ls.writer.is_none() {
            let name = self.name.to_string();
            k.errors
                .push(RuntimeError::UnlockOfUnlockedMutex { mutex: name });
            return;
        }
        ls.writer = None;
        let waiters = std::mem::take(&mut ls.waiters);
        kernel.emit_locked(
            &mut k,
            gid,
            EventKind::Release {
                lock: self.uid,
                mode: LockMode::Write,
            },
        );
        for g in waiters {
            crate::kernel::Kernel::wake(&mut k, g);
        }
        drop(k);
        kernel.yield_point(gid);
    }

    /// Runs `f` holding the read lock.
    pub fn with_read<R>(&self, ctx: &Ctx, f: impl FnOnce(&Ctx) -> R) -> R {
        self.rlock(ctx);
        let r = f(ctx);
        self.runlock(ctx);
        r
    }

    /// Runs `f` holding the write lock.
    pub fn with_write<R>(&self, ctx: &Ctx, f: impl FnOnce(&Ctx) -> R) -> R {
        self.lock(ctx);
        let r = f(ctx);
        self.unlock(ctx);
        r
    }
}

/// A Go `sync.WaitGroup`: dynamic group synchronization.
#[derive(Debug, Clone)]
pub struct WaitGroup {
    id: WgId,
    name: Arc<str>,
}

impl WaitGroup {
    /// The wait group's identity.
    #[must_use]
    pub fn id(&self) -> WgId {
        self.id
    }

    /// The debug name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `Add(delta)`. A negative resulting counter records
    /// [`RuntimeError::NegativeWaitGroup`] (Go panics) and clamps to zero.
    pub fn add(&self, ctx: &Ctx, delta: i64) {
        let kernel = ctx.kernel().clone();
        let gid = ctx.gid();
        kernel.yield_point(gid);
        let mut k = kernel.lock();
        let ws = k.wgs.get_mut(&self.id.0).expect("waitgroup exists");
        ws.counter += delta;
        let mut counter = ws.counter;
        if counter < 0 {
            ws.counter = 0;
            counter = 0;
            let name = self.name.to_string();
            k.errors
                .push(RuntimeError::NegativeWaitGroup { waitgroup: name });
        }
        kernel.emit_locked(
            &mut k,
            gid,
            EventKind::WgAdd {
                wg: self.id,
                delta,
                counter,
            },
        );
        if counter == 0 {
            let ws = k.wgs.get_mut(&self.id.0).expect("waitgroup exists");
            let waiters = std::mem::take(&mut ws.waiters);
            for g in waiters {
                crate::kernel::Kernel::wake(&mut k, g);
            }
        }
    }

    /// `Done()` — shorthand for `Add(-1)`.
    pub fn done(&self, ctx: &Ctx) {
        self.add(ctx, -1);
    }

    /// Blocks until the counter is zero.
    ///
    /// Faithful to Go's flexibility (Observation 8): if the `Add` calls
    /// race with `Wait` — e.g. `Add(1)` misplaced inside the goroutine
    /// bodies as in Listing 10 — `Wait` can observe a transient zero and
    /// return before the workers were ever registered.
    pub fn wait(&self, ctx: &Ctx) {
        let kernel = ctx.kernel().clone();
        let gid = ctx.gid();
        kernel.yield_point(gid);
        let mut k = kernel.lock();
        loop {
            let ws = k.wgs.get_mut(&self.id.0).expect("waitgroup exists");
            if ws.counter == 0 {
                kernel.emit_locked(&mut k, gid, EventKind::WgWait { wg: self.id });
                return;
            }
            ws.waiters.push(gid);
            k = kernel.park(k, gid, BlockReason::WgWait(self.id));
        }
    }
}

/// A Go `sync.Once`.
#[derive(Debug, Clone)]
pub struct Once {
    id: OnceId,
    name: Arc<str>,
}

impl Once {
    /// The once's identity.
    #[must_use]
    pub fn id(&self) -> OnceId {
        self.id
    }

    /// The debug name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Runs `f` exactly once across all callers; every `do_once` return
    /// happens-after the single execution, as in Go.
    pub fn do_once(&self, ctx: &Ctx, f: impl FnOnce(&Ctx)) {
        let kernel = ctx.kernel().clone();
        let gid = ctx.gid();
        kernel.yield_point(gid);
        let mut k = kernel.lock();
        loop {
            let slot = k.onces.get_mut(&self.id.0).expect("once exists");
            match slot.state {
                OnceState::NotRun => {
                    slot.state = OnceState::Running;
                    drop(k);
                    f(ctx);
                    let mut k = kernel.lock();
                    let slot = k.onces.get_mut(&self.id.0).expect("once exists");
                    slot.state = OnceState::Done;
                    let waiters = std::mem::take(&mut slot.waiters);
                    kernel.emit_locked(&mut k, gid, EventKind::OnceExecuted { once: self.id });
                    for g in waiters {
                        crate::kernel::Kernel::wake(&mut k, g);
                    }
                    return;
                }
                OnceState::Running => {
                    slot.waiters.push(gid);
                    k = kernel.park(k, gid, BlockReason::Once(self.id));
                }
                OnceState::Done => {
                    kernel.emit_locked(&mut k, gid, EventKind::OnceObserved { once: self.id });
                    return;
                }
            }
        }
    }
}

/// An atomic integer (`sync/atomic`), plus the *plain* access methods a
/// developer reaches for when they forget atomicity on one side (§4.9.2:
/// "used atomics for writing … but forgot to use it to read").
#[derive(Debug, Clone)]
pub struct AtomicCell {
    addr: Addr,
    name: Arc<str>,
    value: Arc<AtomicI64>,
}

impl AtomicCell {
    /// The shadow address (shared by atomic and plain accesses, so the
    /// detector can pair them).
    #[must_use]
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Atomic load.
    #[track_caller]
    pub fn load(&self, ctx: &Ctx) -> i64 {
        let loc = SourceLoc::here();
        ctx.access(self.addr, self.name.clone(), AccessKind::AtomicRead, loc);
        self.value.load(Ordering::SeqCst)
    }

    /// Atomic store.
    #[track_caller]
    pub fn store(&self, ctx: &Ctx, v: i64) {
        let loc = SourceLoc::here();
        ctx.access(self.addr, self.name.clone(), AccessKind::AtomicWrite, loc);
        self.value.store(v, Ordering::SeqCst);
    }

    /// Atomic fetch-add; returns the new value (Go's `atomic.AddInt64`).
    #[track_caller]
    pub fn add(&self, ctx: &Ctx, delta: i64) -> i64 {
        let loc = SourceLoc::here();
        ctx.access(self.addr, self.name.clone(), AccessKind::AtomicWrite, loc);
        self.value.fetch_add(delta, Ordering::SeqCst) + delta
    }

    /// Atomic compare-and-swap; returns whether the swap happened.
    #[track_caller]
    pub fn compare_and_swap(&self, ctx: &Ctx, old: i64, new: i64) -> bool {
        let loc = SourceLoc::here();
        ctx.access(self.addr, self.name.clone(), AccessKind::AtomicWrite, loc);
        self.value
            .compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Non-atomic load of the same variable — the §4.9.2 mistake.
    #[track_caller]
    pub fn load_plain(&self, ctx: &Ctx) -> i64 {
        let loc = SourceLoc::here();
        ctx.access(self.addr, self.name.clone(), AccessKind::Read, loc);
        self.value.load(Ordering::SeqCst)
    }

    /// Non-atomic store of the same variable — the §4.9.2 mistake.
    #[track_caller]
    pub fn store_plain(&self, ctx: &Ctx, v: i64) {
        let loc = SourceLoc::here();
        ctx.access(self.addr, self.name.clone(), AccessKind::Write, loc);
        self.value.store(v, Ordering::SeqCst);
    }
}
