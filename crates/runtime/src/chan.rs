//! Go channels: buffered and unbuffered, with `close` and 2-way `select`.
//!
//! Happens-before edges follow the Go memory model:
//!
//! * the `k`-th send happens-before the `k`-th receive completes,
//! * for a channel of capacity `C`, the `k`-th receive happens-before the
//!   `k+C`-th send completes (backpressure edge),
//! * for an unbuffered channel the receive also happens-before the send
//!   *completes* (rendezvous),
//! * `close` happens-before any receive that observes the closed state.
//!
//! The runtime emits `ChanSend`/`ChanRecv`/`ChanSendComplete`/`ChanClose`
//! events carrying per-channel sequence numbers; the detector reconstructs
//! the edges from those.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::ctx::Ctx;
use crate::event::EventKind;
use crate::ids::ChanId;
use crate::kernel::{BlockReason, ChanState, KState, Kernel};
use crate::runtime::RuntimeError;

/// Result of a (blocking) receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvResult<T> {
    /// A value was received.
    Value(T),
    /// The channel is closed and drained; Go returns the zero value with
    /// `ok == false`.
    Closed,
}

impl<T> RecvResult<T> {
    /// The received value, if any.
    pub fn value(self) -> Option<T> {
        match self {
            RecvResult::Value(v) => Some(v),
            RecvResult::Closed => None,
        }
    }

    /// True when the channel was closed (Go's `ok == false`).
    pub fn is_closed(&self) -> bool {
        matches!(self, RecvResult::Closed)
    }
}

/// Which arm a two-channel `select` took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selected2<A, B> {
    /// The first channel was ready.
    First(RecvResult<A>),
    /// The second channel was ready.
    Second(RecvResult<B>),
}

/// A Go channel carrying values of type `T`.
///
/// Handles are cheap to clone and all alias the same channel, as in Go.
///
/// # Example
///
/// ```
/// use grs_runtime::{NullMonitor, Program, RunConfig, Runtime};
///
/// let p = Program::new("chan", |ctx| {
///     let ch = ctx.chan::<i64>("results", 0); // unbuffered
///     let tx = ch.clone();
///     ctx.go("producer", move |ctx| tx.send(ctx, 42));
///     assert_eq!(ch.recv(ctx).value(), Some(42));
/// });
/// let (outcome, _) = Runtime::new(RunConfig::with_seed(1)).run(&p, NullMonitor);
/// assert!(outcome.is_clean());
/// ```
pub struct Chan<T> {
    id: ChanId,
    name: Arc<str>,
    buf: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Chan<T> {
    fn clone(&self) -> Self {
        Chan {
            id: self.id,
            name: self.name.clone(),
            buf: self.buf.clone(),
        }
    }
}

impl<T> std::fmt::Debug for Chan<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chan")
            .field("id", &self.id)
            .field("name", &self.name)
            .finish()
    }
}

impl Ctx {
    /// Creates a channel with the given capacity (`0` = unbuffered).
    pub fn chan<T: Send + 'static>(&self, name: &str, cap: usize) -> Chan<T> {
        let id = self.kernel().alloc_id();
        let mut k = self.kernel().lock();
        k.chans.insert(id, ChanState::new(cap));
        drop(k);
        Chan {
            id: ChanId(id),
            name: Arc::from(name),
            buf: Arc::new(Mutex::new(VecDeque::new())),
        }
    }
}

fn wake_senders(k: &mut KState, id: u64) {
    let list = std::mem::take(&mut k.chans.get_mut(&id).expect("channel exists").send_waiters);
    for g in list {
        Kernel::wake(k, g);
    }
}

fn wake_receivers(k: &mut KState, id: u64) {
    let list = std::mem::take(&mut k.chans.get_mut(&id).expect("channel exists").recv_waiters);
    for g in list {
        Kernel::wake(k, g);
    }
}

fn wake_all(k: &mut KState, id: u64) {
    wake_senders(k, id);
    wake_receivers(k, id);
}

impl<T: Send + 'static> Chan<T> {
    /// The channel's identity.
    #[must_use]
    pub fn id(&self) -> ChanId {
        self.id
    }

    /// The debug name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sends `value`, blocking while the buffer is full (or, for an
    /// unbuffered channel, until a receiver takes the value).
    ///
    /// Sending on a closed channel records
    /// [`RuntimeError::SendOnClosedChannel`] (Go panics) and drops the
    /// value.
    pub fn send(&self, ctx: &Ctx, value: T) {
        let kernel = ctx.kernel().clone();
        let gid = ctx.gid();
        kernel.yield_point(gid);
        let mut pending = Some(value);
        let mut k = kernel.lock();
        loop {
            let cs = k.chans.get(&self.id.0).expect("channel exists");
            if cs.closed {
                let name = self.name.to_string();
                k.errors.push(RuntimeError::SendOnClosedChannel { channel: name });
                return;
            }
            let can_proceed = if cs.cap == 0 {
                cs.qlen == 0 && !cs.recv_waiters.is_empty()
            } else {
                cs.qlen < cs.cap
            };
            if can_proceed {
                let (cap, seq) = {
                    let cs = k.chans.get_mut(&self.id.0).expect("channel exists");
                    cs.qlen += 1;
                    let seq = cs.send_seq;
                    cs.send_seq += 1;
                    (cs.cap, seq)
                };
                self.buf
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push_back(pending.take().expect("value still pending"));
                kernel.emit_locked(&mut k, gid, EventKind::ChanSend { chan: self.id, seq });
                wake_receivers(&mut k, self.id.0);
                if cap == 0 {
                    // Rendezvous: block until the value is consumed.
                    loop {
                        let cs = k.chans.get(&self.id.0).expect("channel exists");
                        if cs.recv_seq > seq || cs.closed {
                            break;
                        }
                        k.chans
                            .get_mut(&self.id.0)
                            .expect("channel exists")
                            .send_waiters
                            .push(gid);
                        k = kernel.park(k, gid, BlockReason::ChanSend(self.id));
                    }
                }
                kernel.emit_locked(
                    &mut k,
                    gid,
                    EventKind::ChanSendComplete {
                        chan: self.id,
                        seq,
                        cap,
                    },
                );
                return;
            }
            k.chans
                .get_mut(&self.id.0)
                .expect("channel exists")
                .send_waiters
                .push(gid);
            k = kernel.park(k, gid, BlockReason::ChanSend(self.id));
        }
    }

    /// Receives a value, blocking while the channel is empty and open.
    pub fn recv(&self, ctx: &Ctx) -> RecvResult<T> {
        let kernel = ctx.kernel().clone();
        let gid = ctx.gid();
        kernel.yield_point(gid);
        let mut k = kernel.lock();
        loop {
            match self.try_take_locked(ctx, &mut k) {
                Some(r) => return r,
                None => {
                    k.chans
                        .get_mut(&self.id.0)
                        .expect("channel exists")
                        .recv_waiters
                        .push(gid);
                    k = kernel.park(k, gid, BlockReason::ChanRecv(self.id));
                }
            }
        }
    }

    /// Non-blocking send attempt: returns the value back when the channel
    /// cannot accept it right now (used by `select` send arms).
    ///
    /// Sending on a closed channel records the error (like [`Chan::send`])
    /// and reports success (the arm "fired", as Go's select would panic).
    /// On an unbuffered channel, success requires a parked receiver and —
    /// as in Go — the send then completes the rendezvous (briefly
    /// blocking until the value is consumed).
    pub fn try_send(&self, ctx: &Ctx, value: T) -> Result<(), T> {
        let kernel = ctx.kernel().clone();
        let gid = ctx.gid();
        kernel.yield_point(gid);
        let mut k = kernel.lock();
        let cs = k.chans.get(&self.id.0).expect("channel exists");
        if cs.closed {
            let name = self.name.to_string();
            k.errors.push(RuntimeError::SendOnClosedChannel { channel: name });
            return Ok(());
        }
        let can_proceed = if cs.cap == 0 {
            cs.qlen == 0 && !cs.recv_waiters.is_empty()
        } else {
            cs.qlen < cs.cap
        };
        if !can_proceed {
            return Err(value);
        }
        let (cap, seq) = {
            let cs = k.chans.get_mut(&self.id.0).expect("channel exists");
            cs.qlen += 1;
            let seq = cs.send_seq;
            cs.send_seq += 1;
            (cs.cap, seq)
        };
        self.buf
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(value);
        kernel.emit_locked(&mut k, gid, EventKind::ChanSend { chan: self.id, seq });
        wake_receivers(&mut k, self.id.0);
        if cap == 0 {
            loop {
                let cs = k.chans.get(&self.id.0).expect("channel exists");
                if cs.recv_seq > seq || cs.closed {
                    break;
                }
                k.chans
                    .get_mut(&self.id.0)
                    .expect("channel exists")
                    .send_waiters
                    .push(gid);
                k = kernel.park(k, gid, BlockReason::ChanSend(self.id));
            }
        }
        kernel.emit_locked(
            &mut k,
            gid,
            EventKind::ChanSendComplete {
                chan: self.id,
                seq,
                cap,
            },
        );
        Ok(())
    }

    /// Non-blocking receive: `None` when nothing is immediately available
    /// and the channel is open (the `default` arm of a Go `select`).
    pub fn try_recv(&self, ctx: &Ctx) -> Option<RecvResult<T>> {
        let kernel = ctx.kernel().clone();
        kernel.yield_point(ctx.gid());
        let mut k = kernel.lock();
        self.try_take_locked(ctx, &mut k)
    }

    /// Attempts to take a value (or observe closure) under the kernel lock.
    /// Also prods rendezvous senders on an unbuffered channel.
    fn try_take_locked(&self, ctx: &Ctx, k: &mut KState) -> Option<RecvResult<T>> {
        let kernel = ctx.kernel();
        let gid = ctx.gid();
        let cs = k.chans.get(&self.id.0).expect("channel exists");
        if cs.qlen > 0 {
            let seq = {
                let cs = k.chans.get_mut(&self.id.0).expect("channel exists");
                cs.qlen -= 1;
                let seq = cs.recv_seq;
                cs.recv_seq += 1;
                seq
            };
            let v = self
                .buf
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
                .expect("buffer tracks qlen");
            kernel.emit_locked(k, gid, EventKind::ChanRecv { chan: self.id, seq });
            wake_senders(k, self.id.0);
            return Some(RecvResult::Value(v));
        }
        if cs.closed {
            kernel.emit_locked(k, gid, EventKind::ChanRecvClosed { chan: self.id });
            return Some(RecvResult::Closed);
        }
        // Unbuffered and empty: prod parked senders so they can rendezvous
        // with us once we register as a receiver.
        if cs.cap == 0 && !cs.send_waiters.is_empty() {
            wake_senders(k, self.id.0);
        }
        None
    }

    /// Closes the channel. Receivers drain remaining values, then observe
    /// closure. Double-close records [`RuntimeError::CloseOfClosedChannel`]
    /// (Go panics).
    pub fn close(&self, ctx: &Ctx) {
        let kernel = ctx.kernel().clone();
        let gid = ctx.gid();
        kernel.yield_point(gid);
        let mut k = kernel.lock();
        let cs = k.chans.get_mut(&self.id.0).expect("channel exists");
        if cs.closed {
            let name = self.name.to_string();
            k.errors
                .push(RuntimeError::CloseOfClosedChannel { channel: name });
            return;
        }
        cs.closed = true;
        kernel.emit_locked(&mut k, gid, EventKind::ChanClose { chan: self.id });
        wake_all(&mut k, self.id.0);
    }

    /// Whether the channel has been closed (instrumentation-free peek used
    /// by tests).
    #[must_use]
    pub fn is_closed(&self, ctx: &Ctx) -> bool {
        let k = ctx.kernel().lock();
        k.chans.get(&self.id.0).expect("channel exists").closed
    }
}

/// Blocking `select` over two receive arms (covers the study's patterns,
/// e.g. Listing 9's `select { case <-f.ch: ...; case <-ctx.Done(): ... }`).
///
/// When both channels are ready one is chosen pseudo-randomly (Go's
/// semantics), using the run's seeded RNG so the choice is reproducible.
pub fn select2_recv<A: Send + 'static, B: Send + 'static>(
    ctx: &Ctx,
    a: &Chan<A>,
    b: &Chan<B>,
) -> Selected2<A, B> {
    let kernel = ctx.kernel().clone();
    let gid = ctx.gid();
    kernel.yield_point(gid);
    let mut k = kernel.lock();
    loop {
        let a_ready = chan_ready(&k, a.id.0);
        let b_ready = chan_ready(&k, b.id.0);
        let take_first = match (a_ready, b_ready) {
            (true, true) => {
                use rand::Rng;
                k.rng.gen_bool(0.5)
            }
            (true, false) => true,
            (false, true) => false,
            (false, false) => {
                for id in [a.id.0, b.id.0] {
                    let cs = k.chans.get(&id).expect("channel exists");
                    if cs.cap == 0 && !cs.send_waiters.is_empty() {
                        wake_senders(&mut k, id);
                    }
                    k.chans
                        .get_mut(&id)
                        .expect("channel exists")
                        .recv_waiters
                        .push(gid);
                }
                k = kernel.park(k, gid, BlockReason::Select);
                continue;
            }
        };
        if take_first {
            if let Some(r) = a.try_take_locked(ctx, &mut k) {
                return Selected2::First(r);
            }
        } else if let Some(r) = b.try_take_locked(ctx, &mut k) {
            return Selected2::Second(r);
        }
        // Raced with another consumer between the readiness check and the
        // take; go around again.
    }
}

fn chan_ready(k: &KState, id: u64) -> bool {
    let cs = k.chans.get(&id).expect("channel exists");
    cs.qlen > 0 || cs.closed
}
