//! [`GoSlice`] — Go slices with their three-word header semantics.
//!
//! A Go slice value is a header of three words — pointer, length, capacity
//! (the study's "meta fields") — over a shared backing array. The paper's
//! single largest Go-specific race category (Table 2: 391 races) is
//! concurrent slice access, and its subtlest instance (Listing 5) races a
//! lock-protected `append` against the *unprotected header copy* made when
//! the slice is passed by value to a goroutine.
//!
//! This model gives each header word and each element its own shadow
//! address:
//!
//! * [`GoSlice::append`] reads and writes the header words and writes the
//!   element slot (growing reallocates, which also writes the pointer
//!   word);
//! * [`GoSlice::copy_value`] *reads* the three header words — with whatever
//!   locks the caller happens to hold — and produces a new header aliasing
//!   the same backing array, exactly like Go's pass-by-value;
//! * cloning the handle aliases the same header (capture by reference).
//!
//! Simplification vs. real Go: after a growth reallocation, value-copied
//! headers keep observing the live backing array rather than the abandoned
//! one. This does not affect which accesses conflict — the detector's view
//! (header reads vs. header writes, element reads vs. element writes) is
//! identical — only the values a stale header would observe.

use std::sync::{Arc, Mutex};

use crate::ctx::Ctx;
use crate::event::{AccessKind, SourceLoc};
use crate::ids::Addr;

#[derive(Debug)]
struct Backing<T> {
    elems: Vec<T>,
    elem_addrs: Vec<Addr>,
}

#[derive(Debug)]
struct Header {
    addr_ptr: Addr,
    addr_len: Addr,
    addr_cap: Addr,
    /// (len, cap) of this header view.
    dims: Mutex<(usize, usize)>,
}

/// A Go slice of `T`.
///
/// # Example
///
/// ```
/// use grs_runtime::{GoSlice, NullMonitor, Program, RunConfig, Runtime};
///
/// let p = Program::new("slice", |ctx| {
///     let s: GoSlice<i64> = GoSlice::make(ctx, "results", 0);
///     s.append(ctx, 10);
///     s.append(ctx, 20);
///     assert_eq!(s.len(ctx), 2);
///     assert_eq!(s.get(ctx, 1), 20);
/// });
/// let (outcome, _) = Runtime::new(RunConfig::with_seed(3)).run(&p, NullMonitor);
/// assert!(outcome.is_clean());
/// ```
pub struct GoSlice<T> {
    name: Arc<str>,
    header: Arc<Header>,
    backing: Arc<Mutex<Backing<T>>>,
}

impl<T> Clone for GoSlice<T> {
    fn clone(&self) -> Self {
        GoSlice {
            name: self.name.clone(),
            header: self.header.clone(),
            backing: self.backing.clone(),
        }
    }
}

impl<T> std::fmt::Debug for GoSlice<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GoSlice").field("name", &self.name).finish()
    }
}

impl<T: Clone + Send + 'static> GoSlice<T> {
    /// Go's `make([]T, len)` — elements require `T: Default` to zero-fill,
    /// so the common empty case is `make(ctx, name, 0)` for any `T`.
    #[must_use]
    pub fn make(ctx: &Ctx, name: &str, len: usize) -> Self
    where
        T: Default,
    {
        let s = Self::empty(ctx, name);
        {
            let mut b = s.backing.lock().unwrap_or_else(|e| e.into_inner());
            for _ in 0..len {
                b.elems.push(T::default());
                b.elem_addrs.push(Addr(ctx.kernel().alloc_id()));
            }
            *s.header.dims.lock().unwrap_or_else(|e| e.into_inner()) = (len, len);
        }
        s
    }

    /// An empty slice (`var s []T`).
    #[must_use]
    pub fn empty(ctx: &Ctx, name: &str) -> Self {
        let k = ctx.kernel();
        GoSlice {
            name: Arc::from(name),
            header: Arc::new(Header {
                addr_ptr: Addr(k.alloc_id()),
                addr_len: Addr(k.alloc_id()),
                addr_cap: Addr(k.alloc_id()),
                dims: Mutex::new((0, 0)),
            }),
            backing: Arc::new(Mutex::new(Backing {
                elems: Vec::new(),
                elem_addrs: Vec::new(),
            })),
        }
    }

    /// The debug name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The header-word shadow addresses `(ptr, len, cap)`.
    #[must_use]
    pub fn header_addrs(&self) -> (Addr, Addr, Addr) {
        (
            self.header.addr_ptr,
            self.header.addr_len,
            self.header.addr_cap,
        )
    }

    fn touch_header(&self, ctx: &Ctx, kind: AccessKind, loc: SourceLoc) {
        let object: Arc<str> = Arc::from(format!("{}[header]", self.name).as_str());
        ctx.access(self.header.addr_ptr, object.clone(), kind, loc);
        ctx.access(self.header.addr_len, object.clone(), kind, loc);
        ctx.access(self.header.addr_cap, object, kind, loc);
    }

    /// `s = append(s, value)`.
    ///
    /// Reads then writes the header words (a growth step also rewrites the
    /// pointer word) and writes the new element slot. Concurrent `append`s,
    /// or an `append` concurrent with *any* header read (including
    /// [`GoSlice::copy_value`] and [`GoSlice::len`]), race.
    #[track_caller]
    pub fn append(&self, ctx: &Ctx, value: T) {
        let loc = SourceLoc::here();
        // Read current len/cap.
        self.touch_header(ctx, AccessKind::Read, loc);
        let (len, cap) = *self.header.dims.lock().unwrap_or_else(|e| e.into_inner());
        let grows = len == cap;
        // Write back the updated header (all three words when growing).
        self.touch_header(ctx, AccessKind::Write, loc);
        let elem_addr = {
            let mut b = self.backing.lock().unwrap_or_else(|e| e.into_inner());
            if b.elems.len() <= len {
                b.elems.resize_with(len + 1, || value.clone());
                while b.elem_addrs.len() < len + 1 {
                    let a = Addr(ctx.kernel().alloc_id());
                    b.elem_addrs.push(a);
                }
            }
            b.elems[len] = value;
            b.elem_addrs[len]
        };
        {
            let mut dims = self.header.dims.lock().unwrap_or_else(|e| e.into_inner());
            dims.0 = len + 1;
            if grows {
                dims.1 = (cap * 2).max(1);
            }
        }
        let object: Arc<str> = Arc::from(format!("{}[{}]", self.name, len).as_str());
        ctx.access(elem_addr, object, AccessKind::Write, loc);
    }

    /// `s[i]` — reads the length word (bounds check) and the element.
    ///
    /// # Panics
    ///
    /// Panics (recorded as a goroutine panic, like Go's
    /// `index out of range`) when `i >= len`.
    #[track_caller]
    pub fn get(&self, ctx: &Ctx, i: usize) -> T {
        let loc = SourceLoc::here();
        let object: Arc<str> = Arc::from(format!("{}[header]", self.name).as_str());
        ctx.access(self.header.addr_len, object, AccessKind::Read, loc);
        let (len, _) = *self.header.dims.lock().unwrap_or_else(|e| e.into_inner());
        assert!(i < len, "index out of range [{i}] with length {len}");
        let (v, addr) = {
            let b = self.backing.lock().unwrap_or_else(|e| e.into_inner());
            (b.elems[i].clone(), b.elem_addrs[i])
        };
        let object: Arc<str> = Arc::from(format!("{}[{}]", self.name, i).as_str());
        ctx.access(addr, object, AccessKind::Read, loc);
        v
    }

    /// `s[i] = value`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len`, like Go.
    #[track_caller]
    pub fn set(&self, ctx: &Ctx, i: usize, value: T) {
        let loc = SourceLoc::here();
        let object: Arc<str> = Arc::from(format!("{}[header]", self.name).as_str());
        ctx.access(self.header.addr_len, object, AccessKind::Read, loc);
        let (len, _) = *self.header.dims.lock().unwrap_or_else(|e| e.into_inner());
        assert!(i < len, "index out of range [{i}] with length {len}");
        let addr = {
            let mut b = self.backing.lock().unwrap_or_else(|e| e.into_inner());
            b.elems[i] = value;
            b.elem_addrs[i]
        };
        let object: Arc<str> = Arc::from(format!("{}[{}]", self.name, i).as_str());
        ctx.access(addr, object, AccessKind::Write, loc);
    }

    /// `len(s)` — reads the length header word.
    #[track_caller]
    #[must_use]
    pub fn len(&self, ctx: &Ctx) -> usize {
        let loc = SourceLoc::here();
        let object: Arc<str> = Arc::from(format!("{}[header]", self.name).as_str());
        ctx.access(self.header.addr_len, object, AccessKind::Read, loc);
        self.header.dims.lock().unwrap_or_else(|e| e.into_inner()).0
    }

    /// True when `len(s) == 0`.
    #[track_caller]
    #[must_use]
    pub fn is_empty(&self, ctx: &Ctx) -> bool {
        self.len(ctx) == 0
    }

    /// Passing the slice *by value* (Listing 5's bug): copies the three
    /// header words — instrumented as unprotected reads — into a fresh
    /// header that shares the backing array.
    #[track_caller]
    #[must_use]
    pub fn copy_value(&self, ctx: &Ctx) -> GoSlice<T> {
        let loc = SourceLoc::here();
        self.touch_header(ctx, AccessKind::Read, loc);
        let dims = *self.header.dims.lock().unwrap_or_else(|e| e.into_inner());
        let k = ctx.kernel();
        GoSlice {
            name: self.name.clone(),
            header: Arc::new(Header {
                addr_ptr: Addr(k.alloc_id()),
                addr_len: Addr(k.alloc_id()),
                addr_cap: Addr(k.alloc_id()),
                dims: Mutex::new(dims),
            }),
            backing: self.backing.clone(),
        }
    }

    /// Uninstrumented snapshot of the current elements (for assertions in
    /// tests and examples, not part of the simulated program).
    #[must_use]
    pub fn snapshot(&self) -> Vec<T> {
        let len = self.header.dims.lock().unwrap_or_else(|e| e.into_inner()).0;
        let b = self.backing.lock().unwrap_or_else(|e| e.into_inner());
        b.elems.iter().take(len).cloned().collect()
    }
}
