//! A deterministic, instrumented Go-semantics concurrency runtime.
//!
//! The PLDI'22 study *"A Study of Real-World Data Races in Golang"* analyzes
//! races that arise from Go's concurrency model: goroutines, channels,
//! `sync.Mutex`/`RWMutex`/`WaitGroup`, built-in maps, slices with shared
//! backing arrays, and closures that capture free variables by reference.
//! Rust's ownership system statically rules these races out, so reproducing
//! the study requires a substrate that deliberately reintroduces Go's
//! semantics under runtime (not compile-time) supervision.
//!
//! This crate is that substrate. It provides:
//!
//! * **Goroutines** — [`Ctx::go`] spawns a concurrent task; bodies are plain
//!   Rust closures that receive a [`Ctx`] handle for every instrumented
//!   operation.
//! * **A deterministic scheduler** — exactly one goroutine runs at a time;
//!   every instrumented operation is a preemption point, and the schedule is
//!   a pure function of the seed and [`Strategy`] (random walk, PCT,
//!   round-robin). Re-running with the same seed replays the same
//!   interleaving, which makes the nondeterminism the paper wrestles with
//!   (§3.2) *reproducible*.
//! * **Go-shaped shared memory** — [`Cell`] (a shared variable),
//!   [`GoSlice`] (header of ptr/len/cap meta-words over a shared backing
//!   array — Listing 5's race), [`GoMap`] (a thread-unsafe hash table whose
//!   every mutation touches the shared structure — Observation 5), and
//!   [`AtomicCell`] (for partial-atomic-use races, §4.9.2).
//! * **Go synchronization** — [`Chan`] (buffered/unbuffered channels with
//!   `select`), [`Mutex`], [`RwMutex`], [`WaitGroup`], [`Once`], and a
//!   Go-style cancellable [`GoContext`], all emitting the happens-before
//!   edges of the Go memory model.
//! * **Instrumentation** — every memory access and synchronization operation
//!   is reported to a [`Monitor`] (the `grs-detector` crate implements
//!   FastTrack / Eraser / hybrid monitors) together with a Go-style call
//!   stack and source location.
//!
//! # Example
//!
//! The loop-index-variable capture race of Listing 1:
//!
//! ```
//! use grs_runtime::{Program, RunConfig, Runtime};
//! use grs_runtime::monitor::RecordingMonitor;
//!
//! let program = Program::new("loop_capture", |ctx| {
//!     let job = ctx.cell("job", 0i64); // the captured loop variable
//!     for i in 0..3 {
//!         ctx.write(&job, i); // loop advance: write in parent
//!         let job = job.clone(); // capture *by reference* (same address)
//!         ctx.go("worker", move |ctx| {
//!             let _ = ctx.read(&job); // concurrent read in goroutine
//!         });
//!     }
//! });
//! let (outcome, monitor) =
//!     Runtime::new(RunConfig::with_seed(7)).run(&program, RecordingMonitor::new());
//! assert!(outcome.is_clean());
//! assert!(!monitor.events().is_empty());
//! ```

pub mod batch;
pub mod cell;
pub mod chan;
pub mod context;
pub mod ctx;
pub mod depot;
pub mod event;
pub mod gomap;
pub mod ids;
pub mod kernel;
pub mod monitor;
pub mod runtime;
pub mod sched;
pub mod slice;
pub mod sync;
pub mod trace;

pub use batch::{BatchDecoder, DecodedTrace, EventBatch, DEFAULT_CHUNK_EVENTS};
pub use cell::Cell;
pub use chan::{Chan, RecvResult, Selected2};
pub use context::GoContext;
pub use ctx::Ctx;
pub use depot::{DepotStats, StackDepot, StackId};
pub use event::{AccessKind, Event, Frame, SourceLoc, Stack};
pub use gomap::GoMap;
pub use ids::{Addr, ChanId, Gid, LockUid, OnceId, WgId};
pub use monitor::{Monitor, MonitorStats, NullMonitor, ObsMonitor, RecordingMonitor, TraceHasher};
pub use runtime::{calibrate_steps, Program, RunConfig, RunOutcome, Runtime, RuntimeError};
pub use sched::{
    GuidedPolicy, PctPolicy, RandomPolicy, RoundRobinPolicy, ScheduleDecision, SchedulePolicy,
    ScheduleTrace, Strategy, SCHEDULE_TRACE_MAGIC, SCHEDULE_TRACE_VERSION,
};
pub use slice::GoSlice;
pub use sync::{AtomicCell, Mutex, Once, RwMutex, WaitGroup};
pub use trace::{
    record, record_with_depot, ReproArtifact, StackNode, Trace, TraceDecodeError, TraceMeta,
    TraceRecorder, TRACE_FORMAT_VERSION, TRACE_MAGIC,
};

/// The types every runtime user imports, for `use grs_runtime::prelude::*`.
pub mod prelude {
    pub use crate::batch::{BatchDecoder, DecodedTrace, EventBatch};
    pub use crate::depot::{StackDepot, StackId};
    pub use crate::event::{AccessKind, Event};
    pub use crate::monitor::{
        Monitor, MonitorStats, NullMonitor, ObsMonitor, RecordingMonitor, TraceHasher,
    };
    pub use crate::runtime::{calibrate_steps, Program, RunConfig, RunOutcome, Runtime};
    pub use crate::sched::{ScheduleTrace, Strategy};
    pub use crate::trace::{record, record_with_depot, ReproArtifact, Trace, TraceRecorder};
}
