//! [`Cell`] — one shared Go variable.

use std::sync::{Arc, Mutex};

use crate::ids::Addr;

/// A shared variable with Go's aliasing semantics.
///
/// Cloning a `Cell` clones the *handle*, not the value: both handles refer
/// to the same shadow address and the same storage. This models Go closures
/// capturing free variables by reference (the root cause behind the paper's
/// Observation 3 races: loop index variables, `err` variables, and named
/// return values captured into goroutines).
///
/// The underlying storage is internally synchronized so the *host* program
/// (this Rust process) has no undefined behavior; the *simulated* data race
/// is what the detector observes through the instrumented accesses in
/// [`crate::Ctx::read`] / [`crate::Ctx::write`].
///
/// # Example
///
/// ```
/// use grs_runtime::{NullMonitor, Program, RunConfig, Runtime};
///
/// let p = Program::new("cells", |ctx| {
///     let err = ctx.cell("err", None::<String>);
///     let alias = err.clone(); // same variable, as in a closure capture
///     ctx.write(&alias, Some("boom".into()));
///     assert_eq!(ctx.read(&err), Some("boom".to_string()));
/// });
/// let (outcome, _) = Runtime::new(RunConfig::with_seed(0)).run(&p, NullMonitor);
/// assert!(outcome.is_clean());
/// ```
pub struct Cell<T> {
    addr: Addr,
    name: Arc<str>,
    storage: Arc<Mutex<T>>,
}

impl<T: Clone + Send + 'static> Cell<T> {
    pub(crate) fn new(id: u64, name: &str, value: T) -> Self {
        Cell {
            addr: Addr(id),
            name: Arc::from(name),
            storage: Arc::new(Mutex::new(value)),
        }
    }

    /// The shadow address of this variable.
    #[must_use]
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// The debug name given at creation.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    pub(crate) fn name_arc(&self) -> Arc<str> {
        self.name.clone()
    }

    /// Uninstrumented load (used by `Ctx` after emitting the access event;
    /// also handy for assertions in tests, where the "access" is the test
    /// harness's, not the program's).
    #[must_use]
    pub fn load(&self) -> T {
        self.storage
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Uninstrumented store (see [`Cell::load`]).
    pub fn store(&self, value: T) {
        *self.storage.lock().unwrap_or_else(|e| e.into_inner()) = value;
    }
}

impl<T> Clone for Cell<T> {
    fn clone(&self) -> Self {
        Cell {
            addr: self.addr,
            name: self.name.clone(),
            storage: self.storage.clone(),
        }
    }
}

impl<T> std::fmt::Debug for Cell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cell")
            .field("addr", &self.addr)
            .field("name", &self.name)
            .finish()
    }
}
