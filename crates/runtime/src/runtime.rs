//! The run driver: [`Program`], [`RunConfig`], [`Runtime`], [`RunOutcome`].

use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use crate::ctx::Ctx;
use crate::depot::StackDepot;
use crate::ids::Gid;
use crate::kernel::{Kernel, PoisonExit};
use crate::monitor::{Monitor, MonitorStats, NullMonitor};
use crate::sched::{ScheduleTrace, Strategy};

/// A re-runnable simulated Go program: a name plus the main goroutine body.
///
/// Programs are `Fn` (not `FnOnce`) so the same program can be executed
/// under many seeds and strategies — the explorer in `grs-detector` relies
/// on this to hunt interleavings, mirroring how the paper's deployment
/// reruns unit tests daily.
#[derive(Clone)]
pub struct Program {
    name: Arc<str>,
    body: Arc<dyn Fn(&Ctx) + Send + Sync>,
}

impl Program {
    /// Creates a program from its main-goroutine body.
    pub fn new(name: &str, body: impl Fn(&Ctx) + Send + Sync + 'static) -> Self {
        Program {
            name: Arc::from(name),
            body: Arc::new(body),
        }
    }

    /// The program's name (used in reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The main-goroutine body.
    pub fn body(&self) -> &(dyn Fn(&Ctx) + Send + Sync) {
        &*self.body
    }
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Program").field("name", &self.name).finish()
    }
}

/// Configuration of one run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Seed driving all scheduling randomness.
    pub seed: u64,
    /// Scheduling policy.
    pub strategy: Strategy,
    /// Hard bound on scheduler steps (guards against livelock in simulated
    /// programs; exceeding it aborts the run with
    /// [`RuntimeError::StepBudgetExhausted`]).
    pub max_steps: u64,
    /// Horizon PCT priority-change points are placed against. Should be
    /// the unit's expected step count (see [`calibrate_steps`]); when it
    /// far exceeds the actual run length, the change points land beyond
    /// the run and PCT degenerates to strict-priority scheduling.
    pub pct_steps_hint: u64,
    /// Recorded schedule prefix to replay before the strategy takes over
    /// — the guided-exploration hook. `None` (the default) leaves the
    /// schedule entirely to `(seed, strategy)`.
    pub schedule_prefix: Option<ScheduleTrace>,
}

impl RunConfig {
    /// A config with the given seed and default strategy/limits.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        RunConfig {
            seed,
            ..RunConfig::default()
        }
    }

    /// Sets the scheduling strategy (builder style).
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the step budget (builder style).
    #[must_use]
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Sets the horizon PCT change points are placed against (builder
    /// style). Pass the unit's observed step count — e.g. from
    /// [`calibrate_steps`] — so short runs keep their change points.
    #[must_use]
    pub fn pct_horizon(mut self, horizon: u64) -> Self {
        self.pct_steps_hint = horizon.max(1);
        self
    }

    /// Sets a recorded schedule prefix to replay before the strategy
    /// takes over (builder style).
    #[must_use]
    pub fn schedule_prefix(mut self, prefix: ScheduleTrace) -> Self {
        self.schedule_prefix = Some(prefix);
        self
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            seed: 0,
            strategy: Strategy::Random,
            max_steps: 1_000_000,
            pct_steps_hint: 1_000,
            schedule_prefix: None,
        }
    }
}

/// Measures how many scheduler steps `program` takes under the
/// seed-invariant round-robin schedule — the calibrated horizon for PCT
/// change-point placement. Round-robin picks consume no randomness, so
/// the result is a pure function of the program (and the step budget),
/// never of a seed or worker placement.
#[must_use]
pub fn calibrate_steps(program: &Program, max_steps: u64) -> u64 {
    let cfg = RunConfig {
        strategy: Strategy::RoundRobin,
        max_steps,
        ..RunConfig::default()
    };
    let (outcome, _) = Runtime::new(cfg).run(program, NullMonitor);
    outcome.steps.max(1)
}

/// A user-visible error the simulated program committed; the Go analogues
/// are runtime panics or throws.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// `panic: send on closed channel`.
    SendOnClosedChannel {
        /// Channel name.
        channel: String,
    },
    /// `panic: close of closed channel`.
    CloseOfClosedChannel {
        /// Channel name.
        channel: String,
    },
    /// `fatal error: sync: unlock of unlocked mutex`.
    UnlockOfUnlockedMutex {
        /// Mutex name.
        mutex: String,
    },
    /// `panic: sync: negative WaitGroup counter`.
    NegativeWaitGroup {
        /// WaitGroup name.
        waitgroup: String,
    },
    /// A goroutine body panicked.
    GoroutinePanic {
        /// Goroutine name.
        goroutine: String,
        /// Panic message.
        message: String,
    },
    /// The scheduler's step budget ran out (livelock guard).
    StepBudgetExhausted {
        /// The configured budget.
        max_steps: u64,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::SendOnClosedChannel { channel } => {
                write!(f, "send on closed channel {channel}")
            }
            RuntimeError::CloseOfClosedChannel { channel } => {
                write!(f, "close of closed channel {channel}")
            }
            RuntimeError::UnlockOfUnlockedMutex { mutex } => {
                write!(f, "unlock of unlocked mutex {mutex}")
            }
            RuntimeError::NegativeWaitGroup { waitgroup } => {
                write!(f, "negative WaitGroup counter on {waitgroup}")
            }
            RuntimeError::GoroutinePanic { goroutine, message } => {
                write!(f, "goroutine {goroutine} panicked: {message}")
            }
            RuntimeError::StepBudgetExhausted { max_steps } => {
                write!(f, "step budget of {max_steps} exhausted")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Diagnostic for a run where every live goroutine was blocked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockInfo {
    /// `(goroutine, "name: reason")` for each blocked goroutine.
    pub blocked: Vec<(Gid, String)>,
}

impl fmt::Display for DeadlockInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "all goroutines are asleep - deadlock!")?;
        for (gid, what) in &self.blocked {
            writeln!(f, "  {gid} blocked: {what}")?;
        }
        Ok(())
    }
}

/// What happened during one run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Name of the executed program.
    pub program: String,
    /// The seed that produced this interleaving.
    pub seed: u64,
    /// Total scheduler steps taken.
    pub steps: u64,
    /// Number of goroutines created (including main).
    pub goroutines_spawned: usize,
    /// Go-level runtime errors (panics/throws) the program committed.
    pub errors: Vec<RuntimeError>,
    /// Present when the run deadlocked (main blocked, nothing runnable).
    pub deadlock: Option<DeadlockInfo>,
    /// Goroutines still blocked when main finished — Go would leak them
    /// silently (Listing 9's forever-blocked Future sender).
    pub leaked: Vec<(Gid, String)>,
    /// Every scheduling decision the run took, in order — the replayable
    /// artifact guided exploration mutates. Together with the seed it
    /// fully determines the interleaving.
    pub schedule: ScheduleTrace,
    /// Coverage signature of the run: an FNV fold over the dispatched
    /// event stream plus the depot's interned stacks. A novelty signal
    /// for exploration (two runs with equal signatures almost certainly
    /// exercised the same behavior), not an authentication digest.
    pub coverage: u64,
    /// Instrumentation counters: events dispatched, depot contents, peak
    /// shadow words (the §3.5 overhead statistics).
    pub stats: MonitorStats,
}

impl RunOutcome {
    /// True when the run finished with no errors, deadlock, or leaks.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty() && self.deadlock.is_none() && self.leaked.is_empty()
    }
}

/// Executes [`Program`]s deterministically.
///
/// See the crate-level docs for a complete example.
#[derive(Debug, Clone)]
pub struct Runtime {
    config: RunConfig,
}

impl Runtime {
    /// Creates a runtime with the given configuration.
    #[must_use]
    pub fn new(config: RunConfig) -> Self {
        Runtime { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// Runs `program` to completion under `monitor`, returning the outcome
    /// and the monitor (with whatever it accumulated — race reports, event
    /// traces, counts). Uses a fresh [`StackDepot`] for the run.
    pub fn run<M: Monitor + 'static>(&self, program: &Program, monitor: M) -> (RunOutcome, M) {
        self.run_with_depot(program, monitor, &StackDepot::new())
    }

    /// Like [`Runtime::run`], but interns stacks into a caller-owned depot,
    /// which is **reset** first (ids must be a deterministic function of
    /// this run alone, or trace digests would depend on what ran before).
    /// Campaign workers pass one depot per shard so its allocations stay
    /// warm across thousands of runs.
    pub fn run_with_depot<M: Monitor + 'static>(
        &self,
        program: &Program,
        mut monitor: M,
        depot: &StackDepot,
    ) -> (RunOutcome, M) {
        depot.reset();
        monitor.on_run_start(depot);
        let kernel = Kernel::new(&self.config, Box::new(monitor), depot.clone());
        let ctx = Ctx::new(Gid::MAIN, Arc::clone(&kernel));
        let result = panic::catch_unwind(AssertUnwindSafe(|| (program.body)(&ctx)));
        let panicked = match result {
            Ok(()) => None,
            Err(payload) => {
                if payload.downcast_ref::<PoisonExit>().is_some() {
                    None // run aborted (deadlock/step budget); already recorded
                } else if let Some(s) = payload.downcast_ref::<&str>() {
                    Some((*s).to_string())
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    Some(s.clone())
                } else {
                    Some("<non-string panic payload>".to_string())
                }
            }
        };
        kernel.main_finished_and_wait(panicked);
        let (raw, monitor) = kernel.take_outcome();
        let outcome = RunOutcome {
            program: program.name().to_string(),
            seed: self.config.seed,
            steps: raw.steps,
            goroutines_spawned: raw.goroutines_spawned,
            errors: raw.errors,
            deadlock: raw.deadlock,
            leaked: raw.leaked,
            schedule: raw.schedule,
            coverage: raw.coverage,
            stats: raw.stats,
        };
        let monitor = *monitor
            .into_any()
            .downcast::<M>()
            .expect("monitor type preserved across the run");
        (outcome, monitor)
    }
}
