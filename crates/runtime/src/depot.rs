//! The stack depot: interned call stacks as 32-bit ids.
//!
//! §3.5 of the study reports that enabling the race detector costs ~4× test
//! time and 2–8× memory at Uber scale. Real ThreadSanitizer survives that
//! only because it never materializes a call stack per memory access:
//! stacks live once in a *stack depot* and every shadow word refers to one
//! by a compact id. This module is that design transplanted to the
//! simulated runtime.
//!
//! The depot is a tree (a trie over frames): each interned stack is a node
//! `(parent, Frame)`, so a goroutine's current stack is maintained
//! *incrementally* — pushing a frame interns one child node, popping walks
//! one parent edge, and taking the "snapshot" carried by an access event is
//! a `u32` copy. Two goroutines executing the same logical call chain share
//! the same [`StackId`], which is also what makes shadow-state comparisons
//! and dedup fingerprints cheap in `grs-detector`/`grs-deploy`.
//!
//! Ids are assigned in first-intern order, so for a deterministic schedule
//! the id assignment is itself deterministic. Ids are only meaningful for
//! the depot *generation* that produced them: [`StackDepot::reset`] (used
//! by campaign workers to recycle the arena between runs) invalidates
//! outstanding ids while keeping the allocations warm.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::event::{Frame, Stack};

/// A compact reference to an interned call stack.
///
/// `StackId::EMPTY` (0) is the empty stack; every other id names a node in
/// the depot tree. The id is only meaningful together with the
/// [`StackDepot`] that issued it, and only until that depot is reset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StackId(pub u32);

impl StackId {
    /// The empty stack (no frames pushed).
    pub const EMPTY: StackId = StackId(0);

    /// The raw id.
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// True for the empty-stack sentinel.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for StackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One node of the depot tree: the leaf frame of an interned stack plus the
/// id of the stack below it.
#[derive(Debug, Clone)]
struct Node {
    parent: StackId,
    func: Arc<str>,
    call_line: u32,
    depth: u32,
}

#[derive(Debug, Default)]
struct DepotInner {
    /// `nodes[i]` is the node for `StackId(i + 1)`.
    nodes: Vec<Node>,
    /// Function-name interner; queried by `&str` so an intern *hit* never
    /// allocates.
    funcs: HashMap<Arc<str>, u32>,
    /// Child lookup: `(parent, func id, call_line)` → existing child id.
    index: HashMap<(u32, u32, u32), StackId>,
    /// Lifetime intern attempts (hits + misses), for the stats block.
    interned_total: u64,
}

impl DepotInner {
    fn func_id(&mut self, func: &str) -> (u32, Arc<str>) {
        if let Some((name, &id)) = self.funcs.get_key_value(func) {
            return (id, name.clone());
        }
        let name: Arc<str> = Arc::from(func);
        let id = self.funcs.len() as u32;
        self.funcs.insert(name.clone(), id);
        (id, name)
    }
}

/// Counters describing a depot's contents — the §3.5 memory story in
/// numbers (reported per run in [`crate::MonitorStats`] and aggregated by
/// the campaign engine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DepotStats {
    /// Distinct interned stacks (depot tree nodes).
    pub stacks: usize,
    /// Deepest interned stack, in frames.
    pub max_depth: usize,
    /// Lifetime intern requests; `requests - stacks` were deduplicated.
    pub intern_requests: u64,
}

/// A shared, thread-safe stack interner.
///
/// Cloning the handle aliases the same depot (campaign workers share one
/// per arena). The runtime only locks the depot on frame push — memory
/// accesses, the hot path, copy the goroutine's current `StackId` without
/// touching it.
///
/// # Example
///
/// ```
/// use grs_runtime::{StackDepot, StackId};
///
/// let depot = StackDepot::new();
/// let main = depot.push(StackId::EMPTY, "main", 0);
/// let worker = depot.push(main, "ProcessJob", 42);
/// assert_eq!(depot.push(main, "ProcessJob", 42), worker); // deduplicated
/// assert_eq!(depot.resolve(worker).func_names(), vec!["main", "ProcessJob"]);
/// assert_eq!(depot.parent(worker), main);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StackDepot {
    inner: Arc<Mutex<DepotInner>>,
}

impl StackDepot {
    /// Creates an empty depot.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, DepotInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Interns the stack `parent -> func@call_line`, reusing the existing
    /// node when this exact child was interned before.
    #[must_use]
    pub fn push(&self, parent: StackId, func: &str, call_line: u32) -> StackId {
        let mut d = self.lock();
        d.interned_total += 1;
        let (func_id, func) = d.func_id(func);
        if let Some(&id) = d.index.get(&(parent.0, func_id, call_line)) {
            return id;
        }
        let depth = parent_depth(&d, parent) as u32 + 1;
        d.nodes.push(Node {
            parent,
            func,
            call_line,
            depth,
        });
        let id = StackId(d.nodes.len() as u32);
        d.index.insert((parent.0, func_id, call_line), id);
        id
    }

    /// The stack below `id` (`EMPTY` for root frames and for `EMPTY`).
    #[must_use]
    pub fn parent(&self, id: StackId) -> StackId {
        if id.is_empty() {
            return StackId::EMPTY;
        }
        self.lock().nodes[id.0 as usize - 1].parent
    }

    /// Number of frames in the stack `id` names.
    #[must_use]
    pub fn depth(&self, id: StackId) -> usize {
        if id.is_empty() {
            return 0;
        }
        self.lock().nodes[id.0 as usize - 1].depth as usize
    }

    /// Materializes `id` into an owned root-first [`Stack`] (report paths
    /// only — never per access).
    #[must_use]
    pub fn resolve(&self, id: StackId) -> Stack {
        let d = self.lock();
        let mut frames = Vec::with_capacity(parent_depth(&d, id));
        let mut cur = id;
        while !cur.is_empty() {
            let node = &d.nodes[cur.0 as usize - 1];
            frames.push(Frame {
                func: node.func.clone(),
                call_line: node.call_line,
            });
            cur = node.parent;
        }
        frames.reverse();
        Stack::from_frames(frames)
    }

    /// The function names of stack `id`, root first — the line-number-free
    /// projection the dedup fingerprint hashes (§3.3.1).
    #[must_use]
    pub fn func_names(&self, id: StackId) -> Vec<Arc<str>> {
        let d = self.lock();
        let mut names = Vec::with_capacity(parent_depth(&d, id));
        let mut cur = id;
        while !cur.is_empty() {
            let node = &d.nodes[cur.0 as usize - 1];
            names.push(node.func.clone());
            cur = node.parent;
        }
        names.reverse();
        names
    }

    /// Distinct stacks currently interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().nodes.len()
    }

    /// True when nothing has been interned (or the depot was just reset).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().nodes.is_empty()
    }

    /// The stats block.
    #[must_use]
    pub fn stats(&self) -> DepotStats {
        let d = self.lock();
        DepotStats {
            stacks: d.nodes.len(),
            max_depth: d.nodes.iter().map(|n| n.depth as usize).max().unwrap_or(0),
            intern_requests: d.interned_total,
        }
    }

    /// Snapshots every interned node in id order as
    /// `(parent, func, call_line)` triples, where entry `i` describes
    /// `StackId(i + 1)`.
    ///
    /// Because ids are assigned in first-intern order, replaying the
    /// snapshot through [`StackDepot::push`] on a freshly [`reset`] depot
    /// reproduces the exact same id assignment — the invariant the trace
    /// record/replay subsystem is built on.
    ///
    /// [`reset`]: StackDepot::reset
    #[must_use]
    pub fn snapshot(&self) -> Vec<(StackId, Arc<str>, u32)> {
        let d = self.lock();
        d.nodes
            .iter()
            .map(|n| (n.parent, n.func.clone(), n.call_line))
            .collect()
    }

    /// Starts a new generation: drops every interned stack while keeping
    /// the node table and index allocations warm. All outstanding
    /// [`StackId`]s become invalid. Campaign workers call this between runs
    /// so id assignment stays a deterministic function of the single run.
    pub fn reset(&self) {
        let mut d = self.lock();
        d.nodes.clear();
        d.funcs.clear();
        d.index.clear();
        d.interned_total = 0;
    }
}

fn parent_depth(d: &DepotInner, id: StackId) -> usize {
    if id.is_empty() {
        0
    } else {
        d.nodes[id.0 as usize - 1].depth as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_incremental_and_deduplicated() {
        let depot = StackDepot::new();
        let a = depot.push(StackId::EMPTY, "main", 0);
        let b = depot.push(a, "F", 10);
        let b2 = depot.push(a, "F", 10);
        assert_eq!(b, b2);
        assert_eq!(depot.len(), 2);
        let c = depot.push(a, "F", 11); // different call line: new node
        assert_ne!(b, c);
        assert_eq!(depot.len(), 3);
        assert_eq!(depot.stats().intern_requests, 4);
    }

    #[test]
    fn resolve_is_root_first() {
        let depot = StackDepot::new();
        let a = depot.push(StackId::EMPTY, "main", 0);
        let b = depot.push(a, "ProcessAll", 7);
        let s = depot.resolve(b);
        assert_eq!(s.func_names(), vec!["main", "ProcessAll"]);
        assert_eq!(s.frames()[1].call_line, 7);
        assert_eq!(
            depot.func_names(b).iter().map(AsRef::as_ref).collect::<Vec<_>>(),
            vec!["main", "ProcessAll"]
        );
        assert!(depot.resolve(StackId::EMPTY).is_empty());
    }

    #[test]
    fn parent_and_depth_walk_the_tree() {
        let depot = StackDepot::new();
        let a = depot.push(StackId::EMPTY, "main", 0);
        let b = depot.push(a, "F", 0);
        assert_eq!(depot.parent(b), a);
        assert_eq!(depot.parent(a), StackId::EMPTY);
        assert_eq!(depot.depth(b), 2);
        assert_eq!(depot.depth(StackId::EMPTY), 0);
        assert_eq!(depot.stats().max_depth, 2);
    }

    #[test]
    fn reset_starts_a_new_generation() {
        let depot = StackDepot::new();
        let a = depot.push(StackId::EMPTY, "main", 0);
        let _ = depot.push(a, "F", 0);
        depot.reset();
        assert!(depot.is_empty());
        assert_eq!(depot.stats(), DepotStats::default());
        // Same pushes produce the same ids again — per-run determinism.
        let a2 = depot.push(StackId::EMPTY, "main", 0);
        assert_eq!(a, a2);
    }

    #[test]
    fn shared_handles_alias_one_depot() {
        let depot = StackDepot::new();
        let clone = depot.clone();
        let a = clone.push(StackId::EMPTY, "main", 0);
        assert_eq!(depot.len(), 1);
        assert_eq!(depot.resolve(a).func_names(), vec!["main"]);
    }
}
