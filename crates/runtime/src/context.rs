//! A Go-style `context.Context` with cancellation.
//!
//! Contexts "carry deadlines, cancelation signals, and other request-scoped
//! values across API boundaries" — the paper notes they are pervasive in
//! microservices, and Listing 9's Future race fires exactly when a context
//! cancellation arm of a `select` runs concurrently with the future's
//! completion goroutine.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::chan::Chan;
use crate::ctx::Ctx;

/// A cancellable context: `Done()` exposes a channel that is closed on
/// cancellation, as in Go.
///
/// # Example
///
/// ```
/// use grs_runtime::{GoContext, NullMonitor, Program, RunConfig, Runtime};
///
/// let p = Program::new("ctx_cancel", |ctx| {
///     let gctx = GoContext::with_cancel(ctx, "request");
///     let g2 = gctx.clone();
///     ctx.go("canceller", move |ctx| g2.cancel(ctx));
///     // Blocks until the cancellation closes the done channel.
///     let r = gctx.done().recv(ctx);
///     assert!(r.is_closed());
/// });
/// let (outcome, _) = Runtime::new(RunConfig::with_seed(5)).run(&p, NullMonitor);
/// assert!(outcome.is_clean());
/// ```
#[derive(Debug, Clone)]
pub struct GoContext {
    done: Chan<()>,
    cancelled: Arc<AtomicBool>,
}

impl GoContext {
    /// Creates a cancellable context (Go's `context.WithCancel`).
    #[must_use]
    pub fn with_cancel(ctx: &Ctx, name: &str) -> Self {
        GoContext {
            done: ctx.chan(&format!("{name}.done"), 0),
            cancelled: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The `Done()` channel: closed when the context is cancelled.
    #[must_use]
    pub fn done(&self) -> &Chan<()> {
        &self.done
    }

    /// Cancels the context (idempotent, callable from any goroutine).
    pub fn cancel(&self, ctx: &Ctx) {
        if self.cancelled.swap(true, Ordering::SeqCst) {
            return;
        }
        self.done.close(ctx);
    }

    /// Whether cancellation has been requested (uninstrumented peek).
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }
}
