//! The runtime kernel: goroutine bookkeeping and the token-passing scheduler.
//!
//! Exactly one goroutine holds the *token* (runs) at any time. Every
//! instrumented operation calls back into the kernel, which consults the
//! [`Strategy`](crate::sched::Strategy) to decide whether to preempt. All
//! scheduling randomness flows through one seeded RNG, so the interleaving —
//! and therefore which races fire — is a deterministic function of the seed.
//!
//! Blocking operations (channel send/receive, mutex lock, `WaitGroup.Wait`)
//! are implemented as *retry loops*: the goroutine registers itself as a
//! waiter, parks, and re-checks its condition when woken. Wakers mark
//! waiters runnable but never transfer control directly; the scheduler hands
//! the token out at its own pace, which is what lets adversarial schedules
//! expose races.
//!
//! When no goroutine is runnable the kernel declares either a **deadlock**
//! (the main goroutine is among the blocked — Go would crash with
//! `all goroutines are asleep`) or a **goroutine leak** (main already
//! finished; Go would silently leak, as in Listing 9's `Future` that blocks
//! forever on a channel send).

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::ctx::Ctx;
use crate::depot::{StackDepot, StackId};
use crate::event::{AccessKind, Event, EventKind, LockMode};
use crate::ids::{ChanId, Gid, LockUid, OnceId, WgId};
use crate::monitor::{AnyMonitor, MonitorStats};
use crate::runtime::{DeadlockInfo, RunConfig, RuntimeError};
use crate::sched::{GuidedPolicy, SchedulePolicy, Scheduler, ScheduleTrace};

/// Why a goroutine is blocked (for deadlock/leak diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// Waiting to send on a channel.
    ChanSend(ChanId),
    /// Waiting to receive from a channel.
    ChanRecv(ChanId),
    /// Waiting in a `select` over channels.
    Select,
    /// Waiting to acquire a lock.
    Lock(LockUid),
    /// Waiting in `WaitGroup.Wait()`.
    WgWait(WgId),
    /// Waiting for a `sync.Once` executing in another goroutine.
    Once(OnceId),
}

impl std::fmt::Display for BlockReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockReason::ChanSend(c) => write!(f, "send on {c}"),
            BlockReason::ChanRecv(c) => write!(f, "receive on {c}"),
            BlockReason::Select => write!(f, "select"),
            BlockReason::Lock(l) => write!(f, "acquire of {l}"),
            BlockReason::WgWait(w) => write!(f, "wait on {w}"),
            BlockReason::Once(o) => write!(f, "wait on {o}"),
        }
    }
}

/// Scheduling state of one goroutine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GState {
    /// Holds the token.
    Running,
    /// Ready to run when handed the token.
    Runnable,
    /// Parked until a waker marks it runnable.
    Blocked(BlockReason),
    /// Body returned (or panicked).
    Finished,
}

#[derive(Debug)]
struct Goroutine {
    name: Arc<str>,
    state: GState,
    /// Current logical call stack, maintained incrementally as a depot id:
    /// frame push interns one child node, frame pop walks one parent edge,
    /// and the per-access "snapshot" is a `u32` copy.
    stack: StackId,
}

/// The per-goroutine token gate: a binary semaphore.
#[derive(Debug, Default)]
pub(crate) struct Gate {
    token: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn hand(&self) {
        let mut t = self.token.lock().unwrap_or_else(|e| e.into_inner());
        *t = true;
        self.cv.notify_one();
    }

    fn wait(&self) {
        let mut t = self.token.lock().unwrap_or_else(|e| e.into_inner());
        while !*t {
            t = self.cv.wait(t).unwrap_or_else(|e| e.into_inner());
        }
        *t = false;
    }
}

/// Panic payload used to unwind goroutine bodies when the run aborts
/// (deadlock, leak cleanup, step-budget exhaustion).
pub(crate) struct PoisonExit;

/// Installs (once per process) a panic hook that silences the internal
/// [`PoisonExit`] unwinds — they are control flow, not failures — while
/// delegating every other panic to the previous hook.
fn install_quiet_poison_hook() {
    use std::sync::Once;
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<PoisonExit>().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

/// Channel bookkeeping (the typed value buffer lives in [`crate::Chan`]).
#[derive(Debug)]
pub(crate) struct ChanState {
    pub cap: usize,
    pub qlen: usize,
    pub closed: bool,
    pub send_seq: u64,
    pub recv_seq: u64,
    /// Goroutines parked waiting to send (or to complete a rendezvous).
    pub send_waiters: Vec<Gid>,
    /// Goroutines parked waiting to receive (including `select` arms).
    pub recv_waiters: Vec<Gid>,
}

impl ChanState {
    pub(crate) fn new(cap: usize) -> Self {
        ChanState {
            cap,
            qlen: 0,
            closed: false,
            send_seq: 0,
            recv_seq: 0,
            send_waiters: Vec::new(),
            recv_waiters: Vec::new(),
        }
    }
}

/// Mutex / rwlock bookkeeping.
#[derive(Debug, Default)]
pub(crate) struct LockState {
    /// Exclusive holder, if any.
    pub writer: Option<Gid>,
    /// Number of shared (read) holders.
    pub readers: usize,
    /// Goroutines parked waiting for a *write* acquisition (gives Go's
    /// writer preference: new readers queue behind a waiting writer).
    pub write_waiters: Vec<Gid>,
    /// All parked waiters (read and write) to wake on release.
    pub waiters: Vec<Gid>,
}

/// WaitGroup bookkeeping.
#[derive(Debug, Default)]
pub(crate) struct WgState {
    pub counter: i64,
    pub waiters: Vec<Gid>,
}

/// `sync.Once` state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OnceState {
    NotRun,
    Running,
    Done,
}

/// `sync.Once` bookkeeping.
#[derive(Debug)]
pub(crate) struct OnceSlot {
    pub state: OnceState,
    pub waiters: Vec<Gid>,
}

impl Default for OnceSlot {
    fn default() -> Self {
        OnceSlot {
            state: OnceState::NotRun,
            waiters: Vec::new(),
        }
    }
}

pub(crate) struct KState {
    pub monitor: Option<Box<dyn AnyMonitor>>,
    pub rng: StdRng,
    sched: Scheduler,
    goroutines: Vec<Goroutine>,
    gates: Vec<Arc<Gate>>,
    pub step: u64,
    max_steps: u64,
    next_id: u64,
    pub chans: HashMap<u64, ChanState>,
    pub locks: HashMap<u64, LockState>,
    pub wgs: HashMap<u64, WgState>,
    pub onces: HashMap<u64, OnceSlot>,
    aborting: bool,
    run_finished: bool,
    live: usize,
    /// Events actually handed to the monitor (excludes scheduler-only steps).
    events_dispatched: u64,
    /// Running FNV fold over the dispatched event stream — the cheap half
    /// of the run's coverage signature (the depot interns are folded in at
    /// [`Kernel::take_outcome`]).
    coverage: u64,
    /// High-water mark of `monitor.shadow_words()` across the run.
    peak_shadow_words: usize,
    pub errors: Vec<RuntimeError>,
    pub deadlock: Option<DeadlockInfo>,
    pub leaked: Vec<(Gid, String)>,
    pub spawned_total: usize,
    threads: Vec<std::thread::JoinHandle<()>>,
}

/// The shared kernel: one per run.
pub struct Kernel {
    state: Mutex<KState>,
    run_done: Condvar,
    /// Fast-path flag mirrored from `KState::aborting` so hot paths can
    /// bail without the lock.
    poisoned: AtomicBool,
    /// True when the monitor ignores events (instrumentation disabled; the
    /// `-race`-off baseline).
    noop_monitor: bool,
    /// The run's stack interner. Lives outside the kernel lock (it has its
    /// own) so report paths can resolve ids without kernel state.
    depot: StackDepot,
}

impl Kernel {
    pub(crate) fn new(
        config: &RunConfig,
        monitor: Box<dyn AnyMonitor>,
        depot: StackDepot,
    ) -> Arc<Kernel> {
        install_quiet_poison_hook();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let base = config.strategy.policy(&mut rng, config.pct_steps_hint);
        let policy: Box<dyn SchedulePolicy> = match &config.schedule_prefix {
            Some(prefix) => Box::new(GuidedPolicy::new(prefix.clone(), base)),
            None => base,
        };
        let sched = Scheduler::with_policy(policy);
        let mut state = KState {
            monitor: Some(monitor),
            rng,
            sched,
            goroutines: Vec::new(),
            gates: Vec::new(),
            step: 0,
            max_steps: config.max_steps,
            next_id: 1,
            chans: HashMap::new(),
            locks: HashMap::new(),
            wgs: HashMap::new(),
            onces: HashMap::new(),
            aborting: false,
            run_finished: false,
            live: 0,
            events_dispatched: 0,
            coverage: 0xcbf2_9ce4_8422_2325,
            peak_shadow_words: 0,
            errors: Vec::new(),
            deadlock: None,
            leaked: Vec::new(),
            spawned_total: 0,
            threads: Vec::new(),
        };
        // Register the main goroutine (runs inline on the caller thread and
        // implicitly holds the token).
        state.goroutines.push(Goroutine {
            name: Arc::from("main"),
            state: GState::Running,
            stack: depot.push(StackId::EMPTY, "main", 0),
        });
        state.gates.push(Arc::new(Gate::default()));
        state.live = 1;
        state.spawned_total = 1;
        {
            let KState {
                ref mut sched,
                ref mut rng,
                ..
            } = state;
            sched.register(Gid::MAIN, rng);
        }
        let noop_monitor = state
            .monitor
            .as_ref()
            .is_some_and(|m| m.is_noop());
        Arc::new(Kernel {
            state: Mutex::new(state),
            run_done: Condvar::new(),
            poisoned: AtomicBool::new(false),
            noop_monitor,
            depot,
        })
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, KState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// True when event construction can be skipped entirely.
    pub(crate) fn instrumentation_disabled(&self) -> bool {
        self.noop_monitor
    }

    /// Allocates a fresh object id (shared by addresses, locks, channels...).
    pub(crate) fn alloc_id(&self) -> u64 {
        let mut k = self.lock();
        let id = k.next_id;
        k.next_id += 1;
        id
    }

    /// Emits an event under the already-held kernel lock.
    pub(crate) fn emit_locked(&self, k: &mut KState, gid: Gid, kind: EventKind) {
        k.step += 1;
        fold_event_coverage(&mut k.coverage, gid, &kind);
        let ev = Event {
            step: k.step,
            gid,
            kind,
        };
        if let Some(mon) = k.monitor.as_mut() {
            mon.on_event(&ev);
            k.events_dispatched += 1;
            let words = mon.shadow_words();
            if words > k.peak_shadow_words {
                k.peak_shadow_words = words;
            }
        }
    }

    /// `gid`'s current logical call stack — a `u32` copy, no materialization.
    pub(crate) fn current_stack(k: &KState, gid: Gid) -> StackId {
        k.goroutines[gid.index()].stack
    }

    pub(crate) fn push_frame(&self, gid: Gid, func: &str, call_line: u32) {
        let mut k = self.lock();
        let cur = k.goroutines[gid.index()].stack;
        k.goroutines[gid.index()].stack = self.depot.push(cur, func, call_line);
    }

    pub(crate) fn pop_frame(&self, gid: Gid) {
        let mut k = self.lock();
        let cur = k.goroutines[gid.index()].stack;
        // Keep the root (goroutine-body) frame, matching the old guard.
        if self.depot.depth(cur) > 1 {
            k.goroutines[gid.index()].stack = self.depot.parent(cur);
        }
    }

    fn runnable(k: &KState) -> Vec<Gid> {
        k.goroutines
            .iter()
            .enumerate()
            .filter(|(_, g)| g.state == GState::Runnable)
            .map(|(i, _)| Gid(i as u32))
            .collect()
    }

    /// Marks a blocked goroutine runnable (no-op otherwise). Spurious wakes
    /// are safe: every parked goroutine re-checks its condition in a retry
    /// loop.
    pub(crate) fn wake(k: &mut KState, gid: Gid) {
        let g = &mut k.goroutines[gid.index()];
        if matches!(g.state, GState::Blocked(_)) {
            g.state = GState::Runnable;
        }
    }

    /// A preemption point: lets the strategy move the token.
    ///
    /// # Panics
    ///
    /// Unwinds with a private payload when the run is aborting; the
    /// goroutine wrapper catches it.
    pub(crate) fn yield_point(&self, gid: Gid) {
        if self.poisoned.load(Ordering::Relaxed) {
            panic::panic_any(PoisonExit);
        }
        let mut k = self.lock();
        self.check_abort(&k);
        k.step += 1;
        if k.step > k.max_steps {
            let max_steps = k.max_steps;
            k.errors.push(RuntimeError::StepBudgetExhausted { max_steps });
            self.abort_run(&mut k);
            drop(k);
            panic::panic_any(PoisonExit);
        }
        let mut candidates = Self::runnable(&k);
        candidates.push(gid);
        candidates.sort_unstable();
        let next = {
            let KState {
                ref mut sched,
                ref mut rng,
                ..
            } = *k;
            sched.pick(&candidates, Some(gid), rng)
        };
        if next == gid {
            return;
        }
        k.goroutines[gid.index()].state = GState::Runnable;
        k.goroutines[next.index()].state = GState::Running;
        let next_gate = k.gates[next.index()].clone();
        let my_gate = k.gates[gid.index()].clone();
        drop(k);
        next_gate.hand();
        my_gate.wait();
        let k = self.lock();
        self.check_abort(&k);
    }

    /// Parks `gid` (already registered as a waiter by the caller) and
    /// returns with the lock re-held once the token comes back.
    pub(crate) fn park<'a>(
        &'a self,
        mut k: MutexGuard<'a, KState>,
        gid: Gid,
        reason: BlockReason,
    ) -> MutexGuard<'a, KState> {
        k.goroutines[gid.index()].state = GState::Blocked(reason);
        let candidates = Self::runnable(&k);
        if candidates.is_empty() {
            // Nothing can run: deadlock (main blocked too) or leak.
            self.stall(&mut k);
            drop(k);
            panic::panic_any(PoisonExit);
        }
        let next = {
            let KState {
                ref mut sched,
                ref mut rng,
                ..
            } = *k;
            sched.pick(&candidates, Some(gid), rng)
        };
        k.goroutines[next.index()].state = GState::Running;
        let next_gate = k.gates[next.index()].clone();
        let my_gate = k.gates[gid.index()].clone();
        drop(k);
        next_gate.hand();
        my_gate.wait();
        let k = self.lock();
        self.check_abort(&k);
        k
    }

    fn check_abort(&self, k: &KState) {
        if k.aborting {
            panic::panic_any(PoisonExit);
        }
    }

    /// No runnable goroutine exists. Classify, record, and abort the run.
    fn stall(&self, k: &mut KState) {
        let main_alive = k.goroutines[0].state != GState::Finished;
        let blocked: Vec<(Gid, String, String)> = k
            .goroutines
            .iter()
            .enumerate()
            .filter_map(|(i, g)| match g.state {
                GState::Blocked(r) => {
                    Some((Gid(i as u32), g.name.to_string(), r.to_string()))
                }
                _ => None,
            })
            .collect();
        if main_alive {
            k.deadlock = Some(DeadlockInfo {
                blocked: blocked
                    .iter()
                    .map(|(g, n, r)| (*g, format!("{n}: {r}")))
                    .collect(),
            });
        } else {
            for (g, n, r) in &blocked {
                k.leaked.push((*g, format!("{n}: {r}")));
            }
        }
        self.abort_run(k);
    }

    /// Sets the abort flag, wakes every gate so parked threads can unwind,
    /// and signals run completion.
    fn abort_run(&self, k: &mut KState) {
        k.aborting = true;
        k.run_finished = true;
        self.poisoned.store(true, Ordering::Relaxed);
        for gate in &k.gates {
            gate.hand();
        }
        self.run_done.notify_all();
    }

    /// Registers a new goroutine and spawns its OS thread.
    pub(crate) fn spawn_goroutine(
        self: &Arc<Self>,
        parent: Gid,
        name: Arc<str>,
        body: Box<dyn FnOnce(&Ctx) + Send>,
    ) -> Gid {
        let child;
        {
            let mut k = self.lock();
            child = Gid(k.goroutines.len() as u32);
            k.goroutines.push(Goroutine {
                name: name.clone(),
                state: GState::Runnable,
                stack: self.depot.push(StackId::EMPTY, &name, 0),
            });
            k.gates.push(Arc::new(Gate::default()));
            k.live += 1;
            k.spawned_total += 1;
            {
                let KState {
                    ref mut sched,
                    ref mut rng,
                    ..
                } = *k;
                sched.register(child, rng);
            }
            self.emit_locked(
                &mut k,
                parent,
                EventKind::Spawn {
                    child,
                    name: name.clone(),
                },
            );
            let kernel = Arc::clone(self);
            let gate = k.gates[child.index()].clone();
            let handle = std::thread::Builder::new()
                .name(format!("{name}-{child}"))
                .spawn(move || {
                    gate.wait();
                    if kernel.poisoned.load(Ordering::Relaxed) {
                        return;
                    }
                    let ctx = Ctx::new(child, Arc::clone(&kernel));
                    let result =
                        panic::catch_unwind(AssertUnwindSafe(|| body(&ctx)));
                    match result {
                        Ok(()) => kernel.finish(child, None),
                        Err(payload) => {
                            if payload.downcast_ref::<PoisonExit>().is_some() {
                                // Run is aborting; exit silently.
                            } else {
                                let msg = panic_message(&*payload);
                                kernel.finish(child, Some(msg));
                            }
                        }
                    }
                })
                .expect("failed to spawn goroutine thread");
            k.threads.push(handle);
        }
        // Give the child a chance to run immediately, per the strategy.
        self.yield_point(parent);
        child
    }

    /// Marks `gid` finished and passes the token onward (or ends the run).
    pub(crate) fn finish(&self, gid: Gid, panic_msg: Option<String>) {
        let mut k = self.lock();
        if k.aborting {
            return;
        }
        if let Some(msg) = panic_msg {
            let name = k.goroutines[gid.index()].name.to_string();
            k.errors.push(RuntimeError::GoroutinePanic {
                goroutine: name,
                message: msg,
            });
        }
        k.goroutines[gid.index()].state = GState::Finished;
        k.live -= 1;
        self.emit_locked(&mut k, gid, EventKind::GoroutineEnd);
        if k.live == 0 {
            k.run_finished = true;
            self.run_done.notify_all();
            return;
        }
        let candidates = Self::runnable(&k);
        if candidates.is_empty() {
            // Everyone left is blocked.
            self.stall(&mut k);
            return;
        }
        let next = {
            let KState {
                ref mut sched,
                ref mut rng,
                ..
            } = *k;
            sched.pick(&candidates, None, rng)
        };
        k.goroutines[next.index()].state = GState::Running;
        let gate = k.gates[next.index()].clone();
        drop(k);
        gate.hand();
    }

    /// Called by the run driver after the main body returned: finishes main
    /// and blocks until every other goroutine finishes (or the run aborts).
    pub(crate) fn main_finished_and_wait(&self, panicked: Option<String>) {
        self.finish(Gid::MAIN, panicked);
        let mut k = self.lock();
        while !k.run_finished {
            k = self
                .run_done
                .wait(k)
                .unwrap_or_else(|e| e.into_inner());
        }
        drop(k);
        // Join all goroutine threads so no detached thread outlives the run.
        let handles = {
            let mut k = self.lock();
            std::mem::take(&mut k.threads)
        };
        for h in handles {
            let _ = h.join();
        }
    }

    /// Extracts the monitor and final statistics after the run completed.
    pub(crate) fn take_outcome(&self) -> (KernelOutcome, Box<dyn AnyMonitor>) {
        let mut k = self.lock();
        let mut monitor = k.monitor.take().expect("outcome taken twice");
        monitor.on_run_end();
        let words = monitor.shadow_words();
        if words > k.peak_shadow_words {
            k.peak_shadow_words = words;
        }
        // Complete the coverage signature: the event-stream fold plus the
        // run's depot interns — two runs that took different schedules
        // through the same code, or the same schedule through different
        // code, land in different novelty buckets.
        let mut coverage = k.coverage;
        for (parent, func, call_line) in self.depot.snapshot() {
            mix_coverage(&mut coverage, u64::from(parent.raw()));
            for b in func.bytes() {
                mix_coverage(&mut coverage, u64::from(b));
            }
            mix_coverage(&mut coverage, u64::from(call_line));
        }
        let outcome = KernelOutcome {
            steps: k.step,
            goroutines_spawned: k.spawned_total,
            errors: std::mem::take(&mut k.errors),
            deadlock: k.deadlock.take(),
            leaked: std::mem::take(&mut k.leaked),
            schedule: k.sched.take_trace(),
            coverage,
            stats: MonitorStats {
                events_dispatched: k.events_dispatched,
                depot: self.depot.stats(),
                peak_shadow_words: k.peak_shadow_words,
            },
        };
        (outcome, monitor)
    }
}

/// Raw end-of-run data handed from the kernel to [`crate::RunOutcome`].
#[derive(Debug)]
pub(crate) struct KernelOutcome {
    pub steps: u64,
    pub goroutines_spawned: usize,
    pub errors: Vec<RuntimeError>,
    pub deadlock: Option<DeadlockInfo>,
    pub leaked: Vec<(Gid, String)>,
    pub schedule: ScheduleTrace,
    pub coverage: u64,
    pub stats: MonitorStats,
}

/// Word-level FNV-1a fold — one xor-multiply per field, cheap enough for
/// the event dispatch path.
fn mix_coverage(cov: &mut u64, v: u64) {
    *cov = (*cov ^ v).wrapping_mul(0x100_0000_01b3);
}

/// Folds the salient identity of one event into the run's coverage
/// signature: the goroutine, the event-kind tag, and the object/stack ids
/// that distinguish *which code* the schedule exercised. Names and source
/// locations are deliberately skipped — they are functions of the ids —
/// so the fold costs a handful of arithmetic ops per event.
fn fold_event_coverage(cov: &mut u64, gid: Gid, kind: &EventKind) {
    mix_coverage(cov, u64::from(gid.0));
    match kind {
        EventKind::Spawn { child, .. } => {
            mix_coverage(cov, 0);
            mix_coverage(cov, u64::from(child.0));
        }
        EventKind::GoroutineEnd => mix_coverage(cov, 1),
        EventKind::Access {
            addr, kind, stack, ..
        } => {
            mix_coverage(cov, 2);
            mix_coverage(cov, addr.0);
            mix_coverage(
                cov,
                match kind {
                    AccessKind::Read => 0,
                    AccessKind::Write => 1,
                    AccessKind::AtomicRead => 2,
                    AccessKind::AtomicWrite => 3,
                },
            );
            mix_coverage(cov, u64::from(stack.raw()));
        }
        EventKind::Acquire { lock, mode } => {
            mix_coverage(cov, 3);
            mix_coverage(cov, lock.0);
            mix_coverage(cov, u64::from(*mode == LockMode::Read));
        }
        EventKind::Release { lock, mode } => {
            mix_coverage(cov, 4);
            mix_coverage(cov, lock.0);
            mix_coverage(cov, u64::from(*mode == LockMode::Read));
        }
        EventKind::ChanSend { chan, seq } => {
            mix_coverage(cov, 5);
            mix_coverage(cov, chan.0);
            mix_coverage(cov, *seq);
        }
        EventKind::ChanSendComplete { chan, seq, .. } => {
            mix_coverage(cov, 6);
            mix_coverage(cov, chan.0);
            mix_coverage(cov, *seq);
        }
        EventKind::ChanRecv { chan, seq } => {
            mix_coverage(cov, 7);
            mix_coverage(cov, chan.0);
            mix_coverage(cov, *seq);
        }
        EventKind::ChanRecvClosed { chan } => {
            mix_coverage(cov, 8);
            mix_coverage(cov, chan.0);
        }
        EventKind::ChanClose { chan } => {
            mix_coverage(cov, 9);
            mix_coverage(cov, chan.0);
        }
        EventKind::WgAdd { wg, delta, counter } => {
            mix_coverage(cov, 10);
            mix_coverage(cov, wg.0);
            mix_coverage(cov, *delta as u64);
            mix_coverage(cov, *counter as u64);
        }
        EventKind::WgWait { wg } => {
            mix_coverage(cov, 11);
            mix_coverage(cov, wg.0);
        }
        EventKind::OnceExecuted { once } => {
            mix_coverage(cov, 12);
            mix_coverage(cov, once.0);
        }
        EventKind::OnceObserved { once } => {
            mix_coverage(cov, 13);
            mix_coverage(cov, once.0);
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
