//! The instrumentation event stream the runtime reports to a [`Monitor`].
//!
//! Events mirror what Go's `-race` instrumentation intercepts: every shared
//! memory access (with its calling context) and every synchronization
//! operation that establishes a happens-before edge under the Go memory
//! model.
//!
//! [`Monitor`]: crate::monitor::Monitor

use std::fmt;
use std::sync::Arc;

use crate::depot::StackId;
use crate::ids::{Addr, ChanId, Gid, LockUid, OnceId, WgId};

/// Whether a memory access reads or writes, and whether it used `sync/atomic`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Plain (non-atomic) read.
    Read,
    /// Plain (non-atomic) write.
    Write,
    /// `sync/atomic` read.
    AtomicRead,
    /// `sync/atomic` write (including read-modify-write).
    AtomicWrite,
}

impl AccessKind {
    /// True for `Write` and `AtomicWrite`.
    #[must_use]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::AtomicWrite)
    }

    /// True for the two atomic kinds.
    #[must_use]
    pub fn is_atomic(self) -> bool {
        matches!(self, AccessKind::AtomicRead | AccessKind::AtomicWrite)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::AtomicRead => "atomic read",
            AccessKind::AtomicWrite => "atomic write",
        };
        f.write_str(s)
    }
}

/// A source position captured via `#[track_caller]` at the access site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceLoc {
    /// Source file of the call site.
    pub file: &'static str,
    /// 1-based line number.
    pub line: u32,
}

impl SourceLoc {
    /// Captures the caller's location. Must itself be called from a
    /// `#[track_caller]` chain to be useful.
    #[must_use]
    #[track_caller]
    pub fn here() -> Self {
        let loc = std::panic::Location::caller();
        SourceLoc {
            file: loc.file(),
            line: loc.line(),
        }
    }
}

impl fmt::Display for SourceLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

/// One frame of the Go-style logical call stack.
///
/// Goroutine bodies push frames with [`crate::Ctx::frame`]; the frame name
/// plays the role of the function name in the paper's race reports, which
/// the deployment pipeline hashes (minus line numbers) for deduplication
/// (§3.3.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Frame {
    /// Logical function name, e.g. `"ProcessJob"`.
    pub func: Arc<str>,
    /// Line of the call site that entered this frame (0 when unknown).
    pub call_line: u32,
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.call_line == 0 {
            write!(f, "{}()", self.func)
        } else {
            write!(f, "{}() @{}", self.func, self.call_line)
        }
    }
}

/// A snapshot of a goroutine's logical call stack, root first.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Stack {
    frames: Vec<Frame>,
}

impl Stack {
    /// An empty stack.
    #[must_use]
    pub fn new() -> Self {
        Stack { frames: Vec::new() }
    }

    /// Builds a stack from root-first frames.
    #[must_use]
    pub fn from_frames(frames: Vec<Frame>) -> Self {
        Stack { frames }
    }

    /// Root-first frames.
    #[must_use]
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// The outermost (root) frame, if any.
    #[must_use]
    pub fn root(&self) -> Option<&Frame> {
        self.frames.first()
    }

    /// The innermost (leaf) frame, if any.
    #[must_use]
    pub fn leaf(&self) -> Option<&Frame> {
        self.frames.last()
    }

    /// Number of frames.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// True when no frame has been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The function names, root first — the line-number-free projection the
    /// dedup fingerprint is computed over.
    #[must_use]
    pub fn func_names(&self) -> Vec<&str> {
        self.frames.iter().map(|f| f.func.as_ref()).collect()
    }
}

impl fmt::Display for Stack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.frames.is_empty() {
            return f.write_str("<empty stack>");
        }
        for (i, fr) in self.frames.iter().enumerate() {
            if i > 0 {
                f.write_str(" -> ")?;
            }
            write!(f, "{fr}")?;
        }
        Ok(())
    }
}

/// Read/write lock mode for `RwMutex` events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Exclusive (`Lock`/`Unlock`, or a plain `Mutex`).
    Write,
    /// Shared (`RLock`/`RUnlock`).
    Read,
}

/// One instrumentation event.
///
/// `step` is a global, strictly increasing sequence number: because the
/// scheduler runs exactly one goroutine at a time, the event stream is a
/// *total order* consistent with the interleaving that was executed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Event {
    /// Global sequence number of the event.
    pub step: u64,
    /// The goroutine that performed the operation.
    pub gid: Gid,
    /// What happened.
    pub kind: EventKind,
}

/// The operation an [`Event`] describes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// `gid` spawned `child` (spawn happens-before the child's first step).
    Spawn {
        /// The newly created goroutine.
        child: Gid,
        /// Logical name of the goroutine body.
        name: Arc<str>,
    },
    /// The goroutine's body returned (normally or by panic).
    GoroutineEnd,
    /// A shared-memory access.
    ///
    /// The calling context is carried as a depot-interned [`StackId`]
    /// (resolve it through the run's [`crate::StackDepot`]); building this
    /// event copies a `u32` instead of materializing a frame vector, which
    /// is what keeps the §3.5 instrumentation overhead bounded.
    Access {
        /// Shadow address touched.
        addr: Addr,
        /// Human-readable name of the object (e.g. `"results"`,
        /// `"errMap[structure]"`).
        object: Arc<str>,
        /// Read/write, atomic or plain.
        kind: AccessKind,
        /// Interned call stack at the access.
        stack: StackId,
        /// Source location of the access.
        loc: SourceLoc,
    },
    /// A mutex/rwlock acquire completed.
    Acquire {
        /// The lock.
        lock: LockUid,
        /// Shared or exclusive.
        mode: LockMode,
    },
    /// A mutex/rwlock release.
    Release {
        /// The lock.
        lock: LockUid,
        /// Shared or exclusive.
        mode: LockMode,
    },
    /// A channel send enqueued its value. `seq` is the per-channel send
    /// index (FIFO order, so the matching receive has the same `seq`).
    ChanSend {
        /// The channel.
        chan: ChanId,
        /// Per-channel send sequence number.
        seq: u64,
    },
    /// A channel send fully completed (for unbuffered channels this is
    /// after the rendezvous; establishes the receive→send-completion edge).
    ChanSendComplete {
        /// The channel.
        chan: ChanId,
        /// Sequence of the send that completed.
        seq: u64,
        /// Channel capacity at the time (0 = unbuffered).
        cap: usize,
    },
    /// A channel receive obtained the value of send `seq`.
    ChanRecv {
        /// The channel.
        chan: ChanId,
        /// Sequence of the send whose value was received.
        seq: u64,
    },
    /// A receive returned the zero value because the channel was closed.
    ChanRecvClosed {
        /// The channel.
        chan: ChanId,
    },
    /// The channel was closed.
    ChanClose {
        /// The channel.
        chan: ChanId,
    },
    /// `WaitGroup.Add(delta)` (also covers `Done`, which is `Add(-1)`).
    WgAdd {
        /// The wait group.
        wg: WgId,
        /// Signed delta.
        delta: i64,
        /// Counter value after the add.
        counter: i64,
    },
    /// A `WaitGroup.Wait()` unblocked.
    WgWait {
        /// The wait group.
        wg: WgId,
    },
    /// A `sync.Once` executed its function (first caller only).
    OnceExecuted {
        /// The once object.
        once: OnceId,
    },
    /// A `sync.Once.Do` returned without running the function; the original
    /// execution happens-before this return.
    OnceObserved {
        /// The once object.
        once: OnceId,
    },
}

impl Event {
    /// Convenience: the access payload if this is an `Access` event.
    #[must_use]
    pub fn as_access(&self) -> Option<(&Addr, AccessKind, StackId, SourceLoc)> {
        match &self.kind {
            EventKind::Access {
                addr, kind, stack, loc, ..
            } => Some((addr, *kind, *stack, *loc)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(name: &str, line: u32) -> Frame {
        Frame {
            func: Arc::from(name),
            call_line: line,
        }
    }

    #[test]
    fn access_kind_predicates() {
        assert!(AccessKind::Write.is_write());
        assert!(AccessKind::AtomicWrite.is_write());
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::AtomicRead.is_atomic());
        assert!(!AccessKind::Write.is_atomic());
    }

    #[test]
    fn stack_projection_drops_lines() {
        let s = Stack::from_frames(vec![frame("Main", 1), frame("ProcessAll", 42)]);
        assert_eq!(s.func_names(), vec!["Main", "ProcessAll"]);
        assert_eq!(s.root().unwrap().func.as_ref(), "Main");
        assert_eq!(s.leaf().unwrap().func.as_ref(), "ProcessAll");
        assert_eq!(s.depth(), 2);
    }

    #[test]
    fn stack_display_is_arrow_chain() {
        let s = Stack::from_frames(vec![frame("A", 0), frame("B", 7)]);
        assert_eq!(s.to_string(), "A() -> B() @7");
        assert_eq!(Stack::new().to_string(), "<empty stack>");
    }

    #[test]
    fn source_loc_captures_this_file() {
        let loc = SourceLoc::here();
        assert!(loc.file.ends_with("event.rs"));
        assert!(loc.line > 0);
        assert!(loc.to_string().contains("event.rs:"));
    }
}
