//! [`Ctx`] — the handle a goroutine uses for every instrumented operation.

use std::sync::Arc;

use crate::cell::Cell;
use crate::event::{AccessKind, EventKind, SourceLoc};
use crate::ids::{Addr, Gid};
use crate::kernel::Kernel;

/// Execution context of one goroutine.
///
/// Every operation the study's races involve — spawning goroutines, reading
/// and writing shared variables, locking, channel communication — goes
/// through this handle so the scheduler can preempt and the monitor can
/// observe.
///
/// A `Ctx` is handed to each goroutine body; it is deliberately *not*
/// `Clone` so a goroutine cannot smuggle its context into another goroutine
/// (each body receives its own).
pub struct Ctx {
    gid: Gid,
    kernel: Arc<Kernel>,
}

impl Ctx {
    pub(crate) fn new(gid: Gid, kernel: Arc<Kernel>) -> Self {
        Ctx { gid, kernel }
    }

    /// The goroutine this context belongs to.
    #[must_use]
    pub fn gid(&self) -> Gid {
        self.gid
    }

    pub(crate) fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// Launches `body` as a new goroutine (Go's `go` statement) and returns
    /// its id. The spawn establishes a happens-before edge to the child's
    /// first step, exactly as in the Go memory model.
    pub fn go<F>(&self, name: &str, body: F) -> Gid
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        self.kernel
            .spawn_goroutine(self.gid, Arc::from(name), Box::new(body))
    }

    /// Creates a fresh shared variable with the given debug name.
    ///
    /// Cloning the returned [`Cell`] aliases the *same* address — which is
    /// precisely how Go closures capture free variables by reference
    /// (Observation 3).
    pub fn cell<T: Clone + Send + 'static>(&self, name: &str, value: T) -> Cell<T> {
        Cell::new(self.kernel.alloc_id(), name, value)
    }

    /// Reads a shared variable (instrumented, preemptible).
    #[track_caller]
    pub fn read<T: Clone + Send + 'static>(&self, cell: &Cell<T>) -> T {
        let loc = SourceLoc::here();
        self.access(cell.addr(), cell.name_arc(), AccessKind::Read, loc);
        cell.load()
    }

    /// Writes a shared variable (instrumented, preemptible).
    #[track_caller]
    pub fn write<T: Clone + Send + 'static>(&self, cell: &Cell<T>, value: T) {
        let loc = SourceLoc::here();
        self.access(cell.addr(), cell.name_arc(), AccessKind::Write, loc);
        cell.store(value);
    }

    /// Read-modify-write of a shared variable **without** atomicity — the
    /// classic lost-update shape (`x = f(x)` compiled to a read then a
    /// write, each individually preemptible).
    #[track_caller]
    pub fn update<T: Clone + Send + 'static>(&self, cell: &Cell<T>, f: impl FnOnce(T) -> T) {
        let loc = SourceLoc::here();
        self.access(cell.addr(), cell.name_arc(), AccessKind::Read, loc);
        let v = cell.load();
        let new = f(v);
        self.access(cell.addr(), cell.name_arc(), AccessKind::Write, loc);
        cell.store(new);
    }

    /// Emits one memory-access event at an explicit address (used by the
    /// compound objects: slices, maps, atomics).
    pub(crate) fn access(&self, addr: Addr, object: Arc<str>, kind: AccessKind, loc: SourceLoc) {
        self.kernel.yield_point(self.gid);
        if self.kernel.instrumentation_disabled() {
            return;
        }
        let mut k = self.kernel.lock();
        let stack = Kernel::current_stack(&k, self.gid);
        self.kernel.emit_locked(
            &mut k,
            self.gid,
            EventKind::Access {
                addr,
                object,
                kind,
                stack,
                loc,
            },
        );
    }

    /// Pushes a logical Go call frame; the returned guard pops it on drop.
    ///
    /// Frame names become the function names in race reports, which the
    /// deployment pipeline's dedup fingerprint is computed over (§3.3.1).
    ///
    /// # Example
    ///
    /// ```
    /// use grs_runtime::{NullMonitor, Program, RunConfig, Runtime};
    /// let p = Program::new("framed", |ctx| {
    ///     let _f = ctx.frame("ProcessJob");
    ///     let c = ctx.cell("x", 0);
    ///     ctx.write(&c, 1); // reported with stack main() -> ProcessJob()
    /// });
    /// Runtime::new(RunConfig::with_seed(0)).run(&p, NullMonitor);
    /// ```
    #[track_caller]
    #[must_use = "the frame is popped when the guard drops"]
    pub fn frame(&self, func: &str) -> FrameGuard<'_> {
        let line = SourceLoc::here().line;
        self.kernel.push_frame(self.gid, func, line);
        FrameGuard { ctx: self }
    }

    /// Runs `f` inside a named logical frame (convenience over [`Ctx::frame`]).
    #[track_caller]
    pub fn call<R>(&self, func: &str, f: impl FnOnce(&Ctx) -> R) -> R {
        let _g = self.frame(func);
        f(self)
    }

    /// Voluntarily yields to the scheduler `ticks` times (Go's
    /// `runtime.Gosched`, or a stand-in for elapsed wall time in the
    /// patterns that need a timing window).
    pub fn sleep(&self, ticks: u32) {
        for _ in 0..ticks {
            self.kernel.yield_point(self.gid);
        }
    }

    /// A single scheduler yield.
    pub fn gosched(&self) {
        self.kernel.yield_point(self.gid);
    }
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx").field("gid", &self.gid).finish()
    }
}

/// Pops the logical frame pushed by [`Ctx::frame`] when dropped.
#[derive(Debug)]
pub struct FrameGuard<'a> {
    ctx: &'a Ctx,
}

impl Drop for FrameGuard<'_> {
    fn drop(&mut self) {
        self.ctx.kernel.pop_frame(self.ctx.gid);
    }
}
