//! Batched `.grtrace` decoding into a struct-of-arrays event buffer.
//!
//! The scalar [`Trace::decode`] path materializes every event as an
//! [`Event`] enum — a tagged union whose payloads (`Arc<str>` clones,
//! nested structs) cost an allocation-adjacent touch per event and force
//! replay analyzers through a match-per-event dispatch on a 48-byte
//! value. For the execute-once/analyze-many pipeline that dominates
//! campaign replay, this module decodes the same byte stream in chunks
//! straight into an [`EventBatch`]: one flat lane per field (tags, gids,
//! object ids, clock payloads), with string-table and source-file
//! references left as `u32` indices resolved once per table entry instead
//! of once per event. Detectors then drive a tight loop over plain arrays
//! (see `grs-detector`'s batch replay path) instead of walking an enum
//! stream.
//!
//! The decoder is validation-identical to the scalar path: every header,
//! table, and event field is checked in the same order with the same
//! typed [`TraceDecodeError`]s, so a corrupt trace fails the same way no
//! matter which decoder reads it — pinned by differential tests over
//! truncations, trailing bytes, and index corruption.

use std::sync::Arc;

use crate::depot::{StackDepot, StackId};
use crate::event::{AccessKind, Event, EventKind, LockMode, SourceLoc};
use crate::ids::{Addr, ChanId, Gid, LockUid, OnceId, WgId};
use crate::sched::Strategy;
use crate::trace::{
    intern_static_file, lock_mode, unzigzag, Reader, StackNode, Trace, TraceDecodeError,
    TraceMeta, TRACE_FORMAT_VERSION, TRACE_MAGIC,
};

/// Default number of events decoded per chunk by
/// [`DecodedTrace::decode`]. Large enough that the per-chunk bookkeeping
/// vanishes, small enough that a chunk stays cache-resident while the
/// lanes fill.
pub const DEFAULT_CHUNK_EVENTS: usize = 4096;

/// A struct-of-arrays event buffer: lane `i` of every vector describes
/// event `i`. Lanes not used by an event's tag hold zero/default filler,
/// so consumers index unconditionally (branch-light inner loops).
#[derive(Debug, Default, Clone)]
pub struct EventBatch {
    /// Scheduler step of each event (delta-decoded to absolute).
    pub steps: Vec<u64>,
    /// Acting goroutine of each event.
    pub gids: Vec<u32>,
    /// The `.grtrace` event tag byte (0 = Spawn … 13 = OnceObserved),
    /// validated during decode — consumers may treat it as exhaustive.
    pub tags: Vec<u8>,
    /// Primary object id: address, lock, channel, wait-group or once id —
    /// or the spawned child gid for Spawn events.
    pub prims: Vec<u64>,
    /// Secondary scalar: channel `seq`, or the zigzag-decoded `WgAdd`
    /// delta stored as `i64` bits.
    pub args_a: Vec<u64>,
    /// Tertiary scalar: `ChanSendComplete` capacity, or the `WgAdd`
    /// post-add counter stored as `i64` bits.
    pub args_b: Vec<u64>,
    /// Access kind lane (valid for Access events; `Read` filler elsewhere).
    pub access_kinds: Vec<AccessKind>,
    /// Lock mode lane (valid for Acquire/Release; `Write` filler elsewhere).
    pub lock_modes: Vec<LockMode>,
    /// String-table index of the Access `object` / Spawn `name`.
    pub objects: Vec<u32>,
    /// Raw depot stack id of Access events.
    pub stacks: Vec<u32>,
    /// String-table index of the Access source file.
    pub files: Vec<u32>,
    /// Source line of Access events.
    pub lines: Vec<u32>,
}

impl EventBatch {
    /// Number of events in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// True when the batch holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Clears all lanes, keeping their allocations warm for reuse.
    pub fn clear(&mut self) {
        self.steps.clear();
        self.gids.clear();
        self.tags.clear();
        self.prims.clear();
        self.args_a.clear();
        self.args_b.clear();
        self.access_kinds.clear();
        self.lock_modes.clear();
        self.objects.clear();
        self.stacks.clear();
        self.files.clear();
        self.lines.clear();
    }

    /// Reserves capacity for `n` more events in every lane.
    pub fn reserve(&mut self, n: usize) {
        self.steps.reserve(n);
        self.gids.reserve(n);
        self.tags.reserve(n);
        self.prims.reserve(n);
        self.args_a.reserve(n);
        self.args_b.reserve(n);
        self.access_kinds.reserve(n);
        self.lock_modes.reserve(n);
        self.objects.reserve(n);
        self.stacks.reserve(n);
        self.files.reserve(n);
        self.lines.reserve(n);
    }

    /// Appends one event with filler in every optional lane, returning its
    /// index for the decoder to overwrite the tag-relevant lanes.
    fn push_filler(&mut self, step: u64, gid: u32, tag: u8) -> usize {
        let i = self.tags.len();
        self.steps.push(step);
        self.gids.push(gid);
        self.tags.push(tag);
        self.prims.push(0);
        self.args_a.push(0);
        self.args_b.push(0);
        self.access_kinds.push(AccessKind::Read);
        self.lock_modes.push(LockMode::Write);
        self.objects.push(0);
        self.stacks.push(0);
        self.files.push(0);
        self.lines.push(0);
        i
    }
}

/// Streaming chunk decoder over a `.grtrace` byte stream.
///
/// [`BatchDecoder::new`] consumes and validates the header (magic,
/// version, string table, run metadata, depot snapshot); successive
/// [`BatchDecoder::next_chunk`] calls then decode up to `max` events each
/// into an [`EventBatch`]. When the final event has been decoded the
/// trailing-bytes check runs exactly like the scalar decoder's.
#[derive(Debug)]
pub struct BatchDecoder<'a> {
    r: Reader<'a>,
    /// Run metadata decoded from the header.
    pub meta: TraceMeta,
    /// Depot snapshot in first-intern order (entry `i` = `StackId(i+1)`).
    pub stacks: Vec<StackNode>,
    /// The decoded string table.
    pub strings: Vec<Arc<str>>,
    /// Per-string-table-entry resolved source-file name; filled on first
    /// reference by an Access event (one interner probe per table entry,
    /// not per event), `""` for entries never used as a file.
    pub files: Vec<&'static str>,
    n_stacks: u64,
    remaining: u64,
    total_events: u64,
    prev_step: u64,
    trailing_checked: bool,
}

impl<'a> BatchDecoder<'a> {
    /// Parses the trace header, tables, and metadata.
    ///
    /// # Errors
    ///
    /// Returns the same typed [`TraceDecodeError`]s, for the same byte
    /// streams, as [`Trace::decode`].
    pub fn new(bytes: &'a [u8]) -> Result<Self, TraceDecodeError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(8)? != TRACE_MAGIC {
            return Err(TraceDecodeError::BadMagic);
        }
        let version = u32::from_le_bytes(r.take(4)?.try_into().unwrap());
        if version != TRACE_FORMAT_VERSION {
            return Err(TraceDecodeError::UnsupportedVersion {
                found: version,
                supported: TRACE_FORMAT_VERSION,
            });
        }

        let n_strings = r.uvarint()?;
        let mut strings: Vec<Arc<str>> = Vec::new();
        for _ in 0..n_strings {
            let len = r.uvarint()? as usize;
            let raw = r.take(len)?;
            let s = std::str::from_utf8(raw).map_err(|_| TraceDecodeError::BadUtf8)?;
            strings.push(Arc::from(s));
        }
        let string_idx = |idx: u64| -> Result<u32, TraceDecodeError> {
            if (idx as usize) < strings.len() {
                Ok(idx as u32)
            } else {
                Err(TraceDecodeError::BadStringIndex {
                    index: idx,
                    table_len: strings.len(),
                })
            }
        };

        let program = strings[string_idx(r.uvarint()?)? as usize].to_string();
        let seed = u64::from_le_bytes(r.take(8)?.try_into().unwrap());
        let strategy = match r.byte()? {
            0 => Strategy::Random,
            1 => Strategy::Pct {
                depth: r.uvarint()? as u32,
            },
            2 => Strategy::RoundRobin,
            tag => {
                return Err(TraceDecodeError::BadEnumTag {
                    what: "strategy",
                    tag,
                })
            }
        };
        let steps = r.uvarint()?;
        let goroutines_spawned = r.uvarint()? as usize;

        let n_stacks = r.uvarint()?;
        let mut stacks = Vec::with_capacity(n_stacks as usize);
        for i in 0..n_stacks {
            let parent = r.uvarint()?;
            if parent > i {
                return Err(TraceDecodeError::BadStackId {
                    id: parent,
                    table_len: n_stacks as usize,
                });
            }
            let func = strings[string_idx(r.uvarint()?)? as usize].clone();
            let call_line = r.uvarint()? as u32;
            stacks.push(StackNode {
                parent: StackId(parent as u32),
                func,
                call_line,
            });
        }

        let n_events = r.uvarint()?;
        let files = vec![""; strings.len()];
        Ok(BatchDecoder {
            r,
            meta: TraceMeta {
                program,
                seed,
                strategy,
                steps,
                goroutines_spawned,
            },
            stacks,
            strings,
            files,
            n_stacks,
            remaining: n_events,
            total_events: n_events,
            prev_step: 0,
            trailing_checked: false,
        })
    }

    /// Events not yet decoded.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Total events declared by the trace header.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Decodes up to `max` events, appending them to `batch`. Returns the
    /// number decoded; `Ok(0)` means the stream is exhausted (and the
    /// trailing-bytes check has passed).
    ///
    /// # Errors
    ///
    /// The same typed [`TraceDecodeError`]s as [`Trace::decode`]:
    /// truncation mid-event, malformed varints, out-of-range string or
    /// stack indices, unknown tags, and trailing bytes after the final
    /// event.
    pub fn next_chunk(
        &mut self,
        batch: &mut EventBatch,
        max: usize,
    ) -> Result<usize, TraceDecodeError> {
        if self.remaining == 0 {
            self.check_trailing()?;
            return Ok(0);
        }
        let take = (self.remaining.min(max as u64)) as usize;
        batch.reserve(take);
        for _ in 0..take {
            self.decode_event(batch)?;
        }
        self.remaining -= take as u64;
        if self.remaining == 0 {
            self.check_trailing()?;
        }
        Ok(take)
    }

    fn check_trailing(&mut self) -> Result<(), TraceDecodeError> {
        if self.trailing_checked {
            return Ok(());
        }
        if self.r.pos != self.r.bytes.len() {
            return Err(TraceDecodeError::TrailingBytes {
                extra: self.r.bytes.len() - self.r.pos,
            });
        }
        self.trailing_checked = true;
        Ok(())
    }

    fn string_idx(&self, idx: u64) -> Result<u32, TraceDecodeError> {
        if (idx as usize) < self.strings.len() {
            Ok(idx as u32)
        } else {
            Err(TraceDecodeError::BadStringIndex {
                index: idx,
                table_len: self.strings.len(),
            })
        }
    }

    /// Decodes one event into the batch — field order and validation are
    /// byte-for-byte the scalar decoder's.
    fn decode_event(&mut self, batch: &mut EventBatch) -> Result<(), TraceDecodeError> {
        self.prev_step = self.prev_step.wrapping_add(self.r.uvarint()?);
        let gid = self.r.uvarint()? as u32;
        let tag = self.r.byte()?;
        let i = batch.push_filler(self.prev_step, gid, tag);
        match tag {
            0 => {
                batch.prims[i] = self.r.uvarint()?;
                let name = self.r.uvarint()?;
                batch.objects[i] = self.string_idx(name)?;
            }
            1 => {}
            2 => {
                batch.prims[i] = self.r.uvarint()?;
                let object = self.r.uvarint()?;
                batch.objects[i] = self.string_idx(object)?;
                batch.access_kinds[i] = match self.r.byte()? {
                    0 => AccessKind::Read,
                    1 => AccessKind::Write,
                    2 => AccessKind::AtomicRead,
                    3 => AccessKind::AtomicWrite,
                    tag => {
                        return Err(TraceDecodeError::BadEnumTag {
                            what: "access kind",
                            tag,
                        })
                    }
                };
                let stack = self.r.uvarint()?;
                if stack > self.n_stacks {
                    return Err(TraceDecodeError::BadStackId {
                        id: stack,
                        table_len: self.n_stacks as usize,
                    });
                }
                batch.stacks[i] = stack as u32;
                let file = self.r.uvarint()?;
                let fi = self.string_idx(file)? as usize;
                // Resolve the &'static file name once per table entry — the
                // scalar path probes the global interner once per event.
                if self.files[fi].is_empty() {
                    self.files[fi] = intern_static_file(&self.strings[fi]);
                }
                batch.files[i] = fi as u32;
                batch.lines[i] = self.r.uvarint()? as u32;
            }
            3 | 4 => {
                batch.prims[i] = self.r.uvarint()?;
                batch.lock_modes[i] = lock_mode(self.r.byte()?)?;
            }
            5 | 7 => {
                batch.prims[i] = self.r.uvarint()?;
                batch.args_a[i] = self.r.uvarint()?;
            }
            6 => {
                batch.prims[i] = self.r.uvarint()?;
                batch.args_a[i] = self.r.uvarint()?;
                batch.args_b[i] = self.r.uvarint()?;
            }
            8 | 9 | 11 | 12 | 13 => {
                batch.prims[i] = self.r.uvarint()?;
            }
            10 => {
                batch.prims[i] = self.r.uvarint()?;
                batch.args_a[i] = unzigzag(self.r.uvarint()?) as u64;
                batch.args_b[i] = unzigzag(self.r.uvarint()?) as u64;
            }
            tag => return Err(TraceDecodeError::BadEventTag(tag)),
        }
        Ok(())
    }
}

/// A fully decoded trace in struct-of-arrays form: the batch-replay
/// counterpart of [`Trace`].
///
/// Holds the same metadata and depot snapshot as a scalar-decoded trace
/// plus the [`EventBatch`] lanes and the resolved per-table-entry source
/// files, along with chunk-fill statistics for the observability layer.
#[derive(Debug)]
pub struct DecodedTrace {
    /// Run metadata (identical to the scalar decoder's).
    pub meta: TraceMeta,
    /// Depot snapshot in first-intern order.
    pub stacks: Vec<StackNode>,
    /// Decoded string table; `EventBatch::objects` indexes into it.
    pub strings: Vec<Arc<str>>,
    /// Resolved source-file names per string-table entry;
    /// `EventBatch::files` indexes into it.
    pub files: Vec<&'static str>,
    /// The event lanes.
    pub batch: EventBatch,
    /// Chunks the decoder emitted.
    pub chunks: u64,
    /// Chunk capacity used (events per chunk).
    pub chunk_capacity: usize,
}

impl DecodedTrace {
    /// Decodes `bytes` with the default chunk size.
    ///
    /// # Errors
    ///
    /// The same typed [`TraceDecodeError`]s as [`Trace::decode`].
    pub fn decode(bytes: &[u8]) -> Result<DecodedTrace, TraceDecodeError> {
        Self::decode_with_chunk(bytes, DEFAULT_CHUNK_EVENTS)
    }

    /// Decodes `bytes` in chunks of `chunk` events (min 1).
    ///
    /// # Errors
    ///
    /// The same typed [`TraceDecodeError`]s as [`Trace::decode`].
    pub fn decode_with_chunk(bytes: &[u8], chunk: usize) -> Result<DecodedTrace, TraceDecodeError> {
        let chunk = chunk.max(1);
        let mut d = BatchDecoder::new(bytes)?;
        let mut batch = EventBatch::default();
        let mut chunks = 0u64;
        loop {
            let n = d.next_chunk(&mut batch, chunk)?;
            if n == 0 {
                break;
            }
            chunks += 1;
        }
        Ok(DecodedTrace {
            meta: d.meta,
            stacks: d.stacks,
            strings: d.strings,
            files: d.files,
            batch,
            chunks,
            chunk_capacity: chunk,
        })
    }

    /// Number of decoded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.batch.len()
    }

    /// True when the trace recorded no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.batch.is_empty()
    }

    /// Mean chunk fill rate: decoded events over offered chunk capacity.
    /// 1.0 means every chunk came back full (the last chunk of a trace is
    /// usually partial).
    #[must_use]
    pub fn fill_rate(&self) -> f64 {
        if self.chunks == 0 {
            return 1.0;
        }
        self.len() as f64 / (self.chunks as f64 * self.chunk_capacity as f64)
    }

    /// Rebuilds the recorded depot snapshot into `depot` — identical to
    /// [`Trace::rebuild_depot_into`].
    pub fn rebuild_depot_into(&self, depot: &StackDepot) {
        depot.reset();
        for (i, node) in self.stacks.iter().enumerate() {
            let id = depot.push(node.parent, &node.func, node.call_line);
            assert_eq!(
                id.raw() as usize,
                i + 1,
                "trace stack table not in first-intern order"
            );
        }
    }

    /// Materializes event `i` as a scalar [`Event`] — the bridge for
    /// consumers without a lane-aware fast path (and the equivalence
    /// tests' ground truth).
    #[must_use]
    pub fn event(&self, i: usize) -> Event {
        let b = &self.batch;
        let kind = match b.tags[i] {
            0 => EventKind::Spawn {
                child: Gid(b.prims[i] as u32),
                name: self.strings[b.objects[i] as usize].clone(),
            },
            1 => EventKind::GoroutineEnd,
            2 => EventKind::Access {
                addr: Addr(b.prims[i]),
                object: self.strings[b.objects[i] as usize].clone(),
                kind: b.access_kinds[i],
                stack: StackId(b.stacks[i]),
                loc: SourceLoc {
                    file: self.files[b.files[i] as usize],
                    line: b.lines[i],
                },
            },
            3 => EventKind::Acquire {
                lock: LockUid(b.prims[i]),
                mode: b.lock_modes[i],
            },
            4 => EventKind::Release {
                lock: LockUid(b.prims[i]),
                mode: b.lock_modes[i],
            },
            5 => EventKind::ChanSend {
                chan: ChanId(b.prims[i]),
                seq: b.args_a[i],
            },
            6 => EventKind::ChanSendComplete {
                chan: ChanId(b.prims[i]),
                seq: b.args_a[i],
                cap: b.args_b[i] as usize,
            },
            7 => EventKind::ChanRecv {
                chan: ChanId(b.prims[i]),
                seq: b.args_a[i],
            },
            8 => EventKind::ChanRecvClosed {
                chan: ChanId(b.prims[i]),
            },
            9 => EventKind::ChanClose {
                chan: ChanId(b.prims[i]),
            },
            10 => EventKind::WgAdd {
                wg: WgId(b.prims[i]),
                delta: b.args_a[i] as i64,
                counter: b.args_b[i] as i64,
            },
            11 => EventKind::WgWait {
                wg: WgId(b.prims[i]),
            },
            12 => EventKind::OnceExecuted {
                once: OnceId(b.prims[i]),
            },
            13 => EventKind::OnceObserved {
                once: OnceId(b.prims[i]),
            },
            tag => unreachable!("tag {tag} was validated during decode"),
        };
        Event {
            step: b.steps[i],
            gid: Gid(b.gids[i]),
            kind,
        }
    }

    /// Converts into a scalar [`Trace`] by materializing every event —
    /// used by the decode-equivalence property tests.
    #[must_use]
    pub fn into_trace(self) -> Trace {
        let events = (0..self.len()).map(|i| self.event(i)).collect();
        Trace {
            meta: self.meta,
            stacks: self.stacks,
            events,
        }
    }
}

impl Trace {
    /// Decodes via the batch path and materializes a scalar [`Trace`] —
    /// must agree with [`Trace::decode`] on every input, success or error
    /// (differentially tested).
    ///
    /// # Errors
    ///
    /// The same typed [`TraceDecodeError`]s as [`Trace::decode`].
    pub fn decode_batched(bytes: &[u8], chunk: usize) -> Result<Trace, TraceDecodeError> {
        Ok(DecodedTrace::decode_with_chunk(bytes, chunk)?.into_trace())
    }
}
