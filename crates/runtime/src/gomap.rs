//! [`GoMap`] — Go's built-in, thread-unsafe hash table.
//!
//! Observation 5: Go developers misread `m[k]` array-style syntax as
//! touching only the entry for `k`, but a map is a sparse structure — every
//! insertion or deletion mutates shared internals (buckets, counts,
//! possibly a rehash). The model therefore gives the map one *structure*
//! address written by every mutation and read by every lookup, plus one
//! address per key slot; concurrent writes under distinct keys still
//! conflict on the structure word, exactly as Go's `-race` (and the Go
//! runtime's own `concurrent map writes` throw) reports.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex};

use crate::ctx::Ctx;
use crate::event::{AccessKind, SourceLoc};
use crate::ids::Addr;

/// A Go map from `K` to `V`.
///
/// Cloning the handle aliases the same map (Go maps are reference types).
///
/// # Example
///
/// ```
/// use grs_runtime::{GoMap, NullMonitor, Program, RunConfig, Runtime};
///
/// let p = Program::new("map", |ctx| {
///     let m: GoMap<String, i64> = GoMap::make(ctx, "errMap");
///     m.insert(ctx, "a".into(), 1);
///     assert_eq!(m.get(ctx, &"a".into()), Some(1));
///     assert_eq!(m.get(ctx, &"b".into()), None); // zero value, no error
///     assert_eq!(m.len(ctx), 1);
/// });
/// let (outcome, _) = Runtime::new(RunConfig::with_seed(4)).run(&p, NullMonitor);
/// assert!(outcome.is_clean());
/// ```
pub struct GoMap<K, V> {
    name: Arc<str>,
    addr_struct: Addr,
    inner: Arc<Mutex<MapInner<K, V>>>,
}

struct MapInner<K, V> {
    entries: HashMap<K, (Addr, V)>,
}

impl<K, V> Clone for GoMap<K, V> {
    fn clone(&self) -> Self {
        GoMap {
            name: self.name.clone(),
            addr_struct: self.addr_struct,
            inner: self.inner.clone(),
        }
    }
}

impl<K, V> std::fmt::Debug for GoMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GoMap").field("name", &self.name).finish()
    }
}

impl<K, V> GoMap<K, V>
where
    K: Eq + Hash + Clone + Send + std::fmt::Debug + 'static,
    V: Clone + Send + 'static,
{
    /// Go's `make(map[K]V)`.
    #[must_use]
    pub fn make(ctx: &Ctx, name: &str) -> Self {
        GoMap {
            name: Arc::from(name),
            addr_struct: Addr(ctx.kernel().alloc_id()),
            inner: Arc::new(Mutex::new(MapInner {
                entries: HashMap::new(),
            })),
        }
    }

    /// The debug name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The structure-word shadow address.
    #[must_use]
    pub fn structure_addr(&self) -> Addr {
        self.addr_struct
    }

    fn struct_object(&self) -> Arc<str> {
        Arc::from(format!("{}[structure]", self.name).as_str())
    }

    /// `m[k] = v` — writes the structure word and the key slot.
    #[track_caller]
    pub fn insert(&self, ctx: &Ctx, key: K, value: V) {
        let loc = SourceLoc::here();
        ctx.access(self.addr_struct, self.struct_object(), AccessKind::Write, loc);
        let (slot_addr, object) = {
            let mut m = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            let object: Arc<str> = Arc::from(format!("{}[{:?}]", self.name, key).as_str());
            let addr = match m.entries.get(&key) {
                Some((a, _)) => *a,
                None => Addr(ctx.kernel().alloc_id()),
            };
            m.entries.insert(key, (addr, value));
            (addr, object)
        };
        ctx.access(slot_addr, object, AccessKind::Write, loc);
    }

    /// `v, ok := m[k]` — reads the structure word and, when present, the
    /// key slot. Missing keys return `None` (Go returns the zero value
    /// without complaint — the "error tolerance" the paper flags).
    #[track_caller]
    #[must_use]
    pub fn get(&self, ctx: &Ctx, key: &K) -> Option<V> {
        let loc = SourceLoc::here();
        ctx.access(self.addr_struct, self.struct_object(), AccessKind::Read, loc);
        let found = {
            let m = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            m.entries.get(key).map(|(a, v)| (*a, v.clone()))
        };
        match found {
            Some((addr, v)) => {
                let object: Arc<str> = Arc::from(format!("{}[{:?}]", self.name, key).as_str());
                ctx.access(addr, object, AccessKind::Read, loc);
                Some(v)
            }
            None => None,
        }
    }

    /// `delete(m, k)` — writes the structure word (and the slot if present).
    #[track_caller]
    pub fn delete(&self, ctx: &Ctx, key: &K) {
        let loc = SourceLoc::here();
        ctx.access(self.addr_struct, self.struct_object(), AccessKind::Write, loc);
        let removed = {
            let mut m = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            m.entries.remove(key)
        };
        if let Some((addr, _)) = removed {
            let object: Arc<str> = Arc::from(format!("{}[{:?}]", self.name, key).as_str());
            ctx.access(addr, object, AccessKind::Write, loc);
        }
    }

    /// `len(m)` — reads the structure word.
    #[track_caller]
    #[must_use]
    pub fn len(&self, ctx: &Ctx) -> usize {
        let loc = SourceLoc::here();
        ctx.access(self.addr_struct, self.struct_object(), AccessKind::Read, loc);
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .len()
    }

    /// True when the map has no entries.
    #[track_caller]
    #[must_use]
    pub fn is_empty(&self, ctx: &Ctx) -> bool {
        self.len(ctx) == 0
    }

    /// `for k, v := range m` — reads the structure word and every slot.
    /// Iteration order is sorted by the debug representation of the key so
    /// runs stay deterministic (Go randomizes; determinism matters more
    /// here).
    #[track_caller]
    #[must_use]
    pub fn iterate(&self, ctx: &Ctx) -> Vec<(K, V)> {
        let loc = SourceLoc::here();
        ctx.access(self.addr_struct, self.struct_object(), AccessKind::Read, loc);
        let mut items: Vec<(K, (Addr, V))> = {
            let m = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            m.entries
                .iter()
                .map(|(k, (a, v))| (k.clone(), (*a, v.clone())))
                .collect()
        };
        items.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
        items
            .into_iter()
            .map(|(k, (addr, v))| {
                let object: Arc<str> = Arc::from(format!("{}[{:?}]", self.name, k).as_str());
                ctx.access(addr, object, AccessKind::Read, loc);
                (k, v)
            })
            .collect()
    }

    /// Uninstrumented snapshot for test assertions.
    #[must_use]
    pub fn snapshot(&self) -> HashMap<K, V> {
        let m = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        m.entries
            .iter()
            .map(|(k, (_, v))| (k.clone(), v.clone()))
            .collect()
    }
}
