//! Identities for the objects the runtime instruments.
//!
//! Every shared variable, lock, channel, wait group, and goroutine gets a
//! small copyable id. Detectors key their shadow state by these ids.

use std::fmt;

/// Identity of a goroutine, assigned densely in spawn order.
///
/// The main goroutine of a run is always `Gid::MAIN` (index 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gid(pub u32);

impl Gid {
    /// The main goroutine of every run.
    pub const MAIN: Gid = Gid(0);

    /// Dense index of this goroutine.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Gid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "goroutine-{}", self.0)
    }
}

/// Shadow address of one shared memory word.
///
/// A [`crate::Cell`] owns one address; compound objects own several (a
/// [`crate::GoSlice`] has three header words plus one per element, a
/// [`crate::GoMap`] has a structure word plus one per key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub u64);

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:08x}", self.0)
    }
}

/// Identity of a mutex or rwlock.
///
/// Named `LockUid` to avoid clashing with `grs_clock::LockId`, which is the
/// detector-side representation this converts into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockUid(pub u64);

impl fmt::Display for LockUid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lock-{}", self.0)
    }
}

/// Identity of a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChanId(pub u64);

impl fmt::Display for ChanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chan-{}", self.0)
    }
}

/// Identity of a `WaitGroup`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WgId(pub u64);

impl fmt::Display for WgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "waitgroup-{}", self.0)
    }
}

/// Identity of a `sync.Once`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OnceId(pub u64);

impl fmt::Display for OnceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "once-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn main_goroutine_is_zero() {
        assert_eq!(Gid::MAIN, Gid(0));
        assert_eq!(Gid::MAIN.index(), 0);
    }

    #[test]
    fn displays_are_informative() {
        assert_eq!(Gid(3).to_string(), "goroutine-3");
        assert_eq!(Addr(255).to_string(), "0x000000ff");
        assert_eq!(LockUid(1).to_string(), "lock-1");
        assert_eq!(ChanId(2).to_string(), "chan-2");
        assert_eq!(WgId(4).to_string(), "waitgroup-4");
        assert_eq!(OnceId(5).to_string(), "once-5");
    }
}
