//! Scheduling policies and per-run schedule recording.
//!
//! The kernel asks the active [`SchedulePolicy`] which runnable goroutine
//! runs next at every preemption point. Because only one goroutine runs at
//! a time and all randomness flows through the seeded RNG held by the
//! kernel, a `(seed, strategy)` pair fully determines the interleaving —
//! and, since the coverage-guided exploration layer, so does a `(seed,
//! schedule prefix)` pair: the [`Scheduler`] records every decision it
//! makes as a compact [`ScheduleTrace`], and a [`GuidedPolicy`] can replay
//! a recorded prefix before handing control back to a base policy.
//!
//! Three base strategies are provided:
//!
//! * [`Strategy::Random`] — a uniform random walk over runnable goroutines;
//!   the workhorse for race exposure, analogous to the stress of running Go
//!   unit tests many times.
//! * [`Strategy::Pct`] — Probabilistic Concurrency Testing (Burckhardt et
//!   al., ASPLOS 2010): strict priorities with `depth - 1` random priority
//!   change points, giving guarantees for low-depth bugs. Most of the
//!   paper's patterns are depth-2 or depth-3 bugs. Change points are
//!   sampled from the configured horizon
//!   ([`RunConfig::pct_horizon`](crate::RunConfig::pct_horizon)); callers
//!   that know the unit's observed step count should pass it, or short
//!   runs degenerate to strict-priority scheduling.
//! * [`Strategy::RoundRobin`] — cooperative round-robin; deterministic even
//!   across seeds, useful as a "friendly" schedule that often *misses* races
//!   (the baseline for the scheduler ablation).

use rand::rngs::StdRng;
use rand::Rng;

use crate::ids::Gid;
use crate::trace::{put_uvarint, Reader, TraceDecodeError};

/// Which scheduling policy drives the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[derive(Default)]
pub enum Strategy {
    /// Uniform random walk over runnable goroutines at every step.
    #[default]
    Random,
    /// Probabilistic Concurrency Testing with the given bug depth
    /// (number of ordering constraints, `>= 1`).
    Pct {
        /// Target bug depth `d`; the scheduler inserts `d - 1` priority
        /// change points.
        depth: u32,
    },
    /// Round-robin in goroutine-id order, switching at every step.
    RoundRobin,
}

impl Strategy {
    /// Builds the policy object implementing this strategy. `pct_horizon`
    /// bounds where PCT priority-change points may be placed; the other
    /// strategies ignore it.
    #[must_use]
    pub fn policy(self, rng: &mut StdRng, pct_horizon: u64) -> Box<dyn SchedulePolicy> {
        match self {
            Strategy::Random => Box::new(RandomPolicy),
            Strategy::Pct { depth } => Box::new(PctPolicy::new(depth, rng, pct_horizon)),
            Strategy::RoundRobin => Box::new(RoundRobinPolicy::new()),
        }
    }
}

/// Draws the per-goroutine priority every policy consumes on
/// registration.
///
/// Every policy draws (and the non-PCT ones discard) exactly one value per
/// registered goroutine, so the RNG stream consumed by a run is identical
/// across policies at each registration point. That invariance is what
/// keeps `(seed, strategy)` digests stable across the policy-object
/// refactor, and what lets a [`GuidedPolicy`] fall back to its base policy
/// mid-run without perturbing the base policy's randomness.
fn draw_priority(rng: &mut StdRng) -> i64 {
    rng.gen_range(0..1_000_000)
}

/// A scheduling policy: the strategy-specific state machine the
/// [`Scheduler`] consults at every preemption point.
///
/// Implementations must route **all** randomness through the `rng`
/// argument (never internal entropy), so the schedule stays a pure
/// function of the seed, and must draw exactly one RNG value per
/// [`SchedulePolicy::register`] call (see [`draw_priority`]).
pub trait SchedulePolicy: std::fmt::Debug + Send {
    /// Registers a goroutine (gids may be non-contiguous; policies must
    /// tolerate gaps).
    fn register(&mut self, gid: Gid, rng: &mut StdRng);

    /// Picks the next goroutine among `runnable` (non-empty), given the
    /// currently running goroutine `current` (which may itself be in the
    /// runnable set).
    fn pick(&mut self, runnable: &[Gid], current: Option<Gid>, rng: &mut StdRng) -> Gid;
}

/// Uniform random walk: every pick draws one uniform index.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomPolicy;

impl SchedulePolicy for RandomPolicy {
    fn register(&mut self, _gid: Gid, rng: &mut StdRng) {
        let _ = draw_priority(rng);
    }

    fn pick(&mut self, runnable: &[Gid], _current: Option<Gid>, rng: &mut StdRng) -> Gid {
        runnable[rng.gen_range(0..runnable.len())]
    }
}

/// Cooperative round-robin: rotates relative to the running goroutine's
/// position, so control moves around the ring regardless of gid gaps.
/// Picks draw no randomness, which makes the schedule seed-invariant.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinPolicy {
    cursor: usize,
}

impl RoundRobinPolicy {
    /// A fresh round-robin policy.
    #[must_use]
    pub fn new() -> Self {
        RoundRobinPolicy::default()
    }
}

impl SchedulePolicy for RoundRobinPolicy {
    fn register(&mut self, _gid: Gid, rng: &mut StdRng) {
        let _ = draw_priority(rng);
    }

    fn pick(&mut self, runnable: &[Gid], current: Option<Gid>, _rng: &mut StdRng) -> Gid {
        self.cursor = (self.cursor + 1) % runnable.len();
        if let Some(cur) = current {
            if let Some(pos) = runnable.iter().position(|&g| g == cur) {
                return runnable[(pos + 1) % runnable.len()];
            }
        }
        runnable[self.cursor]
    }
}

/// Probabilistic Concurrency Testing: strict random priorities with
/// `depth - 1` priority change points at which the running goroutine is
/// demoted below everything seen so far.
#[derive(Debug, Clone)]
pub struct PctPolicy {
    /// Priority per goroutine index (higher runs first).
    priorities: Vec<i64>,
    /// Steps at which the running goroutine's priority is demoted.
    change_points: Vec<u64>,
    /// Next fresh (lowest) priority to hand out on demotion.
    next_low: i64,
    steps_taken: u64,
    /// Demotions actually performed — the observable that pins the
    /// change-point-placement fix: a horizon far beyond the run length
    /// leaves this at zero and PCT silently degenerates to
    /// strict-priority scheduling.
    demotions: u32,
}

impl PctPolicy {
    /// Samples `depth - 1` change points uniformly from `0..horizon`.
    /// Pass the unit's observed step count (see
    /// [`calibrate_steps`](crate::runtime::calibrate_steps)) as the
    /// horizon so the points land inside the run.
    #[must_use]
    pub fn new(depth: u32, rng: &mut StdRng, horizon: u64) -> Self {
        let mut change_points = Vec::new();
        for _ in 1..depth {
            change_points.push(rng.gen_range(0..horizon.max(1)));
        }
        change_points.sort_unstable();
        PctPolicy {
            priorities: Vec::new(),
            change_points,
            next_low: -1,
            steps_taken: 0,
            demotions: 0,
        }
    }

    /// Priority-change demotions performed so far.
    #[must_use]
    pub fn demotions(&self) -> u32 {
        self.demotions
    }
}

impl SchedulePolicy for PctPolicy {
    fn register(&mut self, gid: Gid, rng: &mut StdRng) {
        let i = gid.index();
        if i >= self.priorities.len() {
            self.priorities.resize(i + 1, 0);
        }
        // Random initial priority; ties broken by id in `pick`.
        self.priorities[i] = draw_priority(rng);
    }

    fn pick(&mut self, runnable: &[Gid], current: Option<Gid>, _rng: &mut StdRng) -> Gid {
        self.steps_taken += 1;
        // Demote the running goroutine at change points.
        if let Some(cur) = current {
            if self
                .change_points
                .first()
                .is_some_and(|&cp| self.steps_taken >= cp)
            {
                self.change_points.remove(0);
                let i = cur.index();
                if i < self.priorities.len() {
                    self.priorities[i] = self.next_low;
                    self.next_low -= 1;
                    self.demotions += 1;
                }
            }
        }
        *runnable
            .iter()
            .max_by_key(|g| (self.priorities.get(g.index()).copied().unwrap_or(0), g.0))
            .expect("runnable is non-empty")
    }
}

/// Replays a recorded decision prefix, then falls back to a base policy.
///
/// Replay consumes no randomness: each recorded decision is an index into
/// the pick's candidate slice, clamped by modulo against the live
/// candidate count so a mutated prefix stays well-formed even where the
/// run has diverged from the recording. Registration still delegates to
/// the base policy (which draws its usual per-goroutine value), so the
/// RNG stream at the hand-over point is exactly what the base policy
/// would have consumed on its own — which is what makes a guided run a
/// pure function of `(seed, prefix)`.
#[derive(Debug)]
pub struct GuidedPolicy {
    prefix: Vec<ScheduleDecision>,
    pos: usize,
    base: Box<dyn SchedulePolicy>,
}

impl GuidedPolicy {
    /// A guided policy replaying `prefix` before handing over to `base`.
    #[must_use]
    pub fn new(prefix: ScheduleTrace, base: Box<dyn SchedulePolicy>) -> Self {
        GuidedPolicy {
            prefix: prefix.decisions,
            pos: 0,
            base,
        }
    }
}

impl SchedulePolicy for GuidedPolicy {
    fn register(&mut self, gid: Gid, rng: &mut StdRng) {
        self.base.register(gid, rng);
    }

    fn pick(&mut self, runnable: &[Gid], current: Option<Gid>, rng: &mut StdRng) -> Gid {
        if let Some(d) = self.prefix.get(self.pos) {
            self.pos += 1;
            return runnable[d.chosen as usize % runnable.len()];
        }
        self.base.pick(runnable, current, rng)
    }
}

/// First 8 bytes of every encoded [`ScheduleTrace`].
pub const SCHEDULE_TRACE_MAGIC: [u8; 8] = *b"GRSCHED\0";

/// Current schedule-trace format version.
pub const SCHEDULE_TRACE_VERSION: u32 = 1;

/// One scheduling decision: which candidate was chosen out of how many.
///
/// `chosen` indexes the sorted candidate slice the kernel passed to the
/// pick, and `arity` records how many candidates there were — which is
/// what lets exploration mutate a decision to a principled alternative
/// (any other index below the recorded arity) and lets replay clamp
/// divergent prefixes by modulo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScheduleDecision {
    /// Index of the chosen goroutine within the candidate slice.
    pub chosen: u32,
    /// Number of candidates the decision chose among (`>= 1`).
    pub arity: u32,
}

/// The compact per-run schedule artifact: every decision the scheduler
/// made, in order. Round-trippable through a uvarint byte codec like
/// `.grtrace` ([`ScheduleTrace::encode`]/[`ScheduleTrace::decode`]), and
/// the substrate of guided exploration: truncate it at a decision point,
/// flip the decision, and replay via [`GuidedPolicy`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct ScheduleTrace {
    /// The decisions, in pick order.
    pub decisions: Vec<ScheduleDecision>,
}

impl ScheduleTrace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        ScheduleTrace::default()
    }

    /// Number of recorded decisions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// True when no decisions were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// The first `n` decisions as a new trace (all of them if `n` is
    /// larger than the recording).
    #[must_use]
    pub fn prefix(&self, n: usize) -> ScheduleTrace {
        ScheduleTrace {
            decisions: self.decisions[..n.min(self.decisions.len())].to_vec(),
        }
    }

    /// FNV-1a digest of the decision stream.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
        };
        mix(self.decisions.len() as u64);
        for d in &self.decisions {
            mix(u64::from(d.chosen));
            mix(u64::from(d.arity));
        }
        h
    }

    /// Serializes the trace to the versioned byte format: magic, version,
    /// decision count, then per decision uvarint `chosen` and `arity`.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.decisions.len() * 2);
        out.extend_from_slice(&SCHEDULE_TRACE_MAGIC);
        out.extend_from_slice(&SCHEDULE_TRACE_VERSION.to_le_bytes());
        put_uvarint(&mut out, self.decisions.len() as u64);
        for d in &self.decisions {
            put_uvarint(&mut out, u64::from(d.chosen));
            put_uvarint(&mut out, u64::from(d.arity));
        }
        out
    }

    /// Decodes an encoded schedule trace.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceDecodeError`] on bad magic, unsupported version,
    /// truncation, malformed varints, or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<ScheduleTrace, TraceDecodeError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(8)? != SCHEDULE_TRACE_MAGIC {
            return Err(TraceDecodeError::BadMagic);
        }
        let version = u32::from_le_bytes(r.take(4)?.try_into().unwrap());
        if version != SCHEDULE_TRACE_VERSION {
            return Err(TraceDecodeError::UnsupportedVersion {
                found: version,
                supported: SCHEDULE_TRACE_VERSION,
            });
        }
        let n = r.uvarint()?;
        let mut decisions = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let chosen = r.uvarint()? as u32;
            let arity = r.uvarint()? as u32;
            decisions.push(ScheduleDecision { chosen, arity });
        }
        if r.pos != bytes.len() {
            return Err(TraceDecodeError::TrailingBytes {
                extra: bytes.len() - r.pos,
            });
        }
        Ok(ScheduleTrace { decisions })
    }
}

/// Scheduler state evolved across one run: the active policy plus the
/// decision recording.
#[derive(Debug)]
pub(crate) struct Scheduler {
    policy: Box<dyn SchedulePolicy>,
    trace: ScheduleTrace,
}

impl Scheduler {
    /// A scheduler driving an explicit policy object; the kernel builds
    /// the policy from [`Strategy::policy`], optionally wrapped in a
    /// [`GuidedPolicy`] when a schedule prefix is configured.
    pub(crate) fn with_policy(policy: Box<dyn SchedulePolicy>) -> Self {
        Scheduler {
            policy,
            trace: ScheduleTrace::new(),
        }
    }

    /// Registers a goroutine with the policy.
    pub(crate) fn register(&mut self, gid: Gid, rng: &mut StdRng) {
        self.policy.register(gid, rng);
    }

    /// Picks the next goroutine among `runnable` (non-empty) and records
    /// the decision.
    pub(crate) fn pick(
        &mut self,
        runnable: &[Gid],
        current: Option<Gid>,
        rng: &mut StdRng,
    ) -> Gid {
        debug_assert!(!runnable.is_empty());
        let next = self.policy.pick(runnable, current, rng);
        let chosen = runnable
            .iter()
            .position(|&g| g == next)
            .expect("policy picked a goroutine outside the candidate set");
        self.trace.decisions.push(ScheduleDecision {
            chosen: chosen as u32,
            arity: runnable.len() as u32,
        });
        next
    }

    /// Hands out the recorded schedule at end of run.
    pub(crate) fn take_trace(&mut self) -> ScheduleTrace {
        std::mem::take(&mut self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn g(i: u32) -> Gid {
        Gid(i)
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let runnable = vec![g(0), g(1), g(2)];
        let pick_seq = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = Scheduler::with_policy(Strategy::Random.policy(&mut rng, 100));
            (0..20)
                .map(|_| s.pick(&runnable, Some(g(0)), &mut rng).0)
                .collect::<Vec<_>>()
        };
        assert_eq!(pick_seq(42), pick_seq(42));
        assert_ne!(pick_seq(42), pick_seq(43)); // overwhelmingly likely
    }

    #[test]
    fn round_robin_rotates() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = Scheduler::with_policy(Strategy::RoundRobin.policy(&mut rng, 100));
        let runnable = vec![g(0), g(1), g(2)];
        let n1 = s.pick(&runnable, Some(g(0)), &mut rng);
        assert_eq!(n1, g(1));
        let n2 = s.pick(&runnable, Some(g(1)), &mut rng);
        assert_eq!(n2, g(2));
        let n3 = s.pick(&runnable, Some(g(2)), &mut rng);
        assert_eq!(n3, g(0));
    }

    #[test]
    fn pct_prefers_highest_priority() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = Scheduler::with_policy(Strategy::Pct { depth: 1 }.policy(&mut rng, 1000));
        s.register(g(0), &mut rng);
        s.register(g(1), &mut rng);
        let runnable = vec![g(0), g(1)];
        let first = s.pick(&runnable, None, &mut rng);
        // With depth 1 there are no change points, so the choice is stable.
        for _ in 0..5 {
            assert_eq!(s.pick(&runnable, Some(first), &mut rng), first);
        }
    }

    #[test]
    fn pct_demotes_at_change_points() {
        let mut rng = StdRng::seed_from_u64(3);
        // horizon=1 forces the single change point to step 0.
        let mut s = Scheduler::with_policy(Strategy::Pct { depth: 2 }.policy(&mut rng, 1));
        s.register(g(0), &mut rng);
        s.register(g(1), &mut rng);
        let runnable = vec![g(0), g(1)];
        let first = s.pick(&runnable, None, &mut rng);
        // Demotion only applies when someone is running: run `first`, then
        // expect it to be demoted on the next pick.
        let second = s.pick(&runnable, Some(first), &mut rng);
        assert_ne!(first, second, "change point must demote the running goroutine");
    }

    /// The change-point-placement fix, at policy level: a depth-3 PCT run
    /// over a short horizon must actually demote, where a horizon far
    /// beyond the run length leaves the schedule strict-priority.
    #[test]
    fn pct_depth3_demotes_on_short_horizon() {
        let run = |horizon: u64| {
            let mut rng = StdRng::seed_from_u64(17);
            let mut p = PctPolicy::new(3, &mut rng, horizon);
            p.register(g(0), &mut rng);
            p.register(g(1), &mut rng);
            p.register(g(2), &mut rng);
            let runnable = vec![g(0), g(1), g(2)];
            let mut cur = p.pick(&runnable, None, &mut rng);
            for _ in 0..20 {
                cur = p.pick(&runnable, Some(cur), &mut rng);
            }
            p.demotions()
        };
        // A 21-step "program" with change points placed against its actual
        // length demotes; the old fixed 1000-step hint leaves the points
        // unreachable.
        assert!(run(20) > 0, "calibrated horizon must demote");
        assert_eq!(run(100_000), 0, "oversized horizon degenerates to strict priority");
    }

    #[test]
    fn scheduler_records_every_decision() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = Scheduler::with_policy(Strategy::Random.policy(&mut rng, 100));
        let runnable = vec![g(0), g(1), g(2)];
        for _ in 0..10 {
            let picked = s.pick(&runnable, Some(g(0)), &mut rng);
            assert!(runnable.contains(&picked));
        }
        let trace = s.take_trace();
        assert_eq!(trace.len(), 10);
        assert!(trace.decisions.iter().all(|d| d.arity == 3 && d.chosen < 3));
    }

    #[test]
    fn guided_policy_replays_prefix_then_falls_back() {
        let runnable = vec![g(0), g(1), g(2)];
        // Record a random schedule...
        let mut rng = StdRng::seed_from_u64(9);
        let mut s = Scheduler::with_policy(Strategy::Random.policy(&mut rng, 100));
        let recorded: Vec<Gid> =
            (0..8).map(|_| s.pick(&runnable, Some(g(0)), &mut rng)).collect();
        let trace = s.take_trace();
        // ...then replay its first 5 decisions under the same seed.
        let mut rng = StdRng::seed_from_u64(9);
        let base = Strategy::Random.policy(&mut rng, 100);
        let mut guided =
            Scheduler::with_policy(Box::new(GuidedPolicy::new(trace.prefix(5), base)));
        let replayed: Vec<Gid> = (0..8)
            .map(|_| guided.pick(&runnable, Some(g(0)), &mut rng))
            .collect();
        assert_eq!(&replayed[..5], &recorded[..5], "prefix must replay exactly");
        // Replay consumed no RNG, so the fallback tail diverges from the
        // recording's RNG position — but is itself deterministic.
        let mut rng = StdRng::seed_from_u64(9);
        let base = Strategy::Random.policy(&mut rng, 100);
        let mut guided2 =
            Scheduler::with_policy(Box::new(GuidedPolicy::new(trace.prefix(5), base)));
        let replayed2: Vec<Gid> = (0..8)
            .map(|_| guided2.pick(&runnable, Some(g(0)), &mut rng))
            .collect();
        assert_eq!(replayed, replayed2, "(seed, prefix) fully determines the schedule");
    }

    #[test]
    fn guided_policy_clamps_out_of_range_decisions() {
        let mut rng = StdRng::seed_from_u64(1);
        let prefix = ScheduleTrace {
            decisions: vec![ScheduleDecision { chosen: 7, arity: 9 }],
        };
        let base = Strategy::Random.policy(&mut rng, 100);
        let mut s = Scheduler::with_policy(Box::new(GuidedPolicy::new(prefix, base)));
        let runnable = vec![g(0), g(1)];
        let picked = s.pick(&runnable, None, &mut rng);
        assert_eq!(picked, g(1), "7 % 2 == 1");
    }

    #[test]
    fn schedule_trace_round_trips() {
        let trace = ScheduleTrace {
            decisions: vec![
                ScheduleDecision { chosen: 0, arity: 1 },
                ScheduleDecision { chosen: 2, arity: 3 },
                ScheduleDecision { chosen: 130, arity: 200 },
            ],
        };
        let bytes = trace.encode();
        assert_eq!(&bytes[..8], &SCHEDULE_TRACE_MAGIC);
        let back = ScheduleTrace::decode(&bytes).expect("decode");
        assert_eq!(back, trace);
        assert_eq!(back.digest(), trace.digest());
    }

    #[test]
    fn schedule_trace_decode_rejects_corruption() {
        let trace = ScheduleTrace {
            decisions: vec![ScheduleDecision { chosen: 1, arity: 2 }],
        };
        let bytes = trace.encode();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(ScheduleTrace::decode(&bad), Err(TraceDecodeError::BadMagic));
        let mut bad = bytes.clone();
        bad[8] = 99;
        assert!(matches!(
            ScheduleTrace::decode(&bad),
            Err(TraceDecodeError::UnsupportedVersion { found: 99, .. })
        ));
        assert_eq!(
            ScheduleTrace::decode(&bytes[..bytes.len() - 1]),
            Err(TraceDecodeError::Truncated)
        );
        let mut bad = bytes;
        bad.push(0);
        assert_eq!(
            ScheduleTrace::decode(&bad),
            Err(TraceDecodeError::TrailingBytes { extra: 1 })
        );
    }
}
