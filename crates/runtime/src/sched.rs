//! Scheduling strategies.
//!
//! The kernel asks the strategy which runnable goroutine runs next at every
//! preemption point. Because only one goroutine runs at a time and all
//! randomness flows through the seeded RNG held by the kernel, a `(seed,
//! strategy)` pair fully determines the interleaving.
//!
//! Three strategies are provided:
//!
//! * [`Strategy::Random`] — a uniform random walk over runnable goroutines;
//!   the workhorse for race exposure, analogous to the stress of running Go
//!   unit tests many times.
//! * [`Strategy::Pct`] — Probabilistic Concurrency Testing (Burckhardt et
//!   al., ASPLOS 2010): strict priorities with `depth - 1` random priority
//!   change points, giving guarantees for low-depth bugs. Most of the
//!   paper's patterns are depth-2 or depth-3 bugs.
//! * [`Strategy::RoundRobin`] — cooperative round-robin; deterministic even
//!   across seeds, useful as a "friendly" schedule that often *misses* races
//!   (the baseline for the scheduler ablation).

use rand::rngs::StdRng;
use rand::Rng;

use crate::ids::Gid;

/// Which scheduling policy drives the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[derive(Default)]
pub enum Strategy {
    /// Uniform random walk over runnable goroutines at every step.
    #[default]
    Random,
    /// Probabilistic Concurrency Testing with the given bug depth
    /// (number of ordering constraints, `>= 1`).
    Pct {
        /// Target bug depth `d`; the scheduler inserts `d - 1` priority
        /// change points.
        depth: u32,
    },
    /// Round-robin in goroutine-id order, switching at every step.
    RoundRobin,
}


/// Scheduler state evolved across one run.
#[derive(Debug)]
pub(crate) struct Scheduler {
    strategy: Strategy,
    /// PCT: priority per goroutine (higher runs first).
    priorities: Vec<i64>,
    /// PCT: steps at which the running goroutine's priority is demoted.
    change_points: Vec<u64>,
    /// PCT: next fresh (lowest) priority to hand out on demotion.
    next_low: i64,
    /// Round-robin cursor.
    rr_cursor: usize,
    steps_taken: u64,
}

impl Scheduler {
    /// `max_steps` bounds how far apart PCT change points may be placed.
    pub(crate) fn new(strategy: Strategy, rng: &mut StdRng, max_steps: u64) -> Self {
        let mut change_points = Vec::new();
        if let Strategy::Pct { depth } = strategy {
            for _ in 1..depth {
                change_points.push(rng.gen_range(0..max_steps.max(1)));
            }
            change_points.sort_unstable();
        }
        Scheduler {
            strategy,
            priorities: Vec::new(),
            change_points,
            next_low: -1,
            rr_cursor: 0,
            steps_taken: 0,
        }
    }

    /// Registers a goroutine, assigning it a PCT priority.
    pub(crate) fn register(&mut self, gid: Gid, rng: &mut StdRng) {
        let i = gid.index();
        if i >= self.priorities.len() {
            self.priorities.resize(i + 1, 0);
        }
        // Random initial priority; ties broken by id below.
        self.priorities[i] = rng.gen_range(0..1_000_000);
    }

    /// Picks the next goroutine among `runnable` (non-empty), given the
    /// currently running goroutine `current` (which may itself be in the
    /// runnable set).
    pub(crate) fn pick(
        &mut self,
        runnable: &[Gid],
        current: Option<Gid>,
        rng: &mut StdRng,
    ) -> Gid {
        debug_assert!(!runnable.is_empty());
        self.steps_taken += 1;
        match self.strategy {
            Strategy::Random => runnable[rng.gen_range(0..runnable.len())],
            Strategy::RoundRobin => {
                self.rr_cursor = (self.rr_cursor + 1) % runnable.len();
                // Rotate relative to the current goroutine's position so
                // control actually moves around the ring.
                if let Some(cur) = current {
                    if let Some(pos) = runnable.iter().position(|&g| g == cur) {
                        return runnable[(pos + 1) % runnable.len()];
                    }
                }
                runnable[self.rr_cursor]
            }
            Strategy::Pct { .. } => {
                // Demote the running goroutine at change points.
                if let Some(cur) = current {
                    if self
                        .change_points
                        .first()
                        .is_some_and(|&cp| self.steps_taken >= cp)
                    {
                        self.change_points.remove(0);
                        let i = cur.index();
                        if i < self.priorities.len() {
                            self.priorities[i] = self.next_low;
                            self.next_low -= 1;
                        }
                    }
                }
                *runnable
                    .iter()
                    .max_by_key(|g| (self.priorities.get(g.index()).copied().unwrap_or(0), g.0))
                    .expect("runnable is non-empty")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn g(i: u32) -> Gid {
        Gid(i)
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let runnable = vec![g(0), g(1), g(2)];
        let pick_seq = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = Scheduler::new(Strategy::Random, &mut rng, 100);
            (0..20)
                .map(|_| s.pick(&runnable, Some(g(0)), &mut rng).0)
                .collect::<Vec<_>>()
        };
        assert_eq!(pick_seq(42), pick_seq(42));
        assert_ne!(pick_seq(42), pick_seq(43)); // overwhelmingly likely
    }

    #[test]
    fn round_robin_rotates() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = Scheduler::new(Strategy::RoundRobin, &mut rng, 100);
        let runnable = vec![g(0), g(1), g(2)];
        let n1 = s.pick(&runnable, Some(g(0)), &mut rng);
        assert_eq!(n1, g(1));
        let n2 = s.pick(&runnable, Some(g(1)), &mut rng);
        assert_eq!(n2, g(2));
        let n3 = s.pick(&runnable, Some(g(2)), &mut rng);
        assert_eq!(n3, g(0));
    }

    #[test]
    fn pct_prefers_highest_priority() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = Scheduler::new(Strategy::Pct { depth: 1 }, &mut rng, 1000);
        s.register(g(0), &mut rng);
        s.register(g(1), &mut rng);
        let runnable = vec![g(0), g(1)];
        let first = s.pick(&runnable, None, &mut rng);
        // With depth 1 there are no change points, so the choice is stable.
        for _ in 0..5 {
            assert_eq!(s.pick(&runnable, Some(first), &mut rng), first);
        }
    }

    #[test]
    fn pct_demotes_at_change_points() {
        let mut rng = StdRng::seed_from_u64(3);
        // max_steps=1 forces the single change point to step 0.
        let mut s = Scheduler::new(Strategy::Pct { depth: 2 }, &mut rng, 1);
        s.register(g(0), &mut rng);
        s.register(g(1), &mut rng);
        let runnable = vec![g(0), g(1)];
        let first = s.pick(&runnable, None, &mut rng);
        // The first pick consumed the change point demoting `current=None`?
        // No: demotion only applies when someone is running. Run `first`,
        // then expect it to be demoted on the next pick.
        let second = s.pick(&runnable, Some(first), &mut rng);
        assert_ne!(first, second, "change point must demote the running goroutine");
    }
}
