//! Trace record/replay: execute once, analyze many.
//!
//! The paper's deployment (§3.2–3.3) hinges on being able to re-trigger a
//! detected race after the fact, and laments how hard dynamic reports are
//! to reproduce. Our answer is the [`Trace`] artifact: a self-contained
//! recording of one scheduled execution — the totally ordered [`Event`]
//! stream, a snapshot of the [`StackDepot`] that interned its calling
//! contexts, and the run metadata (program, seed, strategy) needed to
//! re-execute it live.
//!
//! Because monitors never influence the schedule (the interleaving is a
//! pure function of `(seed, Strategy)`), the event stream recorded by
//! [`TraceRecorder`] is *identical* to what any detector would have
//! observed live. Replaying a trace through a detector therefore produces
//! reports bit-identical to a live run — FastTrack itself is defined over a
//! trace, not an execution — and one execution can be fanned out through
//! every detector, amortizing the (dominant) schedule-execution cost.
//!
//! Traces serialize to versioned, endian-stable `.grtrace` files via a
//! hand-rolled binary codec ([`Trace::encode`]/[`Trace::decode`] — the
//! build is offline, so no serde): an 8-byte magic, a format version, a
//! string table, the depot snapshot, and LEB128/zigzag-packed events with
//! delta-encoded steps.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};

use crate::depot::{StackDepot, StackId};
use crate::event::{AccessKind, Event, EventKind, LockMode, SourceLoc};
use crate::ids::{Addr, ChanId, Gid, LockUid, OnceId, WgId};
use crate::monitor::Monitor;
use crate::runtime::{Program, RunConfig, RunOutcome, Runtime};
use crate::sched::Strategy;

/// First 8 bytes of every `.grtrace` file.
pub const TRACE_MAGIC: [u8; 8] = *b"GRTRACE\0";

/// Current `.grtrace` format version. Bump on any layout change; decoders
/// reject other versions with [`TraceDecodeError::UnsupportedVersion`].
pub const TRACE_FORMAT_VERSION: u32 = 1;

/// Metadata identifying the run a [`Trace`] was recorded from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Name of the executed program.
    pub program: String,
    /// Seed that produced the interleaving.
    pub seed: u64,
    /// Scheduling strategy of the run.
    pub strategy: Strategy,
    /// Total scheduler steps taken.
    pub steps: u64,
    /// Goroutines created (including main).
    pub goroutines_spawned: usize,
}

/// One node of the recorded stack-depot tree; entry `i` of
/// [`Trace::stacks`] describes `StackId(i + 1)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackNode {
    /// The stack below this frame (`StackId::EMPTY` for roots).
    pub parent: StackId,
    /// Function name of the leaf frame.
    pub func: Arc<str>,
    /// Call line of the leaf frame (0 when unknown).
    pub call_line: u32,
}

/// A self-contained recording of one scheduled execution.
///
/// # Example
///
/// ```
/// use grs_runtime::{record, Program, RunConfig, Trace};
///
/// let p = Program::new("one-write", |ctx| {
///     let x = ctx.cell("x", 0i64);
///     ctx.write(&x, 1);
/// });
/// let (outcome, trace) = record(&p, &RunConfig::with_seed(7));
/// assert_eq!(trace.meta.steps, outcome.steps);
/// let bytes = trace.encode();
/// let back = Trace::decode(&bytes).unwrap();
/// assert_eq!(back, trace);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Which run this is a recording of.
    pub meta: TraceMeta,
    /// Depot snapshot in first-intern (id) order.
    pub stacks: Vec<StackNode>,
    /// The totally ordered event stream.
    pub events: Vec<Event>,
}

impl Trace {
    /// Rebuilds the recorded depot contents into `depot` (which is reset
    /// first). Because depot ids are assigned in first-intern order and
    /// [`Trace::stacks`] is stored in that order, every re-interned node
    /// receives exactly the [`StackId`] the recorded events refer to.
    ///
    /// # Panics
    ///
    /// Panics if the stack table is not in first-intern order (a corrupt
    /// trace constructed by hand; the codec always stores it in order).
    pub fn rebuild_depot_into(&self, depot: &StackDepot) {
        depot.reset();
        for (i, node) in self.stacks.iter().enumerate() {
            let id = depot.push(node.parent, &node.func, node.call_line);
            assert_eq!(
                id.raw() as usize,
                i + 1,
                "trace stack table not in first-intern order"
            );
        }
    }

    /// The FNV-1a fold of the event stream — bit-identical to the digest a
    /// live [`crate::TraceHasher`] monitor computes for the same run, so a
    /// decoded trace can be authenticated against a re-execution.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
        for event in &self.events {
            let mut h = DefaultHasher::new();
            event.hash(&mut h);
            for byte in h.finish().to_le_bytes() {
                digest ^= u64::from(byte);
                digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        digest
    }

    /// A [`ReproArtifact`] pointing back at this trace.
    #[must_use]
    pub fn repro(&self) -> ReproArtifact {
        ReproArtifact {
            seed: self.meta.seed,
            strategy: self.meta.strategy,
            trace_digest: Some(self.digest()),
            trace_path: None,
            schedule_prefix: None,
        }
    }

    /// Serializes the trace to the versioned `.grtrace` byte format.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut strings = StringTable::default();
        let program = strings.intern(&self.meta.program);
        let stacks: Vec<(u32, u64, u32)> = self
            .stacks
            .iter()
            .map(|n| (n.parent.raw(), strings.intern(&n.func), n.call_line))
            .collect();
        // Pre-intern event strings in stream order so the table layout is a
        // deterministic function of the trace alone.
        for ev in &self.events {
            match &ev.kind {
                EventKind::Spawn { name, .. } => {
                    strings.intern(name);
                }
                EventKind::Access { object, loc, .. } => {
                    strings.intern(object);
                    strings.intern(loc.file);
                }
                _ => {}
            }
        }

        let mut out = Vec::with_capacity(64 + self.events.len() * 8);
        out.extend_from_slice(&TRACE_MAGIC);
        out.extend_from_slice(&TRACE_FORMAT_VERSION.to_le_bytes());

        put_uvarint(&mut out, strings.entries.len() as u64);
        for s in &strings.entries {
            put_uvarint(&mut out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }

        put_uvarint(&mut out, program);
        out.extend_from_slice(&self.meta.seed.to_le_bytes());
        match self.meta.strategy {
            Strategy::Random => out.push(0),
            Strategy::Pct { depth } => {
                out.push(1);
                put_uvarint(&mut out, u64::from(depth));
            }
            Strategy::RoundRobin => out.push(2),
        }
        put_uvarint(&mut out, self.meta.steps);
        put_uvarint(&mut out, self.meta.goroutines_spawned as u64);

        put_uvarint(&mut out, stacks.len() as u64);
        for (parent, func, call_line) in stacks {
            put_uvarint(&mut out, u64::from(parent));
            put_uvarint(&mut out, func);
            put_uvarint(&mut out, u64::from(call_line));
        }

        put_uvarint(&mut out, self.events.len() as u64);
        let mut prev_step = 0u64;
        for ev in &self.events {
            put_uvarint(&mut out, ev.step.wrapping_sub(prev_step));
            prev_step = ev.step;
            put_uvarint(&mut out, u64::from(ev.gid.0));
            match &ev.kind {
                EventKind::Spawn { child, name } => {
                    out.push(0);
                    put_uvarint(&mut out, u64::from(child.0));
                    put_uvarint(&mut out, strings.intern(name));
                }
                EventKind::GoroutineEnd => out.push(1),
                EventKind::Access {
                    addr,
                    object,
                    kind,
                    stack,
                    loc,
                } => {
                    out.push(2);
                    put_uvarint(&mut out, addr.0);
                    put_uvarint(&mut out, strings.intern(object));
                    out.push(match kind {
                        AccessKind::Read => 0,
                        AccessKind::Write => 1,
                        AccessKind::AtomicRead => 2,
                        AccessKind::AtomicWrite => 3,
                    });
                    put_uvarint(&mut out, u64::from(stack.raw()));
                    put_uvarint(&mut out, strings.intern(loc.file));
                    put_uvarint(&mut out, u64::from(loc.line));
                }
                EventKind::Acquire { lock, mode } => {
                    out.push(3);
                    put_uvarint(&mut out, lock.0);
                    out.push(lock_mode_tag(*mode));
                }
                EventKind::Release { lock, mode } => {
                    out.push(4);
                    put_uvarint(&mut out, lock.0);
                    out.push(lock_mode_tag(*mode));
                }
                EventKind::ChanSend { chan, seq } => {
                    out.push(5);
                    put_uvarint(&mut out, chan.0);
                    put_uvarint(&mut out, *seq);
                }
                EventKind::ChanSendComplete { chan, seq, cap } => {
                    out.push(6);
                    put_uvarint(&mut out, chan.0);
                    put_uvarint(&mut out, *seq);
                    put_uvarint(&mut out, *cap as u64);
                }
                EventKind::ChanRecv { chan, seq } => {
                    out.push(7);
                    put_uvarint(&mut out, chan.0);
                    put_uvarint(&mut out, *seq);
                }
                EventKind::ChanRecvClosed { chan } => {
                    out.push(8);
                    put_uvarint(&mut out, chan.0);
                }
                EventKind::ChanClose { chan } => {
                    out.push(9);
                    put_uvarint(&mut out, chan.0);
                }
                EventKind::WgAdd { wg, delta, counter } => {
                    out.push(10);
                    put_uvarint(&mut out, wg.0);
                    put_uvarint(&mut out, zigzag(*delta));
                    put_uvarint(&mut out, zigzag(*counter));
                }
                EventKind::WgWait { wg } => {
                    out.push(11);
                    put_uvarint(&mut out, wg.0);
                }
                EventKind::OnceExecuted { once } => {
                    out.push(12);
                    put_uvarint(&mut out, once.0);
                }
                EventKind::OnceObserved { once } => {
                    out.push(13);
                    put_uvarint(&mut out, once.0);
                }
            }
        }
        out
    }

    /// Decodes a `.grtrace` byte stream.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceDecodeError`] describing the first structural
    /// problem found: wrong magic, unsupported format version, truncation,
    /// malformed varints/UTF-8, out-of-range table indices, unknown tags,
    /// or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Trace, TraceDecodeError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(8)? != TRACE_MAGIC {
            return Err(TraceDecodeError::BadMagic);
        }
        let version = u32::from_le_bytes(r.take(4)?.try_into().unwrap());
        if version != TRACE_FORMAT_VERSION {
            return Err(TraceDecodeError::UnsupportedVersion {
                found: version,
                supported: TRACE_FORMAT_VERSION,
            });
        }

        let n_strings = r.uvarint()?;
        let mut strings: Vec<Arc<str>> = Vec::new();
        for _ in 0..n_strings {
            let len = r.uvarint()? as usize;
            let raw = r.take(len)?;
            let s = std::str::from_utf8(raw).map_err(|_| TraceDecodeError::BadUtf8)?;
            strings.push(Arc::from(s));
        }
        let string = |idx: u64| -> Result<Arc<str>, TraceDecodeError> {
            strings
                .get(idx as usize)
                .cloned()
                .ok_or(TraceDecodeError::BadStringIndex {
                    index: idx,
                    table_len: strings.len(),
                })
        };

        let program = string(r.uvarint()?)?.to_string();
        let seed = u64::from_le_bytes(r.take(8)?.try_into().unwrap());
        let strategy = match r.byte()? {
            0 => Strategy::Random,
            1 => Strategy::Pct {
                depth: r.uvarint()? as u32,
            },
            2 => Strategy::RoundRobin,
            tag => {
                return Err(TraceDecodeError::BadEnumTag {
                    what: "strategy",
                    tag,
                })
            }
        };
        let steps = r.uvarint()?;
        let goroutines_spawned = r.uvarint()? as usize;

        let n_stacks = r.uvarint()?;
        let mut stacks = Vec::with_capacity(n_stacks as usize);
        for i in 0..n_stacks {
            let parent = r.uvarint()?;
            if parent > i {
                // Parents always precede children in first-intern order.
                return Err(TraceDecodeError::BadStackId {
                    id: parent,
                    table_len: n_stacks as usize,
                });
            }
            let func = string(r.uvarint()?)?;
            let call_line = r.uvarint()? as u32;
            stacks.push(StackNode {
                parent: StackId(parent as u32),
                func,
                call_line,
            });
        }

        let n_events = r.uvarint()?;
        let mut events = Vec::with_capacity(n_events as usize);
        let mut step = 0u64;
        for _ in 0..n_events {
            step = step.wrapping_add(r.uvarint()?);
            let gid = Gid(r.uvarint()? as u32);
            let kind = match r.byte()? {
                0 => EventKind::Spawn {
                    child: Gid(r.uvarint()? as u32),
                    name: string(r.uvarint()?)?,
                },
                1 => EventKind::GoroutineEnd,
                2 => {
                    let addr = Addr(r.uvarint()?);
                    let object = string(r.uvarint()?)?;
                    let kind = match r.byte()? {
                        0 => AccessKind::Read,
                        1 => AccessKind::Write,
                        2 => AccessKind::AtomicRead,
                        3 => AccessKind::AtomicWrite,
                        tag => {
                            return Err(TraceDecodeError::BadEnumTag {
                                what: "access kind",
                                tag,
                            })
                        }
                    };
                    let stack = r.uvarint()?;
                    if stack > n_stacks {
                        return Err(TraceDecodeError::BadStackId {
                            id: stack,
                            table_len: n_stacks as usize,
                        });
                    }
                    let file = string(r.uvarint()?)?;
                    let line = r.uvarint()? as u32;
                    EventKind::Access {
                        addr,
                        object,
                        kind,
                        stack: StackId(stack as u32),
                        loc: SourceLoc {
                            file: intern_static_file(&file),
                            line,
                        },
                    }
                }
                3 => EventKind::Acquire {
                    lock: LockUid(r.uvarint()?),
                    mode: lock_mode(r.byte()?)?,
                },
                4 => EventKind::Release {
                    lock: LockUid(r.uvarint()?),
                    mode: lock_mode(r.byte()?)?,
                },
                5 => EventKind::ChanSend {
                    chan: ChanId(r.uvarint()?),
                    seq: r.uvarint()?,
                },
                6 => EventKind::ChanSendComplete {
                    chan: ChanId(r.uvarint()?),
                    seq: r.uvarint()?,
                    cap: r.uvarint()? as usize,
                },
                7 => EventKind::ChanRecv {
                    chan: ChanId(r.uvarint()?),
                    seq: r.uvarint()?,
                },
                8 => EventKind::ChanRecvClosed {
                    chan: ChanId(r.uvarint()?),
                },
                9 => EventKind::ChanClose {
                    chan: ChanId(r.uvarint()?),
                },
                10 => EventKind::WgAdd {
                    wg: WgId(r.uvarint()?),
                    delta: unzigzag(r.uvarint()?),
                    counter: unzigzag(r.uvarint()?),
                },
                11 => EventKind::WgWait {
                    wg: WgId(r.uvarint()?),
                },
                12 => EventKind::OnceExecuted {
                    once: OnceId(r.uvarint()?),
                },
                13 => EventKind::OnceObserved {
                    once: OnceId(r.uvarint()?),
                },
                tag => return Err(TraceDecodeError::BadEventTag(tag)),
            };
            events.push(Event { step, gid, kind });
        }

        if r.pos != bytes.len() {
            return Err(TraceDecodeError::TrailingBytes {
                extra: bytes.len() - r.pos,
            });
        }
        Ok(Trace {
            meta: TraceMeta {
                program,
                seed,
                strategy,
                steps,
                goroutines_spawned,
            },
            stacks,
            events,
        })
    }

    /// Encodes and writes the trace to a `.grtrace` file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.encode())
    }

    /// Reads and decodes a `.grtrace` file; decode failures surface as
    /// `InvalidData` I/O errors carrying the [`TraceDecodeError`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors and wraps decode errors.
    pub fn read_from(path: impl AsRef<Path>) -> std::io::Result<Trace> {
        let bytes = std::fs::read(path)?;
        Trace::decode(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Why a `.grtrace` byte stream failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceDecodeError {
    /// The first 8 bytes are not [`TRACE_MAGIC`] — not a trace file.
    BadMagic,
    /// The file was written by a different format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// The version this build reads/writes.
        supported: u32,
    },
    /// The stream ended mid-field.
    Truncated,
    /// Bytes remain after the last event — corrupt or concatenated input.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A varint ran past 10 bytes (cannot encode a `u64`).
    MalformedVarint,
    /// A string-table entry is not valid UTF-8.
    BadUtf8,
    /// A string reference points past the table.
    BadStringIndex {
        /// The out-of-range index.
        index: u64,
        /// Number of entries in the table.
        table_len: usize,
    },
    /// A stack id is out of range or out of first-intern order.
    BadStackId {
        /// The offending raw id.
        id: u64,
        /// Number of stack nodes in the trace.
        table_len: usize,
    },
    /// An unknown event tag byte.
    BadEventTag(u8),
    /// An unknown tag for a named enum field.
    BadEnumTag {
        /// Which enum was being decoded.
        what: &'static str,
        /// The unknown tag byte.
        tag: u8,
    },
}

impl fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceDecodeError::BadMagic => {
                write!(f, "not a .grtrace file (bad magic; expected \"GRTRACE\\0\")")
            }
            TraceDecodeError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported .grtrace format version {found} (this build supports \
                 version {supported}); re-record the trace with a matching build"
            ),
            TraceDecodeError::Truncated => write!(f, "trace truncated mid-field"),
            TraceDecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the last event")
            }
            TraceDecodeError::MalformedVarint => write!(f, "malformed varint (>10 bytes)"),
            TraceDecodeError::BadUtf8 => write!(f, "string table entry is not valid UTF-8"),
            TraceDecodeError::BadStringIndex { index, table_len } => {
                write!(f, "string index {index} out of range (table has {table_len})")
            }
            TraceDecodeError::BadStackId { id, table_len } => {
                write!(f, "stack id {id} out of range (trace has {table_len} stacks)")
            }
            TraceDecodeError::BadEventTag(tag) => write!(f, "unknown event tag {tag}"),
            TraceDecodeError::BadEnumTag { what, tag } => {
                write!(f, "unknown {what} tag {tag}")
            }
        }
    }
}

impl std::error::Error for TraceDecodeError {}

#[derive(Default)]
struct StringTable {
    entries: Vec<Arc<str>>,
    index: HashMap<Arc<str>, u64>,
}

impl StringTable {
    fn intern(&mut self, s: &str) -> u64 {
        if let Some(&i) = self.index.get(s) {
            return i;
        }
        let arc: Arc<str> = Arc::from(s);
        let i = self.entries.len() as u64;
        self.entries.push(arc.clone());
        self.index.insert(arc, i);
        i
    }
}

#[derive(Debug)]
pub(crate) struct Reader<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], TraceDecodeError> {
        let end = self.pos.checked_add(n).ok_or(TraceDecodeError::Truncated)?;
        if end > self.bytes.len() {
            return Err(TraceDecodeError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn byte(&mut self) -> Result<u8, TraceDecodeError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn uvarint(&mut self) -> Result<u64, TraceDecodeError> {
        let mut value = 0u64;
        for shift in (0..64).step_by(7) {
            let b = self.byte()?;
            value |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(TraceDecodeError::MalformedVarint)
    }
}

pub(crate) fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn lock_mode_tag(mode: LockMode) -> u8 {
    match mode {
        LockMode::Write => 0,
        LockMode::Read => 1,
    }
}

pub(crate) fn lock_mode(tag: u8) -> Result<LockMode, TraceDecodeError> {
    match tag {
        0 => Ok(LockMode::Write),
        1 => Ok(LockMode::Read),
        tag => Err(TraceDecodeError::BadEnumTag {
            what: "lock mode",
            tag,
        }),
    }
}

/// Decoded [`SourceLoc::file`] names must be `&'static str` (the live path
/// borrows them from `#[track_caller]` data, which is static). A process
/// sees a small bounded set of distinct source files, so leaking one copy
/// of each through a global interner is the honest way to reconstruct
/// them.
pub(crate) fn intern_static_file(file: &str) -> &'static str {
    static FILES: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut set = FILES
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    if let Some(&interned) = set.get(file) {
        return interned;
    }
    let leaked: &'static str = Box::leak(file.to_owned().into_boxed_str());
    set.insert(leaked);
    leaked
}

/// A [`Monitor`] that records the run into a [`Trace`].
///
/// The recorder is schedule-transparent: it only *observes* the event
/// stream, and the scheduler never consults the monitor, so the recorded
/// stream is exactly what any detector would have seen live.
#[derive(Debug)]
pub struct TraceRecorder {
    program: String,
    seed: u64,
    strategy: Strategy,
    depot: Option<StackDepot>,
    events: Vec<Event>,
}

impl TraceRecorder {
    /// A recorder for one run of `program` under `config`.
    #[must_use]
    pub fn new(program: &str, config: &RunConfig) -> Self {
        TraceRecorder {
            program: program.to_string(),
            seed: config.seed,
            strategy: config.strategy,
            depot: None,
            events: Vec::new(),
        }
    }

    /// Finalizes the recording into a [`Trace`], snapshotting the depot and
    /// taking the step/goroutine totals from the run's outcome.
    ///
    /// # Panics
    ///
    /// Panics if no run was recorded (the recorder never saw
    /// `on_run_start`).
    #[must_use]
    pub fn into_trace(self, outcome: &RunOutcome) -> Trace {
        let depot = self.depot.expect("TraceRecorder finished without a run");
        let stacks = depot
            .snapshot()
            .into_iter()
            .map(|(parent, func, call_line)| StackNode {
                parent,
                func,
                call_line,
            })
            .collect();
        Trace {
            meta: TraceMeta {
                program: self.program,
                seed: self.seed,
                strategy: self.strategy,
                steps: outcome.steps,
                goroutines_spawned: outcome.goroutines_spawned,
            },
            stacks,
            events: self.events,
        }
    }
}

impl Monitor for TraceRecorder {
    fn on_run_start(&mut self, depot: &StackDepot) {
        self.depot = Some(depot.clone());
        self.events.clear();
    }

    fn on_event(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

/// Executes `program` once under a [`TraceRecorder`] with a fresh depot,
/// returning the outcome and the recorded trace.
pub fn record(program: &Program, config: &RunConfig) -> (RunOutcome, Trace) {
    record_with_depot(program, config, &StackDepot::new())
}

/// Like [`record`], but interns stacks into a caller-owned depot (reset
/// first) — the campaign engine's per-worker arenas pass theirs so its
/// allocations stay warm.
pub fn record_with_depot(
    program: &Program,
    config: &RunConfig,
    depot: &StackDepot,
) -> (RunOutcome, Trace) {
    let recorder = TraceRecorder::new(program.name(), config);
    let (outcome, recorder) =
        Runtime::new(config.clone()).run_with_depot(program, recorder, depot);
    let trace = recorder.into_trace(&outcome);
    (outcome, trace)
}

/// Everything needed to re-trigger a filed race (§3.2): the seed and
/// strategy that deterministically reproduce the interleaving live, plus —
/// when the run was recorded — the trace digest that authenticates a
/// re-execution and an optional on-disk `.grtrace` path for offline
/// replay.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct ReproArtifact {
    /// Seed that reproduces the interleaving.
    pub seed: u64,
    /// Strategy the seed must be run under.
    pub strategy: Strategy,
    /// [`Trace::digest`] of the recorded run, when one was recorded.
    pub trace_digest: Option<u64>,
    /// Path of a serialized `.grtrace` file, when one was written.
    pub trace_path: Option<String>,
    /// Schedule prefix the run replayed before the strategy took over —
    /// present for guided-exploration runs, whose interleaving is a
    /// function of `(seed, prefix)`, not of `(seed, strategy)` alone.
    /// Reproduce with [`RunConfig::schedule_prefix`].
    pub schedule_prefix: Option<crate::sched::ScheduleTrace>,
}

impl ReproArtifact {
    /// The pre-trace form: a bare seed under the default [`Strategy`].
    #[must_use]
    pub fn seed_only(seed: u64) -> Self {
        ReproArtifact {
            seed,
            ..ReproArtifact::default()
        }
    }

    /// A seed + strategy artifact with no recorded trace.
    #[must_use]
    pub fn seeded(seed: u64, strategy: Strategy) -> Self {
        ReproArtifact {
            seed,
            strategy,
            ..ReproArtifact::default()
        }
    }

    /// A guided-exploration artifact: replay `prefix` under `seed`, then
    /// let `strategy` schedule the rest of the run.
    #[must_use]
    pub fn guided(seed: u64, strategy: Strategy, prefix: crate::sched::ScheduleTrace) -> Self {
        ReproArtifact {
            seed,
            strategy,
            schedule_prefix: Some(prefix),
            ..ReproArtifact::default()
        }
    }
}

impl fmt::Display for ReproArtifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed {} under {:?}", self.seed, self.strategy)?;
        if let Some(p) = &self.schedule_prefix {
            write!(f, " after a {}-decision prefix", p.len())?;
        }
        if let Some(d) = self.trace_digest {
            write!(f, ", trace {d:#018x}")?;
        }
        if let Some(p) = &self.trace_path {
            write!(f, " @ {p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::TraceHasher;

    fn listing1() -> Program {
        Program::new("loop_capture", |ctx| {
            let job = ctx.cell("job", 0i64);
            for i in 0..3 {
                ctx.write(&job, i);
                let job = job.clone();
                ctx.go("worker", move |ctx| {
                    let _ = ctx.read(&job);
                });
            }
        })
    }

    #[test]
    fn recorder_matches_recording_monitor() {
        let p = listing1();
        let cfg = RunConfig::with_seed(7);
        let (outcome, trace) = record(&p, &cfg);
        let (_, rec) = Runtime::new(cfg).run(&p, crate::monitor::RecordingMonitor::new());
        assert_eq!(trace.events, rec.events());
        assert_eq!(trace.meta.steps, outcome.steps);
        assert_eq!(trace.meta.goroutines_spawned, outcome.goroutines_spawned);
        assert!(!trace.stacks.is_empty());
    }

    #[test]
    fn digest_matches_live_trace_hasher() {
        let p = listing1();
        let cfg = RunConfig::with_seed(11);
        let (_, trace) = record(&p, &cfg);
        let (_, hasher) = Runtime::new(cfg).run(&p, TraceHasher::new());
        assert_eq!(trace.digest(), hasher.digest());
    }

    #[test]
    fn encode_decode_round_trips() {
        let p = listing1();
        let (_, trace) = record(&p, &RunConfig::with_seed(3).strategy(Strategy::Pct { depth: 3 }));
        let bytes = trace.encode();
        let back = Trace::decode(&bytes).expect("decode");
        assert_eq!(back, trace);
        assert_eq!(back.digest(), trace.digest());
    }

    #[test]
    fn rebuild_depot_reproduces_ids() {
        let p = listing1();
        let (_, trace) = record(&p, &RunConfig::with_seed(5));
        let depot = StackDepot::new();
        trace.rebuild_depot_into(&depot);
        assert_eq!(depot.len(), trace.stacks.len());
        for (i, node) in trace.stacks.iter().enumerate() {
            let id = StackId(i as u32 + 1);
            assert_eq!(depot.parent(id), node.parent);
        }
    }

    #[test]
    fn decode_rejects_bad_magic_and_version() {
        let p = listing1();
        let (_, trace) = record(&p, &RunConfig::with_seed(1));
        let mut bytes = trace.encode();
        bytes[0] = b'X';
        assert_eq!(Trace::decode(&bytes), Err(TraceDecodeError::BadMagic));
        let mut bytes = trace.encode();
        bytes[8] = 99; // version low byte
        assert!(matches!(
            Trace::decode(&bytes),
            Err(TraceDecodeError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn decode_rejects_truncation_and_trailing_bytes() {
        let p = listing1();
        let (_, trace) = record(&p, &RunConfig::with_seed(2));
        let bytes = trace.encode();
        assert_eq!(
            Trace::decode(&bytes[..bytes.len() - 1]),
            Err(TraceDecodeError::Truncated)
        );
        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(
            Trace::decode(&extended),
            Err(TraceDecodeError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn repro_artifact_display() {
        let r = ReproArtifact {
            seed: 9,
            strategy: Strategy::Random,
            trace_digest: Some(0xabcd),
            trace_path: Some("x.grtrace".into()),
            schedule_prefix: None,
        };
        let s = r.to_string();
        assert!(s.contains("seed 9"));
        assert!(s.contains("0x000000000000abcd"));
        assert!(s.contains("x.grtrace"));
        assert_eq!(ReproArtifact::seed_only(4).to_string(), "seed 4 under Random");
    }

    #[test]
    fn file_interner_is_stable() {
        let a = intern_static_file("foo.rs");
        let b = intern_static_file("foo.rs");
        assert!(std::ptr::eq(a, b));
    }
}
