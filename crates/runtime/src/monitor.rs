//! The [`Monitor`] trait — the runtime/detector boundary.
//!
//! The runtime emits a totally ordered [`Event`] stream while the program
//! executes; a monitor consumes it. Race detectors (`grs-detector`) are
//! monitors, but so are simple recorders and counters used in tests and in
//! the instrumentation-overhead experiment (§3.5 reports a 4× test-time
//! increase with the detector on; our overhead bench compares
//! [`NullMonitor`] against a real detector).

use crate::depot::{DepotStats, StackDepot};
use crate::event::Event;

/// Consumes the instrumentation event stream of one program run.
///
/// Implementations run under the runtime's internal lock, so they must not
/// call back into the runtime. They receive events in a total order
/// consistent with the executed interleaving.
pub trait Monitor: Send {
    /// Called once before the run's first event with the run's stack
    /// depot. Monitors that need to resolve the [`StackId`]s carried by
    /// access events (race detectors building reports) clone the handle
    /// here; the default implementation ignores it.
    ///
    /// [`StackId`]: crate::StackId
    fn on_run_start(&mut self, depot: &StackDepot) {
        let _ = depot;
    }

    /// Called once per instrumentation event, in execution order.
    fn on_event(&mut self, event: &Event);

    /// Called once when the run finishes (all goroutines ended, leaked, or
    /// the run deadlocked). A good place to flush per-run state.
    fn on_run_end(&mut self) {}

    /// True when the monitor ignores all events. The runtime then skips
    /// event construction entirely (no stack snapshots, no dispatch) while
    /// keeping the schedule identical — modeling a binary compiled
    /// *without* `-race`, which is the §3.5 overhead baseline.
    fn is_noop(&self) -> bool {
        false
    }

    /// Number of shadow words (per-variable detector metadata slots) the
    /// monitor currently holds — the §3.5 memory-overhead statistic,
    /// surfaced through [`MonitorStats::peak_shadow_words`]. Non-detector
    /// monitors report 0.
    fn shadow_words(&self) -> usize {
        0
    }
}

/// The per-run instrumentation counter block, filled by the runtime and
/// returned on [`crate::RunOutcome::stats`].
///
/// This is the §3.5 overhead experiment made observable: how many events
/// the monitor had to consume, how much distinct calling context the stack
/// depot interned for them, and how much shadow state the detector kept.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Events dispatched to the monitor (0 under a no-op monitor, which
    /// models the `-race`-off baseline).
    pub events_dispatched: u64,
    /// Stack-depot contents at the end of the run.
    pub depot: DepotStats,
    /// Peak shadow-word count reported by the monitor (see
    /// [`Monitor::shadow_words`]).
    pub peak_shadow_words: usize,
}

impl MonitorStats {
    /// Reports this run's counters into an [`ObsSink`](grs_obs::ObsSink) —
    /// the composable form of the stats block. Event counts are sums and
    /// the depot/shadow figures are per-run maxima, so the aggregate is
    /// deterministic for any worker placement.
    pub fn record_into(&self, sink: &dyn grs_obs::ObsSink) {
        sink.add("runtime.events", self.events_dispatched);
        sink.gauge_max("runtime.depot_stacks", self.depot.stacks as u64);
        sink.gauge_max("detector.peak_shadow_words", self.peak_shadow_words as u64);
    }
}

/// A monitor that ignores everything — the "race detector off" baseline.
///
/// # Example
///
/// ```
/// use grs_runtime::{NullMonitor, Program, RunConfig, Runtime};
///
/// let p = Program::new("noop", |_ctx| {});
/// let (outcome, _mon) = Runtime::new(RunConfig::with_seed(1)).run(&p, NullMonitor);
/// assert!(outcome.is_clean());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct NullMonitor;

impl Monitor for NullMonitor {
    fn on_event(&mut self, _event: &Event) {}

    fn is_noop(&self) -> bool {
        true
    }
}

/// A monitor that records every event; useful for tests and trace debugging.
#[derive(Debug, Default)]
pub struct RecordingMonitor {
    events: Vec<Event>,
    depot: Option<StackDepot>,
}

impl RecordingMonitor {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events, in execution order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The depot of the recorded run (present after the run started), for
    /// resolving the `StackId`s carried by access events.
    #[must_use]
    pub fn depot(&self) -> Option<&StackDepot> {
        self.depot.as_ref()
    }

    /// Materializes an access event's interned stack.
    ///
    /// # Panics
    ///
    /// Panics when called before a run attached a depot.
    #[must_use]
    pub fn resolve_stack(&self, id: crate::StackId) -> crate::Stack {
        self.depot
            .as_ref()
            .expect("no run recorded yet")
            .resolve(id)
    }

    /// Consumes the recorder, returning the events.
    #[must_use]
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

impl Monitor for RecordingMonitor {
    fn on_run_start(&mut self, depot: &StackDepot) {
        self.depot = Some(depot.clone());
    }

    fn on_event(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

/// A monitor that only counts events — cheap enough for overhead baselines
/// that still exercise the dispatch path.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingMonitor {
    count: u64,
}

impl CountingMonitor {
    /// Creates a zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events observed.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl Monitor for CountingMonitor {
    fn on_event(&mut self, _event: &Event) {
        self.count += 1;
    }
}

/// A monitor that folds the event stream into a single `u64` digest.
///
/// Two runs produce the same digest iff they emitted the same event
/// sequence, which makes this the cheapest possible witness of schedule
/// determinism: same seed ⇒ same digest, across repeated runs, processes,
/// and worker-thread counts. The fold is FNV-1a over the events'
/// `Hash` impl via a deterministic per-event hasher — `DefaultHasher::new()`
/// is documented to use a fixed (unkeyed) state, unlike `RandomState`, so
/// digests are stable within a compiler release.
///
/// # Example
///
/// ```
/// use grs_runtime::{Program, RunConfig, Runtime, TraceHasher};
///
/// let p = Program::new("two", |ctx| {
///     let x = ctx.cell("x", 0i64);
///     ctx.write(&x, 1);
/// });
/// let (_, h1) = Runtime::new(RunConfig::with_seed(7)).run(&p, TraceHasher::new());
/// let (_, h2) = Runtime::new(RunConfig::with_seed(7)).run(&p, TraceHasher::new());
/// assert_eq!(h1.digest(), h2.digest());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TraceHasher {
    digest: u64,
    events: u64,
}

impl Default for TraceHasher {
    fn default() -> Self {
        // FNV-1a offset basis.
        TraceHasher {
            digest: 0xcbf2_9ce4_8422_2325,
            events: 0,
        }
    }
}

impl TraceHasher {
    /// Creates a fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The digest of all events observed so far.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Number of events folded in.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }
}

impl Monitor for TraceHasher {
    fn on_event(&mut self, event: &Event) {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        event.hash(&mut h);
        let ev = h.finish();
        // FNV-1a combine step over the per-event hashes.
        for byte in ev.to_le_bytes() {
            self.digest ^= u64::from(byte);
            self.digest = self.digest.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.events += 1;
    }
}

/// A monitor adapter that reports its inner monitor's activity into an
/// [`ObsSink`](grs_obs::ObsSink) at the end of every run — the literal
/// "monitors report into the observability layer" hookup. The inner
/// monitor's behavior (event handling, noop-ness, shadow accounting) is
/// forwarded unchanged, so wrapping never perturbs detection results.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use grs_obs::MetricsRegistry;
/// use grs_runtime::{ObsMonitor, Program, RunConfig, Runtime, TraceHasher};
///
/// let registry = Arc::new(MetricsRegistry::new());
/// let p = Program::new("one_write", |ctx| {
///     let x = ctx.cell("x", 0i64);
///     ctx.write(&x, 1);
/// });
/// let monitor = ObsMonitor::new(TraceHasher::new(), registry.clone());
/// let (_, m) = Runtime::new(RunConfig::with_seed(1)).run(&p, monitor);
/// assert!(m.into_inner().events() > 0);
/// assert!(registry.snapshot().counter("monitor.events") > 0);
/// ```
pub struct ObsMonitor<M> {
    inner: M,
    sink: std::sync::Arc<dyn grs_obs::ObsSink>,
    events: u64,
}

impl<M: std::fmt::Debug> std::fmt::Debug for ObsMonitor<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsMonitor")
            .field("inner", &self.inner)
            .field("events", &self.events)
            .finish_non_exhaustive()
    }
}

impl<M: Monitor> ObsMonitor<M> {
    /// Wraps `inner`, reporting into `sink` on every run end.
    pub fn new(inner: M, sink: std::sync::Arc<dyn grs_obs::ObsSink>) -> Self {
        ObsMonitor {
            inner,
            sink,
            events: 0,
        }
    }

    /// The wrapped monitor, by reference.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Unwraps the inner monitor.
    pub fn into_inner(self) -> M {
        self.inner
    }
}

impl<M: Monitor> Monitor for ObsMonitor<M> {
    fn on_run_start(&mut self, depot: &StackDepot) {
        self.events = 0;
        self.inner.on_run_start(depot);
    }

    fn on_event(&mut self, event: &Event) {
        self.events += 1;
        self.inner.on_event(event);
    }

    fn on_run_end(&mut self) {
        self.inner.on_run_end();
        self.sink.add("monitor.runs", 1);
        self.sink.add("monitor.events", self.events);
        self.sink
            .gauge_max("monitor.shadow_words", self.inner.shadow_words() as u64);
    }

    fn is_noop(&self) -> bool {
        self.inner.is_noop()
    }

    fn shadow_words(&self) -> usize {
        self.inner.shadow_words()
    }
}

/// Object-safe bridge that lets the kernel hand a type-erased monitor back
/// to [`crate::Runtime::run`], which downcasts it to the caller's concrete
/// type.
pub(crate) trait AnyMonitor: Monitor {
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}

impl<M: Monitor + std::any::Any> AnyMonitor for M {
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

impl<M: Monitor + ?Sized> Monitor for Box<M> {
    fn on_run_start(&mut self, depot: &StackDepot) {
        (**self).on_run_start(depot);
    }

    fn on_event(&mut self, event: &Event) {
        (**self).on_event(event);
    }

    fn on_run_end(&mut self) {
        (**self).on_run_end();
    }

    fn is_noop(&self) -> bool {
        (**self).is_noop()
    }

    fn shadow_words(&self) -> usize {
        (**self).shadow_words()
    }
}
