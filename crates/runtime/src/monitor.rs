//! The [`Monitor`] trait — the runtime/detector boundary.
//!
//! The runtime emits a totally ordered [`Event`] stream while the program
//! executes; a monitor consumes it. Race detectors (`grs-detector`) are
//! monitors, but so are simple recorders and counters used in tests and in
//! the instrumentation-overhead experiment (§3.5 reports a 4× test-time
//! increase with the detector on; our overhead bench compares
//! [`NullMonitor`] against a real detector).

use crate::depot::{DepotStats, StackDepot};
use crate::event::Event;

/// Consumes the instrumentation event stream of one program run.
///
/// Implementations run under the runtime's internal lock, so they must not
/// call back into the runtime. They receive events in a total order
/// consistent with the executed interleaving.
pub trait Monitor: Send {
    /// Called once before the run's first event with the run's stack
    /// depot. Monitors that need to resolve the [`StackId`]s carried by
    /// access events (race detectors building reports) clone the handle
    /// here; the default implementation ignores it.
    ///
    /// [`StackId`]: crate::StackId
    fn on_run_start(&mut self, depot: &StackDepot) {
        let _ = depot;
    }

    /// Called once per instrumentation event, in execution order.
    fn on_event(&mut self, event: &Event);

    /// Called once when the run finishes (all goroutines ended, leaked, or
    /// the run deadlocked). A good place to flush per-run state.
    fn on_run_end(&mut self) {}

    /// True when the monitor ignores all events. The runtime then skips
    /// event construction entirely (no stack snapshots, no dispatch) while
    /// keeping the schedule identical — modeling a binary compiled
    /// *without* `-race`, which is the §3.5 overhead baseline.
    fn is_noop(&self) -> bool {
        false
    }

    /// Number of shadow words (per-variable detector metadata slots) the
    /// monitor currently holds — the §3.5 memory-overhead statistic,
    /// surfaced through [`MonitorStats::peak_shadow_words`]. Non-detector
    /// monitors report 0.
    fn shadow_words(&self) -> usize {
        0
    }
}

/// The per-run instrumentation counter block, filled by the runtime and
/// returned on [`crate::RunOutcome::stats`].
///
/// This is the §3.5 overhead experiment made observable: how many events
/// the monitor had to consume, how much distinct calling context the stack
/// depot interned for them, and how much shadow state the detector kept.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Events dispatched to the monitor (0 under a no-op monitor, which
    /// models the `-race`-off baseline).
    pub events_dispatched: u64,
    /// Stack-depot contents at the end of the run.
    pub depot: DepotStats,
    /// Peak shadow-word count reported by the monitor (see
    /// [`Monitor::shadow_words`]).
    pub peak_shadow_words: usize,
}

/// A monitor that ignores everything — the "race detector off" baseline.
///
/// # Example
///
/// ```
/// use grs_runtime::{NullMonitor, Program, RunConfig, Runtime};
///
/// let p = Program::new("noop", |_ctx| {});
/// let (outcome, _mon) = Runtime::new(RunConfig::with_seed(1)).run(&p, NullMonitor);
/// assert!(outcome.is_clean());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct NullMonitor;

impl Monitor for NullMonitor {
    fn on_event(&mut self, _event: &Event) {}

    fn is_noop(&self) -> bool {
        true
    }
}

/// A monitor that records every event; useful for tests and trace debugging.
#[derive(Debug, Default)]
pub struct RecordingMonitor {
    events: Vec<Event>,
    depot: Option<StackDepot>,
}

impl RecordingMonitor {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events, in execution order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The depot of the recorded run (present after the run started), for
    /// resolving the `StackId`s carried by access events.
    #[must_use]
    pub fn depot(&self) -> Option<&StackDepot> {
        self.depot.as_ref()
    }

    /// Materializes an access event's interned stack.
    ///
    /// # Panics
    ///
    /// Panics when called before a run attached a depot.
    #[must_use]
    pub fn resolve_stack(&self, id: crate::StackId) -> crate::Stack {
        self.depot
            .as_ref()
            .expect("no run recorded yet")
            .resolve(id)
    }

    /// Consumes the recorder, returning the events.
    #[must_use]
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

impl Monitor for RecordingMonitor {
    fn on_run_start(&mut self, depot: &StackDepot) {
        self.depot = Some(depot.clone());
    }

    fn on_event(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

/// A monitor that only counts events — cheap enough for overhead baselines
/// that still exercise the dispatch path.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingMonitor {
    count: u64,
}

impl CountingMonitor {
    /// Creates a zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events observed.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl Monitor for CountingMonitor {
    fn on_event(&mut self, _event: &Event) {
        self.count += 1;
    }
}

/// A monitor that folds the event stream into a single `u64` digest.
///
/// Two runs produce the same digest iff they emitted the same event
/// sequence, which makes this the cheapest possible witness of schedule
/// determinism: same seed ⇒ same digest, across repeated runs, processes,
/// and worker-thread counts. The fold is FNV-1a over the events'
/// `Hash` impl via a deterministic per-event hasher — `DefaultHasher::new()`
/// is documented to use a fixed (unkeyed) state, unlike `RandomState`, so
/// digests are stable within a compiler release.
///
/// # Example
///
/// ```
/// use grs_runtime::{Program, RunConfig, Runtime, TraceHasher};
///
/// let p = Program::new("two", |ctx| {
///     let x = ctx.cell("x", 0i64);
///     ctx.write(&x, 1);
/// });
/// let (_, h1) = Runtime::new(RunConfig::with_seed(7)).run(&p, TraceHasher::new());
/// let (_, h2) = Runtime::new(RunConfig::with_seed(7)).run(&p, TraceHasher::new());
/// assert_eq!(h1.digest(), h2.digest());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TraceHasher {
    digest: u64,
    events: u64,
}

impl Default for TraceHasher {
    fn default() -> Self {
        // FNV-1a offset basis.
        TraceHasher {
            digest: 0xcbf2_9ce4_8422_2325,
            events: 0,
        }
    }
}

impl TraceHasher {
    /// Creates a fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The digest of all events observed so far.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Number of events folded in.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }
}

impl Monitor for TraceHasher {
    fn on_event(&mut self, event: &Event) {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        event.hash(&mut h);
        let ev = h.finish();
        // FNV-1a combine step over the per-event hashes.
        for byte in ev.to_le_bytes() {
            self.digest ^= u64::from(byte);
            self.digest = self.digest.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.events += 1;
    }
}

/// Object-safe bridge that lets the kernel hand a type-erased monitor back
/// to [`crate::Runtime::run`], which downcasts it to the caller's concrete
/// type.
pub(crate) trait AnyMonitor: Monitor {
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}

impl<M: Monitor + std::any::Any> AnyMonitor for M {
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

impl<M: Monitor + ?Sized> Monitor for Box<M> {
    fn on_run_start(&mut self, depot: &StackDepot) {
        (**self).on_run_start(depot);
    }

    fn on_event(&mut self, event: &Event) {
        (**self).on_event(event);
    }

    fn on_run_end(&mut self) {
        (**self).on_run_end();
    }

    fn is_noop(&self) -> bool {
        (**self).is_noop()
    }

    fn shadow_words(&self) -> usize {
        (**self).shadow_words()
    }
}
