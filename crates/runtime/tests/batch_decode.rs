//! Batched `.grtrace` decoding: differential tests against the scalar
//! decoder.
//!
//! The batch decoder ([`DecodedTrace`]) is a second reader of the same
//! wire format, so every guarantee it offers is phrased as equivalence
//! with [`Trace::decode`]:
//!
//! * **property test** (randlite-seeded): on randomly generated programs,
//!   batch decoding at chunk sizes 1, 2, prime strides, and the default
//!   reproduces the exact event sequence, stack table, metadata, depot
//!   snapshot, and FNV digest of the scalar decoder;
//! * **corruption differential**: on truncated, bit-flipped, and
//!   trailing-garbage inputs, the batch decoder returns the *same typed
//!   error* as the scalar decoder (or the same successful decode), and
//!   never panics — including truncations that land mid-chunk.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use grs_runtime::{
    record, DecodedTrace, Program, RunConfig, StackDepot, StackId, Trace, TraceDecodeError,
};

/// A random program shape exercising every event tag: goroutines, plain
/// and racy accesses, mutexes, channels (with close), WaitGroup, Once,
/// and atomics.
#[derive(Debug, Clone)]
struct Shape {
    workers: u8,
    ops: u8,
    use_mutex: bool,
    use_once: bool,
    racy: bool,
    chan_cap: usize,
}

fn gen_shape(rng: &mut StdRng) -> Shape {
    Shape {
        workers: rng.gen_range(1..4u8),
        ops: rng.gen_range(1..5u8),
        use_mutex: rng.gen_bool(0.5),
        use_once: rng.gen_bool(0.3),
        racy: rng.gen_bool(0.4),
        chan_cap: rng.gen_range(0..3usize),
    }
}

fn program(shape: &Shape) -> Program {
    let shape = shape.clone();
    Program::new("batch_prop", move |ctx| {
        let mu = ctx.mutex("mu");
        let x = ctx.cell("x", 0i64);
        let flag = ctx.atomic("flag", 0);
        let once = ctx.once("init");
        let ch = ctx.chan::<i64>("ch", shape.chan_cap);
        let wg = ctx.waitgroup("wg");
        for w in 0..shape.workers {
            wg.add(ctx, 1);
            let (mu, x, flag, once, ch, wg) = (
                mu.clone(),
                x.clone(),
                flag.clone(),
                once.clone(),
                ch.clone(),
                wg.clone(),
            );
            let shape = shape.clone();
            ctx.go("worker", move |ctx| {
                if shape.use_once {
                    let x2 = x.clone();
                    once.do_once(ctx, move |ctx| ctx.write(&x2, -1));
                }
                for i in 0..shape.ops {
                    if shape.use_mutex {
                        mu.lock(ctx);
                        ctx.update(&x, |v| v + 1);
                        mu.unlock(ctx);
                    } else if shape.racy {
                        ctx.update(&x, |v| v + 1);
                    }
                    flag.store(ctx, i64::from(i));
                    ch.send(ctx, i64::from(w));
                }
                wg.done(ctx);
            });
        }
        for _ in 0..u32::from(shape.workers) * u32::from(shape.ops) {
            let _ = ch.recv(ctx);
        }
        wg.wait(ctx);
        let _ = flag.load(ctx);
    })
}

/// Runs `body` over `cases` shape/seed pairs from a deterministic rng.
fn check(seed: u64, cases: usize, mut body: impl FnMut(usize, Shape, u64)) {
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..cases {
        let shape = gen_shape(&mut rng);
        let run_seed = rng.gen_range(0..1000u64);
        body(case, shape, run_seed);
    }
}

/// Depot snapshots agree: every recorded stack id resolves to the same
/// frames through a depot rebuilt from either decoder's stack table.
fn assert_same_depot(label: &str, scalar: &Trace, decoded: &DecodedTrace) {
    let (a, b) = (StackDepot::new(), StackDepot::new());
    scalar.rebuild_depot_into(&a);
    decoded.rebuild_depot_into(&b);
    for i in 1..=scalar.stacks.len() as u32 {
        assert_eq!(
            a.resolve(StackId(i)),
            b.resolve(StackId(i)),
            "{label}: depot stack {i}"
        );
    }
}

/// Chunk sizes the ISSUE pins: 1, 2, prime strides, and the default.
const CHUNKS: &[usize] = &[1, 2, 7, 61, 4096];

#[test]
fn batch_decode_equals_scalar_decode_on_random_traces() {
    check(0xBA7C, 24, |case, shape, run_seed| {
        let p = program(&shape);
        let (_, trace) = record(&p, &RunConfig::with_seed(run_seed));
        let bytes = trace.encode();
        let reference = Trace::decode(&bytes).expect("scalar decode");
        for &chunk in CHUNKS {
            let label = format!("case {case} shape {shape:?} chunk {chunk}");
            let decoded =
                DecodedTrace::decode_with_chunk(&bytes, chunk).expect("batch decode");
            assert_eq!(decoded.len(), reference.events.len(), "{label}: event count");
            assert_eq!(decoded.meta, reference.meta, "{label}: meta");
            assert_eq!(decoded.stacks, reference.stacks, "{label}: stack table");
            if !decoded.is_empty() {
                assert_eq!(
                    decoded.chunks,
                    (decoded.len() as u64).div_ceil(chunk as u64),
                    "{label}: chunk count"
                );
                let fill = decoded.fill_rate();
                assert!(fill > 0.0 && fill <= 1.0, "{label}: fill rate {fill}");
            }
            for (i, ev) in reference.events.iter().enumerate() {
                assert_eq!(&decoded.event(i), ev, "{label}: event {i}");
            }
            assert_same_depot(&label, &reference, &decoded);
            // Same FNV digest: the decoded trace *is* the recorded trace.
            assert_eq!(
                decoded.into_trace().digest(),
                trace.digest(),
                "{label}: digest"
            );
        }
    });
}

/// Both decoders applied to the same (possibly corrupt) bytes must agree
/// exactly: same decoded trace on success, same typed error on failure.
/// Chunk size 4 forces corruption to surface mid-chunk in the batch path.
fn assert_differential(label: &str, bytes: &[u8]) {
    let scalar = Trace::decode(bytes);
    let batched = DecodedTrace::decode_with_chunk(bytes, 4);
    match (&scalar, &batched) {
        (Err(se), Err(be)) => assert_eq!(se, be, "{label}: errors must match"),
        (Ok(st), Ok(bt)) => {
            assert_eq!(st.meta, bt.meta, "{label}: meta");
            assert_eq!(st.stacks, bt.stacks, "{label}: stacks");
            assert_eq!(st.events.len(), bt.len(), "{label}: event count");
            for (i, ev) in st.events.iter().enumerate() {
                assert_eq!(&bt.event(i), ev, "{label}: event {i}");
            }
        }
        (s, b) => panic!(
            "{label}: decoders disagree on validity: scalar {:?} vs batch {:?}",
            s.as_ref().map(|t| t.events.len()),
            b.as_ref().map(DecodedTrace::len),
        ),
    }
}

fn small_trace_bytes() -> Vec<u8> {
    let shape = Shape {
        workers: 2,
        ops: 2,
        use_mutex: true,
        use_once: true,
        racy: true,
        chan_cap: 1,
    };
    let (_, trace) = record(&program(&shape), &RunConfig::with_seed(11));
    trace.encode()
}

#[test]
fn truncation_at_every_length_matches_scalar_errors() {
    let bytes = small_trace_bytes();
    for len in 0..bytes.len() {
        assert_differential(&format!("truncate to {len}"), &bytes[..len]);
        // Every proper prefix must fail: the format has no trailing slack.
        assert!(
            Trace::decode(&bytes[..len]).is_err(),
            "prefix of {len} bytes decoded successfully"
        );
    }
}

#[test]
fn trailing_bytes_are_rejected_identically() {
    let mut bytes = small_trace_bytes();
    for extra in [1usize, 7] {
        bytes.extend(vec![0xABu8; extra]);
        let err = DecodedTrace::decode(&bytes).expect_err("trailing bytes");
        assert!(
            matches!(err, TraceDecodeError::TrailingBytes { .. }),
            "expected TrailingBytes, got {err:?}"
        );
        assert_differential(&format!("{extra} trailing bytes"), &bytes);
        bytes.truncate(bytes.len() - extra);
    }
}

/// Exhaustive single-byte corruption: flip bits at every offset. Whatever
/// the scalar decoder makes of the damage — a typed error (bad magic, bad
/// string index, bad stack id, bad event tag, malformed varint...) or an
/// accidental still-valid stream — the batch decoder must make of it too.
#[test]
fn bit_flips_at_every_offset_match_scalar_verdicts() {
    let bytes = small_trace_bytes();
    for i in 0..bytes.len() {
        for flip in [0x01u8, 0x80] {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= flip;
            assert_differential(&format!("flip {flip:#04x} at byte {i}"), &corrupt);
        }
    }
}
