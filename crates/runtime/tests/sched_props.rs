//! Seeded property tests for the scheduling policies and the schedule
//! trace codec.
//!
//! These run in tier-1 on the vendored `rand` stub: shapes, gid sets, and
//! seeds are drawn from a fixed-seed `StdRng`, so failures are perfectly
//! reproducible (the case index pins the inputs).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use grs_runtime::ids::Gid;
use grs_runtime::{
    NullMonitor, PctPolicy, Program, RoundRobinPolicy, RunConfig, Runtime, ScheduleDecision,
    SchedulePolicy, ScheduleTrace, Strategy,
};

/// Draws a sorted set of distinct — and usually non-contiguous — gids.
fn gen_gids(rng: &mut StdRng) -> Vec<Gid> {
    let n = rng.gen_range(2..8usize);
    let mut raw: Vec<u32> = Vec::with_capacity(n);
    let mut next = 0u32;
    for _ in 0..n {
        next += rng.gen_range(1..7u32); // gaps of 1..6 between ids
        raw.push(next);
    }
    raw.into_iter().map(Gid).collect()
}

/// A worker-pool program whose step count scales with the shape.
fn pool_program(workers: u8, ops: u8) -> Program {
    Program::new("sched_prop", move |ctx| {
        let x = ctx.cell("x", 0i64);
        let done = ctx.chan::<()>("done", usize::from(workers));
        let mu = ctx.mutex("mu");
        for _ in 0..workers {
            let (x, done, mu) = (x.clone(), done.clone(), mu.clone());
            ctx.go("w", move |ctx| {
                for _ in 0..ops {
                    mu.lock(ctx);
                    ctx.update(&x, |v| v + 1);
                    mu.unlock(ctx);
                }
                done.send(ctx, ());
            });
        }
        for _ in 0..workers {
            let _ = done.recv(ctx);
        }
    })
}

/// Round-robin consumes no randomness at pick time, so the *schedule* of a
/// round-robin run is invariant under the seed — the property that makes
/// [`grs_runtime::calibrate_steps`] a pure function of the program.
#[test]
fn round_robin_schedule_is_seed_invariant() {
    let mut rng = StdRng::seed_from_u64(0x5eed);
    for case in 0..24 {
        let workers = rng.gen_range(1..5u8);
        let ops = rng.gen_range(1..4u8);
        let p = pool_program(workers, ops);
        let run = |seed: u64| {
            let cfg = RunConfig::with_seed(seed).strategy(Strategy::RoundRobin);
            let (o, NullMonitor) = Runtime::new(cfg).run(&p, NullMonitor);
            (o.schedule, o.steps, o.coverage)
        };
        let (a_seed, b_seed) = (rng.gen_range(0..1000u64), rng.gen_range(1000..2000u64));
        assert_eq!(run(a_seed), run(b_seed), "case {case}");
    }
}

/// PCT (depth 1: no change points) maintains a strict total priority
/// order: the pick from any runnable subset is the subset's maximum under
/// the order observed by peeling the full set winner-by-winner.
#[test]
fn pct_picks_the_highest_priority_runnable() {
    let mut shape_rng = StdRng::seed_from_u64(0x9c7);
    for case in 0..24 {
        let gids = gen_gids(&mut shape_rng);
        let policy_seed = shape_rng.gen_range(0..1_000_000u64);

        // Recover the policy's total order by peeling winners off the full
        // set with one policy instance...
        let mut rng = StdRng::seed_from_u64(policy_seed);
        let mut peel = PctPolicy::new(1, &mut rng, 1000);
        for &g in &gids {
            peel.register(g, &mut rng);
        }
        let mut remaining = gids.clone();
        let mut order = Vec::with_capacity(gids.len());
        while !remaining.is_empty() {
            let g = peel.pick(&remaining, None, &mut rng);
            assert!(remaining.contains(&g), "case {case}: pick outside set");
            remaining.retain(|&r| r != g);
            order.push(g);
        }

        // ...then check an identically-seeded twin agrees on arbitrary
        // subsets: the pick is always the earliest-in-order member.
        let mut rng2 = StdRng::seed_from_u64(policy_seed);
        let mut policy = PctPolicy::new(1, &mut rng2, 1000);
        for &g in &gids {
            policy.register(g, &mut rng2);
        }
        for _ in 0..12 {
            let subset: Vec<Gid> = gids
                .iter()
                .copied()
                .filter(|_| shape_rng.gen_bool(0.6))
                .collect();
            if subset.is_empty() {
                continue;
            }
            let expected = *order.iter().find(|g| subset.contains(g)).unwrap();
            let picked = policy.pick(&subset, None, &mut rng2);
            assert_eq!(picked, expected, "case {case}: subset {subset:?}");
        }
    }
}

/// Equal priorities break ties toward the higher gid (`max_by_key` on
/// `(priority, gid)`). Priorities are equal across goroutines registered
/// at the same RNG state only by construction here: a policy that never
/// registered anyone assigns everyone the default priority 0.
#[test]
fn pct_breaks_priority_ties_by_gid() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut policy = PctPolicy::new(1, &mut rng, 1000);
    // No registrations: every gid sits at the default priority.
    let runnable = vec![Gid(3), Gid(11), Gid(7)];
    assert_eq!(policy.pick(&runnable, None, &mut rng), Gid(11));
}

/// Every policy must tolerate non-contiguous gid registration (spawn ids
/// are dense in practice, but nothing in the contract says so) and pick
/// only from the runnable set.
#[test]
fn policies_handle_non_contiguous_gids() {
    let mut shape_rng = StdRng::seed_from_u64(0xabcd);
    for case in 0..24 {
        let gids = gen_gids(&mut shape_rng);
        let seed = shape_rng.gen_range(0..1_000_000u64);
        for strategy in [
            Strategy::Random,
            Strategy::Pct { depth: 3 },
            Strategy::RoundRobin,
        ] {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut policy = strategy.policy(&mut rng, 1000);
            for &g in &gids {
                policy.register(g, &mut rng);
            }
            let mut current = None;
            for _ in 0..20 {
                let picked = policy.pick(&gids, current, &mut rng);
                assert!(gids.contains(&picked), "case {case} {strategy:?}");
                current = Some(picked);
            }
        }
    }
}

/// Round-robin must rotate: with every goroutine runnable, it never picks
/// the currently running one twice in a row (when alternatives exist).
#[test]
fn round_robin_never_starves_with_full_runnable_set() {
    let mut shape_rng = StdRng::seed_from_u64(0x44);
    for _ in 0..24 {
        let gids = gen_gids(&mut shape_rng);
        let mut rng = StdRng::seed_from_u64(1);
        let mut policy = RoundRobinPolicy::new();
        for &g in &gids {
            policy.register(g, &mut rng);
        }
        let mut current = Some(gids[0]);
        for _ in 0..3 * gids.len() {
            let picked = policy.pick(&gids, current, &mut rng);
            assert_ne!(Some(picked), current);
            current = Some(picked);
        }
    }
}

/// Random schedule traces survive the uvarint codec byte-identically, and
/// the digest is a function of the decisions alone.
#[test]
fn schedule_trace_round_trips() {
    let mut rng = StdRng::seed_from_u64(0x7ace);
    for case in 0..48 {
        let n = rng.gen_range(0..200usize);
        let decisions = (0..n)
            .map(|_| {
                let arity = rng.gen_range(1..20u32);
                ScheduleDecision {
                    chosen: rng.gen_range(0..arity),
                    arity,
                }
            })
            .collect();
        let trace = ScheduleTrace { decisions };
        let bytes = trace.encode();
        let back = ScheduleTrace::decode(&bytes).expect("round trip");
        assert_eq!(back, trace, "case {case}");
        assert_eq!(back.digest(), trace.digest());
        // Truncation anywhere strictly inside the stream must error, never
        // mis-decode.
        if bytes.len() > 1 {
            let cut = rng.gen_range(1..bytes.len());
            assert!(
                ScheduleTrace::decode(&bytes[..cut]).is_err(),
                "case {case}: truncation at {cut} decoded"
            );
        }
    }
}

/// A recorded run's schedule replays to the same interleaving: feeding the
/// full recorded trace back as a prefix reproduces schedule and coverage.
#[test]
fn recorded_schedules_replay_to_the_same_run() {
    let mut rng = StdRng::seed_from_u64(0xfeed);
    for case in 0..12 {
        let p = pool_program(rng.gen_range(1..4u8), rng.gen_range(1..3u8));
        let seed = rng.gen_range(0..1000u64);
        let (first, NullMonitor) =
            Runtime::new(RunConfig::with_seed(seed)).run(&p, NullMonitor);
        let replay_cfg = RunConfig::with_seed(seed).schedule_prefix(first.schedule.clone());
        let (second, NullMonitor) = Runtime::new(replay_cfg).run(&p, NullMonitor);
        assert_eq!(first.schedule, second.schedule, "case {case}");
        assert_eq!(first.coverage, second.coverage, "case {case}");
        assert_eq!(first.steps, second.steps, "case {case}");
    }
}
