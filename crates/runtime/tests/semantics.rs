//! Semantics tests for the Go runtime substrate: every primitive behaves
//! like its Go counterpart, runs are deterministic per seed, and the event
//! stream carries what a detector needs.

use grs_runtime::chan::select2_recv;
use grs_runtime::event::EventKind;
use grs_runtime::{
    GoMap, GoSlice, NullMonitor, Program, RecordingMonitor, RunConfig, Runtime, Selected2,
    Strategy,
};

fn run_clean(p: &Program, seed: u64) -> grs_runtime::RunOutcome {
    let (outcome, _) = Runtime::new(RunConfig::with_seed(seed)).run(p, NullMonitor);
    assert!(
        outcome.is_clean(),
        "expected clean run, got errors={:?} deadlock={:?} leaked={:?}",
        outcome.errors,
        outcome.deadlock,
        outcome.leaked
    );
    outcome
}

#[test]
fn empty_program_runs() {
    let p = Program::new("empty", |_ctx| {});
    let outcome = run_clean(&p, 0);
    assert_eq!(outcome.goroutines_spawned, 1);
}

#[test]
fn spawned_goroutines_all_run() {
    let p = Program::new("spawn", |ctx| {
        let done = ctx.chan::<u32>("done", 10);
        for i in 0..5 {
            let tx = done.clone();
            ctx.go("worker", move |ctx| tx.send(ctx, i));
        }
        let mut seen = Vec::new();
        for _ in 0..5 {
            seen.push(done.recv(ctx).value().expect("channel open"));
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    });
    for seed in 0..10 {
        let outcome = run_clean(&p, seed);
        assert_eq!(outcome.goroutines_spawned, 6);
    }
}

#[test]
fn unbuffered_channel_rendezvous() {
    let p = Program::new("rendezvous", |ctx| {
        let ch = ctx.chan::<&'static str>("ch", 0);
        let tx = ch.clone();
        ctx.go("sender", move |ctx| tx.send(ctx, "hello"));
        assert_eq!(ch.recv(ctx).value(), Some("hello"));
    });
    for seed in 0..20 {
        run_clean(&p, seed);
    }
}

#[test]
fn buffered_channel_preserves_fifo() {
    let p = Program::new("fifo", |ctx| {
        let ch = ctx.chan::<u32>("ch", 3);
        ch.send(ctx, 1);
        ch.send(ctx, 2);
        ch.send(ctx, 3);
        assert_eq!(ch.recv(ctx).value(), Some(1));
        assert_eq!(ch.recv(ctx).value(), Some(2));
        assert_eq!(ch.recv(ctx).value(), Some(3));
    });
    run_clean(&p, 1);
}

#[test]
fn buffered_channel_blocks_when_full() {
    // Producer sends 4 into a cap-2 channel; consumer drains; all arrive.
    let p = Program::new("backpressure", |ctx| {
        let ch = ctx.chan::<u32>("ch", 2);
        let tx = ch.clone();
        ctx.go("producer", move |ctx| {
            for i in 0..4 {
                tx.send(ctx, i);
            }
        });
        let mut got = Vec::new();
        for _ in 0..4 {
            got.push(ch.recv(ctx).value().expect("open"));
        }
        assert_eq!(got, vec![0, 1, 2, 3]);
    });
    for seed in 0..20 {
        run_clean(&p, seed);
    }
}

#[test]
fn closed_channel_drains_then_reports_closed() {
    let p = Program::new("close", |ctx| {
        let ch = ctx.chan::<u32>("ch", 2);
        ch.send(ctx, 7);
        ch.close(ctx);
        assert_eq!(ch.recv(ctx).value(), Some(7));
        assert!(ch.recv(ctx).is_closed());
        assert!(ch.recv(ctx).is_closed()); // stays closed
    });
    run_clean(&p, 2);
}

#[test]
fn send_on_closed_channel_records_error() {
    let p = Program::new("send_closed", |ctx| {
        let ch = ctx.chan::<u32>("ch", 1);
        ch.close(ctx);
        ch.send(ctx, 1);
    });
    let (outcome, _) = Runtime::new(RunConfig::with_seed(0)).run(&p, NullMonitor);
    assert_eq!(outcome.errors.len(), 1);
    assert!(matches!(
        outcome.errors[0],
        grs_runtime::RuntimeError::SendOnClosedChannel { .. }
    ));
}

#[test]
fn double_close_records_error() {
    let p = Program::new("double_close", |ctx| {
        let ch = ctx.chan::<u32>("ch", 1);
        ch.close(ctx);
        ch.close(ctx);
    });
    let (outcome, _) = Runtime::new(RunConfig::with_seed(0)).run(&p, NullMonitor);
    assert!(matches!(
        outcome.errors[0],
        grs_runtime::RuntimeError::CloseOfClosedChannel { .. }
    ));
}

#[test]
fn deadlock_is_detected() {
    let p = Program::new("deadlock", |ctx| {
        let ch = ctx.chan::<u32>("never", 0);
        let _ = ch.recv(ctx); // nobody will ever send
    });
    let (outcome, _) = Runtime::new(RunConfig::with_seed(0)).run(&p, NullMonitor);
    let dl = outcome.deadlock.expect("must deadlock");
    assert_eq!(dl.blocked.len(), 1);
    assert!(dl.to_string().contains("deadlock"));
}

#[test]
fn goroutine_leak_is_detected() {
    // Main returns while a goroutine is blocked forever on a channel send —
    // the Listing 9 leak shape.
    let p = Program::new("leak", |ctx| {
        let ch = ctx.chan::<u32>("ch", 0);
        ctx.go("stuck-sender", move |ctx| ch.send(ctx, 1));
        ctx.sleep(3);
    });
    let (outcome, _) = Runtime::new(RunConfig::with_seed(0)).run(&p, NullMonitor);
    assert!(outcome.deadlock.is_none());
    assert_eq!(outcome.leaked.len(), 1);
    assert!(outcome.leaked[0].1.contains("stuck-sender"));
}

#[test]
fn mutex_provides_mutual_exclusion() {
    // With proper locking, the non-atomic read-modify-write never loses an
    // update, under any seed.
    let p = Program::new("mutex_excl", |ctx| {
        let mu = ctx.mutex("mu");
        let counter = ctx.cell("counter", 0i64);
        let wg = ctx.waitgroup("wg");
        for _ in 0..4 {
            wg.add(ctx, 1);
            let (mu, counter, wg) = (mu.clone(), counter.clone(), wg.clone());
            ctx.go("incr", move |ctx| {
                mu.lock(ctx);
                ctx.update(&counter, |v| v + 1);
                mu.unlock(ctx);
                wg.done(ctx);
            });
        }
        wg.wait(ctx);
        assert_eq!(ctx.read(&counter), 4);
    });
    for seed in 0..30 {
        run_clean(&p, seed);
    }
}

#[test]
fn unprotected_rmw_can_lose_updates() {
    // Sanity check that the scheduler CAN interleave between the read and
    // write halves of an unlocked update: across many seeds at least one
    // run must lose an update. (This is the behavioral core of why the
    // paper's "missing lock" races matter.)
    let mut lost_update_seen = false;
    for seed in 0..60 {
        let p = Program::new("lost_update", |ctx| {
            let counter = ctx.cell("counter", 0i64);
            let wg = ctx.waitgroup("wg");
            for _ in 0..2 {
                wg.add(ctx, 1);
                let (counter, wg) = (counter.clone(), wg.clone());
                ctx.go("incr", move |ctx| {
                    ctx.update(&counter, |v| v + 1);
                    wg.done(ctx);
                });
            }
            wg.wait(ctx);
        });
        let (outcome, mon) =
            Runtime::new(RunConfig::with_seed(seed)).run(&p, RecordingMonitor::new());
        assert!(outcome.is_clean());
        // Reconstruct the final value from the trace? Simpler: rerun and
        // inspect the cell via a channel; instead, check interleaving of
        // accesses in the event stream.
        let accesses: Vec<_> = mon
            .events()
            .iter()
            .filter_map(|e| e.as_access().map(|(a, k, _, _)| (e.gid, *a, k)))
            .collect();
        // Find two goroutines' read/write pairs on the same address and
        // check whether one pair nests inside the other (lost update).
        let counter_addr = accesses
            .iter()
            .map(|(_, a, _)| *a)
            .next()
            .expect("has accesses");
        let on_counter: Vec<_> = accesses
            .iter()
            .filter(|(_, a, _)| *a == counter_addr)
            .collect();
        for w in on_counter.windows(4) {
            if w[0].0 != w[1].0 {
                // read(g1), then something from g2 before g1's write.
                lost_update_seen = true;
            }
        }
        if lost_update_seen {
            break;
        }
    }
    assert!(
        lost_update_seen,
        "random scheduler never interleaved a read-modify-write"
    );
}

#[test]
fn waitgroup_correct_usage_waits_for_all() {
    let p = Program::new("wg_correct", |ctx| {
        let wg = ctx.waitgroup("wg");
        let results = GoSlice::<i64>::make(ctx, "results", 8);
        for i in 0..8 {
            wg.add(ctx, 1); // correctly placed BEFORE the go statement
            let (wg, results) = (wg.clone(), results.clone());
            ctx.go("worker", move |ctx| {
                results.set(ctx, i, 1);
                wg.done(ctx);
            });
        }
        wg.wait(ctx);
        let sum: i64 = (0..8).map(|i| results.get(ctx, i)).sum();
        assert_eq!(sum, 8);
    });
    for seed in 0..30 {
        run_clean(&p, seed);
    }
}

#[test]
fn waitgroup_add_inside_goroutine_can_unblock_early() {
    // Listing 10: wg.Add(1) inside the goroutine body. Under some schedule
    // Wait() returns before all workers registered.
    let mut early_return_seen = false;
    for seed in 0..80 {
        let p = Program::new("wg_misuse", |ctx| {
            let wg = ctx.waitgroup("wg");
            let done_count = ctx.cell("done_count", 0i64);
            for _ in 0..4 {
                let (wg, done_count) = (wg.clone(), done_count.clone());
                ctx.go("worker", move |ctx| {
                    wg.add(ctx, 1); // WRONG: inside the goroutine
                    ctx.update(&done_count, |v| v + 1);
                    wg.done(ctx);
                });
            }
            wg.wait(ctx);
            // Smuggle the observation out through the cell value:
            let seen = ctx.read(&done_count);
            let marker = ctx.cell("marker", seen);
            let _ = ctx.read(&marker);
        });
        let (outcome, mon) =
            Runtime::new(RunConfig::with_seed(seed)).run(&p, RecordingMonitor::new());
        assert!(outcome.is_clean(), "errors: {:?}", outcome.errors);
        // Find the WgWait event and count WgAdd(+1) events before it.
        let mut adds_before_wait = 0;
        for ev in mon.events() {
            match &ev.kind {
                EventKind::WgAdd { delta: 1, .. } => adds_before_wait += 1,
                EventKind::WgWait { .. } => break,
                _ => {}
            }
        }
        if adds_before_wait < 4 {
            early_return_seen = true;
            break;
        }
    }
    assert!(
        early_return_seen,
        "Wait() never unblocked early despite misplaced Add()"
    );
}

#[test]
fn negative_waitgroup_records_error() {
    let p = Program::new("wg_negative", |ctx| {
        let wg = ctx.waitgroup("wg");
        wg.done(ctx);
    });
    let (outcome, _) = Runtime::new(RunConfig::with_seed(0)).run(&p, NullMonitor);
    assert!(matches!(
        outcome.errors[0],
        grs_runtime::RuntimeError::NegativeWaitGroup { .. }
    ));
}

#[test]
fn rwmutex_allows_concurrent_readers_excludes_writer() {
    let p = Program::new("rw", |ctx| {
        let rw = ctx.rwmutex("rw");
        let data = ctx.cell("data", 0i64);
        let wg = ctx.waitgroup("wg");
        for _ in 0..3 {
            wg.add(ctx, 1);
            let (rw, data, wg) = (rw.clone(), data.clone(), wg.clone());
            ctx.go("reader", move |ctx| {
                rw.rlock(ctx);
                let _ = ctx.read(&data);
                rw.runlock(ctx);
                wg.done(ctx);
            });
        }
        wg.add(ctx, 1);
        let (rw2, data2, wg2) = (rw.clone(), data.clone(), wg.clone());
        ctx.go("writer", move |ctx| {
            rw2.lock(ctx);
            ctx.write(&data2, 42);
            rw2.unlock(ctx);
            wg2.done(ctx);
        });
        wg.wait(ctx);
        rw.rlock(ctx);
        assert_eq!(ctx.read(&data), 42);
        rw.runlock(ctx);
    });
    for seed in 0..30 {
        run_clean(&p, seed);
    }
}

#[test]
fn mutex_copy_value_is_a_different_lock() {
    let p = Program::new("mutex_copy", |ctx| {
        let mu = ctx.mutex("mu");
        let copy = mu.copy_value(ctx);
        assert_ne!(mu.uid(), copy.uid());
        // Both can be held "simultaneously" — they exclude nothing.
        mu.lock(ctx);
        copy.lock(ctx); // would deadlock if it were the same lock
        copy.unlock(ctx);
        mu.unlock(ctx);
    });
    run_clean(&p, 3);
}

#[test]
fn once_runs_exactly_once() {
    let p = Program::new("once", |ctx| {
        let once = ctx.once("init");
        let count = ctx.cell("count", 0i64);
        let wg = ctx.waitgroup("wg");
        for _ in 0..4 {
            wg.add(ctx, 1);
            let (once, count, wg) = (once.clone(), count.clone(), wg.clone());
            ctx.go("initer", move |ctx| {
                once.do_once(ctx, |ctx| ctx.update(&count, |v| v + 1));
                wg.done(ctx);
            });
        }
        wg.wait(ctx);
        assert_eq!(ctx.read(&count), 1);
    });
    for seed in 0..30 {
        run_clean(&p, seed);
    }
}

#[test]
fn select_takes_the_ready_arm() {
    let p = Program::new("select_ready", |ctx| {
        let a = ctx.chan::<u32>("a", 1);
        let b = ctx.chan::<&'static str>("b", 1);
        b.send(ctx, "ready");
        match select2_recv(ctx, &a, &b) {
            Selected2::Second(r) => assert_eq!(r.value(), Some("ready")),
            Selected2::First(_) => panic!("arm a was not ready"),
        }
    });
    run_clean(&p, 4);
}

#[test]
fn select_blocks_until_one_arm_fires() {
    let p = Program::new("select_block", |ctx| {
        let a = ctx.chan::<u32>("a", 0);
        let b = ctx.chan::<u32>("b", 0);
        let a2 = a.clone();
        ctx.go("sender", move |ctx| a2.send(ctx, 5));
        match select2_recv(ctx, &a, &b) {
            Selected2::First(r) => assert_eq!(r.value(), Some(5)),
            Selected2::Second(_) => panic!("b never fired"),
        }
    });
    for seed in 0..20 {
        run_clean(&p, seed);
    }
}

#[test]
fn select_on_closed_channel_fires() {
    let p = Program::new("select_closed", |ctx| {
        let a = ctx.chan::<u32>("a", 0);
        let b = ctx.chan::<u32>("b", 0);
        let b2 = b.clone();
        ctx.go("closer", move |ctx| b2.close(ctx));
        match select2_recv(ctx, &a, &b) {
            Selected2::Second(r) => assert!(r.is_closed()),
            Selected2::First(_) => panic!("a never fired"),
        }
    });
    for seed in 0..20 {
        run_clean(&p, seed);
    }
}

#[test]
fn goslice_append_get_set() {
    let p = Program::new("slice_ops", |ctx| {
        let s = GoSlice::<i64>::empty(ctx, "s");
        for i in 0..10 {
            s.append(ctx, i);
        }
        assert_eq!(s.len(ctx), 10);
        assert_eq!(s.get(ctx, 9), 9);
        s.set(ctx, 0, 100);
        assert_eq!(s.get(ctx, 0), 100);
        let copy = s.copy_value(ctx);
        assert_eq!(copy.len(ctx), 10);
        // The copy shares the backing array:
        copy.set(ctx, 1, 55);
        assert_eq!(s.get(ctx, 1), 55);
    });
    run_clean(&p, 5);
}

#[test]
fn gomap_insert_get_delete_iterate() {
    let p = Program::new("map_ops", |ctx| {
        let m: GoMap<String, i64> = GoMap::make(ctx, "m");
        m.insert(ctx, "a".into(), 1);
        m.insert(ctx, "b".into(), 2);
        assert_eq!(m.get(ctx, &"a".into()), Some(1));
        assert_eq!(m.get(ctx, &"zzz".into()), None);
        assert_eq!(m.len(ctx), 2);
        let items = m.iterate(ctx);
        assert_eq!(items.len(), 2);
        m.delete(ctx, &"a".into());
        assert_eq!(m.len(ctx), 1);
        assert!(!m.is_empty(ctx));
    });
    run_clean(&p, 6);
}

#[test]
fn atomic_cell_ops() {
    let p = Program::new("atomics", |ctx| {
        let a = ctx.atomic("a", 0);
        assert_eq!(a.add(ctx, 5), 5);
        a.store(ctx, 10);
        assert_eq!(a.load(ctx), 10);
        assert!(a.compare_and_swap(ctx, 10, 20));
        assert!(!a.compare_and_swap(ctx, 10, 30));
        assert_eq!(a.load_plain(ctx), 20);
        a.store_plain(ctx, 1);
        assert_eq!(a.load(ctx), 1);
    });
    run_clean(&p, 7);
}

#[test]
fn same_seed_same_trace() {
    let p = Program::new("determinism", |ctx| {
        let c = ctx.cell("c", 0i64);
        let ch = ctx.chan::<i64>("ch", 4);
        for i in 0..4 {
            let (c, ch) = (c.clone(), ch.clone());
            ctx.go("w", move |ctx| {
                ctx.update(&c, |v| v + i);
                ch.send(ctx, i);
            });
        }
        for _ in 0..4 {
            let _ = ch.recv(ctx);
        }
    });
    let trace = |seed| {
        let (_, mon) = Runtime::new(RunConfig::with_seed(seed)).run(&p, RecordingMonitor::new());
        mon.into_events()
            .iter()
            .map(|e| (e.step, e.gid))
            .collect::<Vec<_>>()
    };
    assert_eq!(trace(11), trace(11));
    assert_eq!(trace(12), trace(12));
    assert_ne!(trace(11), trace(12)); // overwhelmingly likely to differ
}

#[test]
fn strategies_all_complete() {
    let p = Program::new("strategies", |ctx| {
        let wg = ctx.waitgroup("wg");
        let c = ctx.cell("c", 0i64);
        for _ in 0..3 {
            wg.add(ctx, 1);
            let (wg, c) = (wg.clone(), c.clone());
            ctx.go("w", move |ctx| {
                ctx.update(&c, |v| v + 1);
                wg.done(ctx);
            });
        }
        wg.wait(ctx);
    });
    for strategy in [
        Strategy::Random,
        Strategy::RoundRobin,
        Strategy::Pct { depth: 3 },
    ] {
        let (outcome, _) = Runtime::new(RunConfig::with_seed(9).strategy(strategy))
            .run(&p, NullMonitor);
        assert!(outcome.is_clean(), "strategy {strategy:?} failed");
    }
}

#[test]
fn step_budget_catches_runaway_programs() {
    let p = Program::new("runaway", |ctx| {
        let c = ctx.cell("c", 0i64);
        loop {
            ctx.write(&c, 1);
        }
    });
    let (outcome, _) = Runtime::new(RunConfig::with_seed(0).max_steps(500)).run(&p, NullMonitor);
    assert!(matches!(
        outcome.errors[0],
        grs_runtime::RuntimeError::StepBudgetExhausted { .. }
    ));
}

#[test]
fn user_panic_is_recorded_and_run_continues() {
    let p = Program::new("panicky", |ctx| {
        let ch = ctx.chan::<u32>("ch", 1);
        let tx = ch.clone();
        ctx.go("bad", move |_ctx| panic!("boom"));
        ctx.go("good", move |ctx| tx.send(ctx, 1));
        assert_eq!(ch.recv(ctx).value(), Some(1));
    });
    let (outcome, _) = Runtime::new(RunConfig::with_seed(1)).run(&p, NullMonitor);
    assert_eq!(outcome.errors.len(), 1);
    assert!(matches!(
        &outcome.errors[0],
        grs_runtime::RuntimeError::GoroutinePanic { message, .. } if message == "boom"
    ));
}

#[test]
fn frames_appear_in_access_stacks() {
    let p = Program::new("stacks", |ctx| {
        let c = ctx.cell("x", 0i64);
        ctx.call("ProcessAll", |ctx| {
            ctx.call("SafeAppend", |ctx| {
                ctx.write(&c, 1);
            });
        });
    });
    let (outcome, mon) = Runtime::new(RunConfig::with_seed(0)).run(&p, RecordingMonitor::new());
    assert!(outcome.is_clean());
    let access = mon
        .events()
        .iter()
        .find_map(|e| e.as_access().map(|(_, _, s, _)| s))
        .expect("one access event");
    let stack = mon.resolve_stack(access);
    assert_eq!(stack.func_names(), vec!["main", "ProcessAll", "SafeAppend"]);
}

#[test]
fn chan_events_carry_matching_seqs() {
    let p = Program::new("seqs", |ctx| {
        let ch = ctx.chan::<u32>("ch", 2);
        ch.send(ctx, 1);
        ch.send(ctx, 2);
        assert_eq!(ch.recv(ctx).value(), Some(1));
        assert_eq!(ch.recv(ctx).value(), Some(2));
    });
    let (_, mon) = Runtime::new(RunConfig::with_seed(0)).run(&p, RecordingMonitor::new());
    let mut sends = Vec::new();
    let mut recvs = Vec::new();
    for e in mon.events() {
        match &e.kind {
            EventKind::ChanSend { seq, .. } => sends.push(*seq),
            EventKind::ChanRecv { seq, .. } => recvs.push(*seq),
            _ => {}
        }
    }
    assert_eq!(sends, vec![0, 1]);
    assert_eq!(recvs, vec![0, 1]);
}

#[test]
fn context_cancellation_closes_done() {
    let p = Program::new("gctx", |ctx| {
        let gctx = grs_runtime::GoContext::with_cancel(ctx, "req");
        assert!(!gctx.is_cancelled());
        let g2 = gctx.clone();
        ctx.go("cancel", move |ctx| {
            g2.cancel(ctx);
            g2.cancel(ctx); // idempotent
        });
        assert!(gctx.done().recv(ctx).is_closed());
        assert!(gctx.is_cancelled());
    });
    for seed in 0..10 {
        run_clean(&p, seed);
    }
}
