//! Property tests for the runtime: randomly generated programs obey the
//! structural invariants no schedule may violate.


// Gated behind the `props` feature: proptest is an external crate and
// the tier-1 build must succeed without registry access (restore the
// dev-dependency to run these).
#![cfg(feature = "props")]

use proptest::prelude::*;

use grs_runtime::event::EventKind;
use grs_runtime::{Program, RecordingMonitor, RunConfig, Runtime, Strategy as Sched};

/// A small random program shape: `workers` goroutines each performing `ops`
/// operations of a given kind, all correctly synchronized.
#[derive(Debug, Clone)]
struct Shape {
    workers: u8,
    ops: u8,
    use_mutex: bool,
    chan_cap: usize,
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    (1u8..5, 1u8..6, any::<bool>(), 0usize..4).prop_map(|(workers, ops, use_mutex, chan_cap)| {
        Shape {
            workers,
            ops,
            use_mutex,
            chan_cap,
        }
    })
}

fn synchronized_program(shape: &Shape) -> Program {
    let shape = shape.clone();
    Program::new("prop_synced", move |ctx| {
        let mu = ctx.mutex("mu");
        let total = ctx.cell("total", 0i64);
        let ch = ctx.chan::<i64>("ch", shape.chan_cap);
        let wg = ctx.waitgroup("wg");
        for w in 0..shape.workers {
            wg.add(ctx, 1);
            let (mu, total, ch, wg) = (mu.clone(), total.clone(), ch.clone(), wg.clone());
            let shape = shape.clone();
            ctx.go("worker", move |ctx| {
                for i in 0..shape.ops {
                    if shape.use_mutex {
                        mu.lock(ctx);
                        ctx.update(&total, |v| v + 1);
                        mu.unlock(ctx);
                    }
                    ch.send(ctx, i64::from(w) * 100 + i64::from(i));
                }
                wg.done(ctx);
            });
        }
        let expected = u32::from(shape.workers) * u32::from(shape.ops);
        for _ in 0..expected {
            let _ = ch.recv(ctx);
        }
        wg.wait(ctx);
        if shape.use_mutex {
            assert_eq!(ctx.read(&total), i64::from(expected as i32));
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Correctly synchronized programs finish cleanly under every strategy.
    #[test]
    fn synchronized_programs_run_clean(shape in arb_shape(), seed in 0u64..1000) {
        let p = synchronized_program(&shape);
        for strategy in [Sched::Random, Sched::RoundRobin, Sched::Pct { depth: 3 }] {
            let cfg = RunConfig::with_seed(seed).strategy(strategy);
            let (outcome, _) = Runtime::new(cfg).run(&p, grs_runtime::NullMonitor);
            prop_assert!(
                outcome.is_clean(),
                "{strategy:?}/{seed}: {:?} {:?} {:?}",
                outcome.errors, outcome.deadlock, outcome.leaked
            );
        }
    }

    /// Identical seeds replay identical event traces; the event stream is a
    /// total order with strictly increasing steps.
    #[test]
    fn traces_replay_and_steps_increase(shape in arb_shape(), seed in 0u64..1000) {
        let p = synchronized_program(&shape);
        let run = |s| {
            let (_, mon) = Runtime::new(RunConfig::with_seed(s)).run(&p, RecordingMonitor::new());
            mon.into_events()
        };
        let a = run(seed);
        let b = run(seed);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert_eq!(x.step, y.step);
            prop_assert_eq!(x.gid, y.gid);
        }
        for w in a.windows(2) {
            prop_assert!(w[0].step < w[1].step, "steps must strictly increase");
        }
    }

    /// Channel FIFO: per channel, receive seqs replay the send seqs in
    /// order, and every receive has a matching earlier send.
    #[test]
    fn channel_fifo_invariant(shape in arb_shape(), seed in 0u64..1000) {
        let p = synchronized_program(&shape);
        let (_, mon) = Runtime::new(RunConfig::with_seed(seed)).run(&p, RecordingMonitor::new());
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        let mut sent_at = std::collections::HashMap::new();
        for e in mon.events() {
            match &e.kind {
                EventKind::ChanSend { seq, .. } => {
                    sends.push(*seq);
                    sent_at.insert(*seq, e.step);
                }
                EventKind::ChanRecv { seq, .. } => {
                    recvs.push(*seq);
                    let s = sent_at.get(seq).copied();
                    prop_assert!(s.is_some(), "recv of unseen send {seq}");
                    prop_assert!(s.expect("checked") < e.step, "recv before send");
                }
                _ => {}
            }
        }
        // FIFO: both sides observe 0,1,2,... in order.
        let sorted: Vec<u64> = (0..sends.len() as u64).collect();
        prop_assert_eq!(&sends, &sorted);
        let sorted_r: Vec<u64> = (0..recvs.len() as u64).collect();
        prop_assert_eq!(&recvs, &sorted_r);
    }

    /// Lock events alternate acquire/release per lock, and the WaitGroup
    /// counter never goes negative in the event stream.
    #[test]
    fn lock_and_wg_event_invariants(shape in arb_shape(), seed in 0u64..1000) {
        let p = synchronized_program(&shape);
        let (_, mon) = Runtime::new(RunConfig::with_seed(seed)).run(&p, RecordingMonitor::new());
        let mut held: std::collections::HashMap<u64, bool> = std::collections::HashMap::new();
        for e in mon.events() {
            match &e.kind {
                EventKind::Acquire { lock, .. } => {
                    let h = held.entry(lock.0).or_insert(false);
                    prop_assert!(!*h, "double acquire without release");
                    *h = true;
                }
                EventKind::Release { lock, .. } => {
                    let h = held.entry(lock.0).or_insert(false);
                    prop_assert!(*h, "release without acquire");
                    *h = false;
                }
                EventKind::WgAdd { counter, .. } => {
                    prop_assert!(*counter >= 0, "negative WaitGroup counter");
                }
                _ => {}
            }
        }
    }

    /// Spawn events precede any event of the spawned goroutine.
    #[test]
    fn spawn_precedes_child_events(shape in arb_shape(), seed in 0u64..1000) {
        let p = synchronized_program(&shape);
        let (_, mon) = Runtime::new(RunConfig::with_seed(seed)).run(&p, RecordingMonitor::new());
        let mut spawned_at = std::collections::HashMap::new();
        spawned_at.insert(grs_runtime::Gid(0), 0u64);
        for e in mon.events() {
            if let EventKind::Spawn { child, .. } = &e.kind {
                spawned_at.insert(*child, e.step);
            }
            let born = spawned_at.get(&e.gid);
            prop_assert!(
                born.is_some_and(|&b| b <= e.step),
                "event from unspawned goroutine {}",
                e.gid
            );
        }
    }
}
