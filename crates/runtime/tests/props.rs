//! Seeded property tests for the runtime: randomly generated programs obey
//! the structural invariants no schedule may violate.
//!
//! These ran under `proptest` when the registry was reachable; they now run
//! in tier-1 on the vendored `rand` stub: shapes and seeds are drawn from a
//! fixed-seed `StdRng`, so failures are perfectly reproducible (the case
//! index pins the inputs).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use grs_runtime::event::EventKind;
use grs_runtime::{Program, RecordingMonitor, RunConfig, Runtime, Strategy as Sched};

/// A small random program shape: `workers` goroutines each performing `ops`
/// operations of a given kind, all correctly synchronized.
#[derive(Debug, Clone)]
struct Shape {
    workers: u8,
    ops: u8,
    use_mutex: bool,
    chan_cap: usize,
}

fn gen_shape(rng: &mut StdRng) -> Shape {
    Shape {
        workers: rng.gen_range(1..5u8),
        ops: rng.gen_range(1..6u8),
        use_mutex: rng.gen_bool(0.5),
        chan_cap: rng.gen_range(0..4usize),
    }
}

/// Runs `body` over `cases` shape/seed pairs from a deterministic rng.
fn check(seed: u64, cases: usize, mut body: impl FnMut(usize, Shape, u64)) {
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..cases {
        let shape = gen_shape(&mut rng);
        let run_seed = rng.gen_range(0..1000u64);
        body(case, shape, run_seed);
    }
}

fn synchronized_program(shape: &Shape) -> Program {
    let shape = shape.clone();
    Program::new("prop_synced", move |ctx| {
        let mu = ctx.mutex("mu");
        let total = ctx.cell("total", 0i64);
        let ch = ctx.chan::<i64>("ch", shape.chan_cap);
        let wg = ctx.waitgroup("wg");
        for w in 0..shape.workers {
            wg.add(ctx, 1);
            let (mu, total, ch, wg) = (mu.clone(), total.clone(), ch.clone(), wg.clone());
            let shape = shape.clone();
            ctx.go("worker", move |ctx| {
                for i in 0..shape.ops {
                    if shape.use_mutex {
                        mu.lock(ctx);
                        ctx.update(&total, |v| v + 1);
                        mu.unlock(ctx);
                    }
                    ch.send(ctx, i64::from(w) * 100 + i64::from(i));
                }
                wg.done(ctx);
            });
        }
        let expected = u32::from(shape.workers) * u32::from(shape.ops);
        for _ in 0..expected {
            let _ = ch.recv(ctx);
        }
        wg.wait(ctx);
        if shape.use_mutex {
            assert_eq!(ctx.read(&total), i64::from(expected as i32));
        }
    })
}

/// Correctly synchronized programs finish cleanly under every strategy.
#[test]
fn synchronized_programs_run_clean() {
    check(0xB1, 24, |case, shape, seed| {
        let p = synchronized_program(&shape);
        for strategy in [Sched::Random, Sched::RoundRobin, Sched::Pct { depth: 3 }] {
            let cfg = RunConfig::with_seed(seed).strategy(strategy);
            let (outcome, _) = Runtime::new(cfg).run(&p, grs_runtime::NullMonitor);
            assert!(
                outcome.is_clean(),
                "case {case} {strategy:?}/{seed}: {:?} {:?} {:?}",
                outcome.errors,
                outcome.deadlock,
                outcome.leaked
            );
        }
    });
}

/// Identical seeds replay identical event traces; the event stream is a
/// total order with strictly increasing steps.
#[test]
fn traces_replay_and_steps_increase() {
    check(0xB2, 24, |case, shape, seed| {
        let p = synchronized_program(&shape);
        let run = |s| {
            let (_, mon) = Runtime::new(RunConfig::with_seed(s)).run(&p, RecordingMonitor::new());
            mon.into_events()
        };
        let a = run(seed);
        let b = run(seed);
        assert_eq!(a.len(), b.len(), "case {case}");
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.step, y.step, "case {case}");
            assert_eq!(x.gid, y.gid, "case {case}");
        }
        for w in a.windows(2) {
            assert!(w[0].step < w[1].step, "case {case}: steps must strictly increase");
        }
    });
}

/// Channel FIFO: per channel, receive seqs replay the send seqs in order,
/// and every receive has a matching earlier send.
#[test]
fn channel_fifo_invariant() {
    check(0xB3, 24, |case, shape, seed| {
        let p = synchronized_program(&shape);
        let (_, mon) = Runtime::new(RunConfig::with_seed(seed)).run(&p, RecordingMonitor::new());
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        let mut sent_at = std::collections::HashMap::new();
        for e in mon.events() {
            match &e.kind {
                EventKind::ChanSend { seq, .. } => {
                    sends.push(*seq);
                    sent_at.insert(*seq, e.step);
                }
                EventKind::ChanRecv { seq, .. } => {
                    recvs.push(*seq);
                    let s = sent_at.get(seq).copied();
                    assert!(s.is_some(), "case {case}: recv of unseen send {seq}");
                    assert!(s.expect("checked") < e.step, "case {case}: recv before send");
                }
                _ => {}
            }
        }
        // FIFO: both sides observe 0,1,2,... in order.
        let sorted: Vec<u64> = (0..sends.len() as u64).collect();
        assert_eq!(sends, sorted, "case {case}");
        let sorted_r: Vec<u64> = (0..recvs.len() as u64).collect();
        assert_eq!(recvs, sorted_r, "case {case}");
    });
}

/// Lock events alternate acquire/release per lock, and the WaitGroup
/// counter never goes negative in the event stream.
#[test]
fn lock_and_wg_event_invariants() {
    check(0xB4, 24, |case, shape, seed| {
        let p = synchronized_program(&shape);
        let (_, mon) = Runtime::new(RunConfig::with_seed(seed)).run(&p, RecordingMonitor::new());
        let mut held: std::collections::HashMap<u64, bool> = std::collections::HashMap::new();
        for e in mon.events() {
            match &e.kind {
                EventKind::Acquire { lock, .. } => {
                    let h = held.entry(lock.0).or_insert(false);
                    assert!(!*h, "case {case}: double acquire without release");
                    *h = true;
                }
                EventKind::Release { lock, .. } => {
                    let h = held.entry(lock.0).or_insert(false);
                    assert!(*h, "case {case}: release without acquire");
                    *h = false;
                }
                EventKind::WgAdd { counter, .. } => {
                    assert!(*counter >= 0, "case {case}: negative WaitGroup counter");
                }
                _ => {}
            }
        }
    });
}

/// Trace codec round-trip: for random program shapes and seeds, recording
/// a run, encoding the trace to the `.grtrace` wire format, and decoding it
/// back yields a *structurally identical* trace — same metadata, same stack
/// depot snapshot, same event stream — and the same digest, so a decoded
/// trace replays to the same campaign digest as the live run it recorded.
#[test]
fn trace_encode_decode_round_trips_identically() {
    use grs_runtime::{record, Trace};
    check(0xB6, 24, |case, shape, seed| {
        let p = synchronized_program(&shape);
        for strategy in [Sched::Random, Sched::RoundRobin, Sched::Pct { depth: 2 }] {
            let cfg = RunConfig::with_seed(seed).strategy(strategy);
            let (outcome, trace) = record(&p, &cfg);
            assert_eq!(trace.events.len() as u64, outcome.stats.events_dispatched);
            let bytes = trace.encode();
            let decoded = Trace::decode(&bytes).unwrap_or_else(|e| {
                panic!("case {case} {strategy:?}/{seed}: decode failed: {e}")
            });
            assert_eq!(decoded, trace, "case {case} {strategy:?}/{seed}");
            assert_eq!(
                decoded.digest(),
                trace.digest(),
                "case {case} {strategy:?}/{seed}: digest must survive the codec"
            );
            // Encoding is deterministic: same trace, same bytes.
            assert_eq!(decoded.encode(), bytes, "case {case} {strategy:?}/{seed}");
            // Re-recording under the same config reproduces the same trace
            // (schedules are pure functions of seed and strategy).
            let (_, again) = record(&p, &cfg);
            assert_eq!(again.digest(), trace.digest(), "case {case} {strategy:?}/{seed}");
        }
    });
}

/// Spawn events precede any event of the spawned goroutine.
#[test]
fn spawn_precedes_child_events() {
    check(0xB5, 24, |case, shape, seed| {
        let p = synchronized_program(&shape);
        let (_, mon) = Runtime::new(RunConfig::with_seed(seed)).run(&p, RecordingMonitor::new());
        let mut spawned_at = std::collections::HashMap::new();
        spawned_at.insert(grs_runtime::Gid(0), 0u64);
        for e in mon.events() {
            if let EventKind::Spawn { child, .. } = &e.kind {
                spawned_at.insert(*child, e.step);
            }
            let born = spawned_at.get(&e.gid);
            assert!(
                born.is_some_and(|&b| b <= e.step),
                "case {case}: event from unspawned goroutine {}",
                e.gid
            );
        }
    });
}
