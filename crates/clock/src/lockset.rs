//! Eraser-style locksets.
//!
//! The lockset algorithm (Savage et al., TOCS 1997 — reference \[76\] of the
//! study) tracks, for every shared variable, the set of locks held on
//! *every* access so far. If the set ever becomes empty while more than one
//! thread has touched the variable, no single lock consistently protects it
//! and a potential race is reported. Locksets ignore happens-before, so
//! they over-approximate (flag races that ordered channel communication
//! would rule out) — which is exactly why ThreadSanitizer combines them
//! with vector clocks.

use std::fmt;

/// Identity of a lock object (mutex, rwlock) as seen by the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(u64);

impl LockId {
    /// Creates a lock identity from a raw id (typically an allocation
    /// counter in the runtime).
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        LockId(raw)
    }

    /// The raw id.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A set of locks, stored sorted for O(n) intersection.
///
/// Locksets in real programs are tiny (0–3 locks), so a sorted `Vec`
/// outperforms hash sets and keeps the type `Ord`-able for deterministic
/// reporting.
///
/// # Example
///
/// ```
/// use grs_clock::{LockId, Lockset};
///
/// let a = LockId::new(1);
/// let b = LockId::new(2);
/// let held: Lockset = [a, b].into_iter().collect();
/// let other: Lockset = [b].into_iter().collect();
/// let common = held.intersection(&other);
/// assert!(!common.is_empty());
/// assert!(common.contains(b));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lockset {
    locks: Vec<LockId>,
}

impl Lockset {
    /// Creates an empty lockset.
    #[must_use]
    pub fn new() -> Self {
        Lockset { locks: Vec::new() }
    }

    /// Inserts a lock; returns `true` if it was newly added.
    pub fn insert(&mut self, lock: LockId) -> bool {
        match self.locks.binary_search(&lock) {
            Ok(_) => false,
            Err(pos) => {
                self.locks.insert(pos, lock);
                true
            }
        }
    }

    /// Removes a lock; returns `true` if it was present.
    pub fn remove(&mut self, lock: LockId) -> bool {
        match self.locks.binary_search(&lock) {
            Ok(pos) => {
                self.locks.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// True when `lock` is a member.
    #[must_use]
    pub fn contains(&self, lock: LockId) -> bool {
        self.locks.binary_search(&lock).is_ok()
    }

    /// Number of locks held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// True when no locks are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }

    /// The set intersection — Eraser's core refinement step.
    #[must_use]
    pub fn intersection(&self, other: &Lockset) -> Lockset {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::new();
        while i < self.locks.len() && j < other.locks.len() {
            match self.locks[i].cmp(&other.locks[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.locks[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        Lockset { locks: out }
    }

    /// Intersects `other` into `self` in place.
    pub fn intersect_with(&mut self, other: &Lockset) {
        *self = self.intersection(other);
    }

    /// True when the intersection with `other` is non-empty, i.e. at least
    /// one lock consistently protects both accesses.
    #[must_use]
    pub fn shares_lock_with(&self, other: &Lockset) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.locks.len() && j < other.locks.len() {
            match self.locks[i].cmp(&other.locks[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Iterates over the member locks in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = LockId> + '_ {
        self.locks.iter().copied()
    }
}

impl FromIterator<LockId> for Lockset {
    fn from_iter<I: IntoIterator<Item = LockId>>(iter: I) -> Self {
        let mut s = Lockset::new();
        for l in iter {
            s.insert(l);
        }
        s
    }
}

impl Extend<LockId> for Lockset {
    fn extend<I: IntoIterator<Item = LockId>>(&mut self, iter: I) {
        for l in iter {
            self.insert(l);
        }
    }
}

impl fmt::Display for Lockset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, l) in self.locks.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u64) -> LockId {
        LockId::new(i)
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = Lockset::new();
        assert!(s.insert(l(2)));
        assert!(s.insert(l(1)));
        assert!(!s.insert(l(2))); // duplicate
        assert!(s.contains(l(1)));
        assert!(s.contains(l(2)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(l(1)));
        assert!(!s.remove(l(1)));
        assert!(!s.contains(l(1)));
    }

    #[test]
    fn intersection_keeps_common_locks() {
        let a: Lockset = [l(1), l(2), l(3)].into_iter().collect();
        let b: Lockset = [l(2), l(4)].into_iter().collect();
        let c = a.intersection(&b);
        assert_eq!(c.len(), 1);
        assert!(c.contains(l(2)));
        assert!(a.shares_lock_with(&b));
    }

    #[test]
    fn empty_intersection_signals_potential_race() {
        let a: Lockset = [l(1)].into_iter().collect();
        let b: Lockset = [l(2)].into_iter().collect();
        assert!(a.intersection(&b).is_empty());
        assert!(!a.shares_lock_with(&b));
        // No locks held at all — Eraser's most common racy state.
        let none = Lockset::new();
        assert!(!none.shares_lock_with(&a));
    }

    #[test]
    fn iteration_is_sorted() {
        let s: Lockset = [l(9), l(3), l(7)].into_iter().collect();
        let order: Vec<u64> = s.iter().map(LockId::raw).collect();
        assert_eq!(order, vec![3, 7, 9]);
    }

    #[test]
    fn display_formats() {
        let s: Lockset = [l(1), l(5)].into_iter().collect();
        assert_eq!(s.to_string(), "{L1,L5}");
        assert_eq!(Lockset::new().to_string(), "{}");
    }

    #[test]
    fn intersect_with_mutates_in_place() {
        let mut a: Lockset = [l(1), l(2)].into_iter().collect();
        let b: Lockset = [l(2), l(3)].into_iter().collect();
        a.intersect_with(&b);
        assert_eq!(a, [l(2)].into_iter().collect());
    }
}
