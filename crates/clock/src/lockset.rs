//! Eraser-style locksets.
//!
//! The lockset algorithm (Savage et al., TOCS 1997 — reference \[76\] of the
//! study) tracks, for every shared variable, the set of locks held on
//! *every* access so far. If the set ever becomes empty while more than one
//! thread has touched the variable, no single lock consistently protects it
//! and a potential race is reported. Locksets ignore happens-before, so
//! they over-approximate (flag races that ordered channel communication
//! would rule out) — which is exactly why ThreadSanitizer combines them
//! with vector clocks.

use std::fmt;

/// Identity of a lock object (mutex, rwlock) as seen by the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(u64);

impl LockId {
    /// Creates a lock identity from a raw id (typically an allocation
    /// counter in the runtime).
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        LockId(raw)
    }

    /// The raw id.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A set of locks, stored sorted for O(n) intersection.
///
/// Locksets in real programs are tiny (0–3 locks), so a sorted `Vec`
/// outperforms hash sets and keeps the type `Ord`-able for deterministic
/// reporting.
///
/// # Example
///
/// ```
/// use grs_clock::{LockId, Lockset};
///
/// let a = LockId::new(1);
/// let b = LockId::new(2);
/// let held: Lockset = [a, b].into_iter().collect();
/// let other: Lockset = [b].into_iter().collect();
/// let common = held.intersection(&other);
/// assert!(!common.is_empty());
/// assert!(common.contains(b));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lockset {
    locks: Vec<LockId>,
}

impl Lockset {
    /// Creates an empty lockset.
    #[must_use]
    pub fn new() -> Self {
        Lockset { locks: Vec::new() }
    }

    /// Inserts a lock; returns `true` if it was newly added.
    pub fn insert(&mut self, lock: LockId) -> bool {
        match self.locks.binary_search(&lock) {
            Ok(_) => false,
            Err(pos) => {
                self.locks.insert(pos, lock);
                true
            }
        }
    }

    /// Removes a lock; returns `true` if it was present.
    pub fn remove(&mut self, lock: LockId) -> bool {
        match self.locks.binary_search(&lock) {
            Ok(pos) => {
                self.locks.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// True when `lock` is a member.
    #[must_use]
    pub fn contains(&self, lock: LockId) -> bool {
        self.locks.binary_search(&lock).is_ok()
    }

    /// Number of locks held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// True when no locks are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }

    /// The set intersection — Eraser's core refinement step.
    #[must_use]
    pub fn intersection(&self, other: &Lockset) -> Lockset {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::new();
        while i < self.locks.len() && j < other.locks.len() {
            match self.locks[i].cmp(&other.locks[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.locks[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        Lockset { locks: out }
    }

    /// Intersects `other` into `self` in place.
    pub fn intersect_with(&mut self, other: &Lockset) {
        *self = self.intersection(other);
    }

    /// True when every member of `self` is also in `other` (in which case
    /// `self.intersection(other) == *self` — used to skip allocating the
    /// intersection on the detectors' steady-state path).
    #[must_use]
    pub fn is_subset_of(&self, other: &Lockset) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.locks.len() {
            if j >= other.locks.len() {
                return false;
            }
            match self.locks[i].cmp(&other.locks[j]) {
                std::cmp::Ordering::Less => return false,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        true
    }

    /// True when the intersection with `other` is non-empty, i.e. at least
    /// one lock consistently protects both accesses.
    #[must_use]
    pub fn shares_lock_with(&self, other: &Lockset) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.locks.len() && j < other.locks.len() {
            match self.locks[i].cmp(&other.locks[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Iterates over the member locks in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = LockId> + '_ {
        self.locks.iter().copied()
    }
}

impl FromIterator<LockId> for Lockset {
    fn from_iter<I: IntoIterator<Item = LockId>>(iter: I) -> Self {
        let mut s = Lockset::new();
        for l in iter {
            s.insert(l);
        }
        s
    }
}

impl Extend<LockId> for Lockset {
    fn extend<I: IntoIterator<Item = LockId>>(&mut self, iter: I) {
        for l in iter {
            self.insert(l);
        }
    }
}

impl fmt::Display for Lockset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, l) in self.locks.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "}}")
    }
}

/// A compact reference to a lockset interned in a [`LocksetInterner`].
///
/// `LocksetId::EMPTY` (0) always names the empty set. Detectors store this
/// `u32` in their per-access shadow state instead of cloning a `Lockset`
/// per event; the clone cost moves to acquire/release (rare) and to the
/// first time a distinct set is seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LocksetId(u32);

impl LocksetId {
    /// The empty lockset (no locks held).
    pub const EMPTY: LocksetId = LocksetId(0);

    /// The raw id.
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for LocksetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ls{}", self.0)
    }
}

/// Interns [`Lockset`]s as dense `u32` ids with memoized intersection.
///
/// Real programs hold a handful of distinct lock combinations, so the table
/// stays tiny even across long runs; ids are assigned in first-intern order
/// (deterministic for a deterministic event stream).
///
/// # Example
///
/// ```
/// use grs_clock::{LockId, Lockset, LocksetId, LocksetInterner};
///
/// let mut interner = LocksetInterner::new();
/// let ab: Lockset = [LockId::new(1), LockId::new(2)].into_iter().collect();
/// let b: Lockset = [LockId::new(2)].into_iter().collect();
/// let ab_id = interner.intern(&ab);
/// let b_id = interner.intern(&b);
/// assert_eq!(interner.intern(&ab), ab_id); // deduplicated
/// assert_eq!(interner.intersect(ab_id, b_id), b_id); // {1,2} ∩ {2} = {2}
/// ```
#[derive(Debug, Clone)]
pub struct LocksetInterner {
    /// `sets[i]` is the set with id `i`; `sets[0]` is always the empty set.
    sets: Vec<Lockset>,
    index: std::collections::HashMap<Lockset, LocksetId>,
    /// `(smaller id, larger id) → intersection id`, so the per-access
    /// refinement path is a single hash probe with no allocation.
    intersect_memo: std::collections::HashMap<(u32, u32), LocksetId>,
}

impl Default for LocksetInterner {
    fn default() -> Self {
        let mut index = std::collections::HashMap::new();
        index.insert(Lockset::new(), LocksetId::EMPTY);
        LocksetInterner {
            sets: vec![Lockset::new()],
            index,
            intersect_memo: std::collections::HashMap::new(),
        }
    }
}

impl LocksetInterner {
    /// Creates an interner holding only the empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `set`, returning the existing id when this exact set was
    /// seen before (clones only on a miss).
    pub fn intern(&mut self, set: &Lockset) -> LocksetId {
        if set.is_empty() {
            return LocksetId::EMPTY;
        }
        if let Some(&id) = self.index.get(set) {
            return id;
        }
        let id = LocksetId(self.sets.len() as u32);
        self.sets.push(set.clone());
        self.index.insert(set.clone(), id);
        id
    }

    /// The set `id` names.
    ///
    /// # Panics
    ///
    /// Panics when `id` was not issued by this interner (or predates a
    /// [`LocksetInterner::reset`]).
    #[must_use]
    pub fn get(&self, id: LocksetId) -> &Lockset {
        &self.sets[id.0 as usize]
    }

    /// The id of `a ∩ b`, memoized: the first intersection of a given pair
    /// materializes the set, every later one is a hash probe.
    pub fn intersect(&mut self, a: LocksetId, b: LocksetId) -> LocksetId {
        if a == b {
            return a;
        }
        if a == LocksetId::EMPTY || b == LocksetId::EMPTY {
            return LocksetId::EMPTY;
        }
        let key = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        if let Some(&id) = self.intersect_memo.get(&key) {
            return id;
        }
        let meet = self.sets[a.0 as usize].intersection(&self.sets[b.0 as usize]);
        let id = self.intern(&meet);
        self.intersect_memo.insert(key, id);
        id
    }

    /// True when the two sets share at least one lock (no allocation).
    #[must_use]
    pub fn shares_lock(&self, a: LocksetId, b: LocksetId) -> bool {
        self.sets[a.0 as usize].shares_lock_with(&self.sets[b.0 as usize])
    }

    /// Number of distinct interned sets (≥ 1: the empty set is always in).
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True only for a hypothetical empty interner; always `false` (the
    /// empty set is always present), provided to satisfy the `len`/
    /// `is_empty` convention.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Forgets every interned set except the empty set, keeping container
    /// allocations warm. All previously issued non-empty ids become
    /// invalid; detectors call this from their `reset()` between runs.
    pub fn reset(&mut self) {
        self.sets.truncate(1);
        self.index.retain(|set, _| set.is_empty());
        self.intersect_memo.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u64) -> LockId {
        LockId::new(i)
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = Lockset::new();
        assert!(s.insert(l(2)));
        assert!(s.insert(l(1)));
        assert!(!s.insert(l(2))); // duplicate
        assert!(s.contains(l(1)));
        assert!(s.contains(l(2)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(l(1)));
        assert!(!s.remove(l(1)));
        assert!(!s.contains(l(1)));
    }

    #[test]
    fn intersection_keeps_common_locks() {
        let a: Lockset = [l(1), l(2), l(3)].into_iter().collect();
        let b: Lockset = [l(2), l(4)].into_iter().collect();
        let c = a.intersection(&b);
        assert_eq!(c.len(), 1);
        assert!(c.contains(l(2)));
        assert!(a.shares_lock_with(&b));
    }

    #[test]
    fn empty_intersection_signals_potential_race() {
        let a: Lockset = [l(1)].into_iter().collect();
        let b: Lockset = [l(2)].into_iter().collect();
        assert!(a.intersection(&b).is_empty());
        assert!(!a.shares_lock_with(&b));
        // No locks held at all — Eraser's most common racy state.
        let none = Lockset::new();
        assert!(!none.shares_lock_with(&a));
    }

    #[test]
    fn iteration_is_sorted() {
        let s: Lockset = [l(9), l(3), l(7)].into_iter().collect();
        let order: Vec<u64> = s.iter().map(LockId::raw).collect();
        assert_eq!(order, vec![3, 7, 9]);
    }

    #[test]
    fn display_formats() {
        let s: Lockset = [l(1), l(5)].into_iter().collect();
        assert_eq!(s.to_string(), "{L1,L5}");
        assert_eq!(Lockset::new().to_string(), "{}");
    }

    #[test]
    fn intersect_with_mutates_in_place() {
        let mut a: Lockset = [l(1), l(2)].into_iter().collect();
        let b: Lockset = [l(2), l(3)].into_iter().collect();
        a.intersect_with(&b);
        assert_eq!(a, [l(2)].into_iter().collect());
    }

    #[test]
    fn subset_checks() {
        let ab: Lockset = [l(1), l(2)].into_iter().collect();
        let a: Lockset = [l(1)].into_iter().collect();
        let c: Lockset = [l(3)].into_iter().collect();
        assert!(a.is_subset_of(&ab));
        assert!(!ab.is_subset_of(&a));
        assert!(!c.is_subset_of(&ab));
        assert!(Lockset::new().is_subset_of(&a));
        assert!(ab.is_subset_of(&ab));
    }

    #[test]
    fn interner_dedups_and_intersects() {
        let mut it = LocksetInterner::new();
        assert_eq!(it.intern(&Lockset::new()), LocksetId::EMPTY);
        let ab: Lockset = [l(1), l(2)].into_iter().collect();
        let b: Lockset = [l(2)].into_iter().collect();
        let ab_id = it.intern(&ab);
        let b_id = it.intern(&b);
        assert_ne!(ab_id, b_id);
        assert_eq!(it.intern(&ab), ab_id);
        assert_eq!(it.get(ab_id), &ab);
        // Intersection is memoized and hits existing ids where possible.
        assert_eq!(it.intersect(ab_id, b_id), b_id);
        assert_eq!(it.intersect(b_id, ab_id), b_id);
        assert_eq!(it.intersect(ab_id, LocksetId::EMPTY), LocksetId::EMPTY);
        assert!(it.shares_lock(ab_id, b_id));
        // Disjoint sets meet at the empty set.
        let c: Lockset = [l(9)].into_iter().collect();
        let c_id = it.intern(&c);
        assert_eq!(it.intersect(ab_id, c_id), LocksetId::EMPTY);
        assert!(!it.shares_lock(ab_id, c_id));
    }

    #[test]
    fn interner_reset_reissues_ids_deterministically() {
        let mut it = LocksetInterner::new();
        let ab: Lockset = [l(1), l(2)].into_iter().collect();
        let first = it.intern(&ab);
        it.reset();
        assert_eq!(it.len(), 1);
        assert_eq!(it.intern(&Lockset::new()), LocksetId::EMPTY);
        let again = it.intern(&ab);
        assert_eq!(first, again);
    }
}
