//! Logical-time substrate for dynamic data-race detection.
//!
//! This crate provides the three algorithmic building blocks that
//! ThreadSanitizer-style detectors (and hence Go's built-in `-race` detector,
//! which the PLDI'22 study deploys) are composed of:
//!
//! * [`VectorClock`] — classic Mattern/Fidge vector clocks establishing the
//!   happens-before partial order between goroutines,
//! * [`Epoch`] — FastTrack's `tid@clock` compressed representation of a
//!   vector clock that is known to be maximal in one component, and
//! * [`Lockset`] — Eraser-style sets of locks held at an access.
//!
//! The types are deliberately independent of any particular runtime: thread
//! identity is a plain [`Tid`] index, lock identity a [`LockId`]. The
//! `grs-detector` crate layers the FastTrack and Eraser state machines on
//! top.
//!
//! # Example
//!
//! ```
//! use grs_clock::{Tid, VectorClock};
//!
//! let a = Tid::new(0);
//! let b = Tid::new(1);
//! let mut ca = VectorClock::new();
//! let mut cb = VectorClock::new();
//! ca.tick(a); // a: <1,0>
//! cb.tick(b); // b: <0,1>
//! assert!(!ca.happens_before(&cb));
//! assert!(!cb.happens_before(&ca)); // concurrent
//!
//! // b receives a message from a (release/acquire): b joins a's clock.
//! cb.join(&ca);
//! assert!(ca.happens_before(&cb));
//! ```

pub mod epoch;
pub mod lockset;
pub mod vc;

pub use epoch::Epoch;
pub use lockset::{LockId, Lockset, LocksetId, LocksetInterner};
pub use vc::{Tid, VectorClock};

/// Ordering between two points in logical time.
///
/// Unlike [`std::cmp::Ordering`] this is a *partial* order: two clocks can be
/// [`ClockOrder::Concurrent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClockOrder {
    /// Left strictly happens-before right.
    Before,
    /// Right strictly happens-before left.
    After,
    /// The clocks are identical.
    Equal,
    /// Neither ordering holds: the events are concurrent (a race window).
    Concurrent,
}

impl ClockOrder {
    /// True when the two points are ordered (or equal), i.e. *not* racy.
    #[must_use]
    pub fn is_ordered(self) -> bool {
        !matches!(self, ClockOrder::Concurrent)
    }
}
