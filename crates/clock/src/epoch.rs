//! FastTrack epochs: a `tid@clock` pair standing in for a full vector clock.
//!
//! FastTrack (Flanagan & Freund, PLDI 2009 — reference \[44\] of the study)
//! observes that the vast majority of variables are accessed by one thread
//! at a time, in which case the access history is totally ordered and can be
//! summarized by its maximal element: a single `(tid, clock)` pair. Only
//! when concurrent reads are observed does the detector inflate the read
//! history back into a full [`VectorClock`].

use std::fmt;

use crate::vc::{Tid, VectorClock};

/// A FastTrack epoch `c@t`: logical time `c` of goroutine `t`.
///
/// # Example
///
/// ```
/// use grs_clock::{Epoch, Tid, VectorClock};
///
/// let t0 = Tid::new(0);
/// let e = Epoch::new(t0, 3);
/// let mut now = VectorClock::new();
/// now.set(t0, 5);
/// assert!(e.le_clock(&now)); // 3 <= now[t0]
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Epoch {
    tid: Tid,
    clock: u32,
}

impl Epoch {
    /// The zero epoch `0@g0`, ordered before everything.
    pub const ZERO: Epoch = Epoch {
        tid: Tid::new(0),
        clock: 0,
    };

    /// Creates an epoch for logical time `clock` of goroutine `tid`.
    #[must_use]
    pub const fn new(tid: Tid, clock: u32) -> Self {
        Epoch { tid, clock }
    }

    /// The epoch summarizing `tid`'s current position in `clock`.
    #[must_use]
    pub fn of(tid: Tid, clock: &VectorClock) -> Self {
        Epoch::new(tid, clock.get(tid))
    }

    /// The goroutine component of the epoch.
    #[must_use]
    pub fn tid(self) -> Tid {
        self.tid
    }

    /// The logical-time component of the epoch.
    #[must_use]
    pub fn clock(self) -> u32 {
        self.clock
    }

    /// True for the zero epoch (no access recorded yet).
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.clock == 0
    }

    /// FastTrack's `e ⊑ C` test: does the event summarized by this epoch
    /// happen before (or equal) the point described by `clock`?
    ///
    /// This is the O(1) fast path replacing a full vector-clock comparison:
    /// `c@t ⊑ C  ⇔  c <= C[t]`.
    #[must_use]
    pub fn le_clock(self, clock: &VectorClock) -> bool {
        self.clock <= clock.get(self.tid)
    }

    /// Expands the epoch into the minimal vector clock containing it.
    #[must_use]
    pub fn to_clock(self) -> VectorClock {
        let mut c = VectorClock::new();
        c.set(self.tid, self.clock);
        c
    }
}

impl Default for Epoch {
    fn default() -> Self {
        Epoch::ZERO
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.clock, self.tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> Tid {
        Tid::new(i)
    }

    #[test]
    fn zero_epoch_precedes_everything() {
        let c = VectorClock::new();
        assert!(Epoch::ZERO.le_clock(&c));
        assert!(Epoch::ZERO.is_zero());
        let mut c2 = VectorClock::new();
        c2.tick(t(5));
        assert!(Epoch::ZERO.le_clock(&c2));
    }

    #[test]
    fn le_clock_matches_vc_comparison() {
        let e = Epoch::new(t(1), 4);
        let mut before = VectorClock::new();
        before.set(t(1), 3);
        let mut after = VectorClock::new();
        after.set(t(1), 4);
        assert!(!e.le_clock(&before));
        assert!(e.le_clock(&after));
        // Equivalent full-VC comparison agrees:
        assert!(!e.to_clock().le(&before));
        assert!(e.to_clock().le(&after));
    }

    #[test]
    fn of_reads_the_owner_component() {
        let mut c = VectorClock::new();
        c.set(t(2), 9);
        c.set(t(0), 1);
        let e = Epoch::of(t(2), &c);
        assert_eq!(e.tid(), t(2));
        assert_eq!(e.clock(), 9);
    }

    #[test]
    fn display_is_clock_at_tid() {
        assert_eq!(Epoch::new(t(3), 7).to_string(), "7@g3");
    }
}
