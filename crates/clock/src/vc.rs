//! Vector clocks over a dense, growable index space of goroutines.

use std::fmt;
use std::ops::Index;

use crate::ClockOrder;

/// Identity of a goroutine (or OS thread) in logical-clock space.
///
/// `Tid` is a dense index: the detector assigns `0, 1, 2, ...` in spawn
/// order, which keeps [`VectorClock`] a flat vector rather than a map.
///
/// # Example
///
/// ```
/// use grs_clock::Tid;
/// let t = Tid::new(3);
/// assert_eq!(t.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tid(u32);

impl Tid {
    /// Creates a `Tid` from a dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Tid(index)
    }

    /// The dense index of this goroutine.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` value.
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl From<u32> for Tid {
    fn from(v: u32) -> Self {
        Tid(v)
    }
}

/// How many components live inline before the clock spills to the heap.
/// The study's patterns run a handful of goroutines, so nearly every clock
/// in a campaign stays inline (zero heap allocations on the detector's
/// per-access path).
const INLINE_SLOTS: usize = 8;

/// Small-vector storage for clock components.
///
/// Invariant: in the `Inline` form, `buf[len..]` is always zero, so reads
/// past `len` need no masking and growing inline is just raising `len`.
#[derive(Debug)]
enum Slots {
    Inline { len: u8, buf: [u32; INLINE_SLOTS] },
    Heap(Vec<u32>),
}

impl Clone for Slots {
    fn clone(&self) -> Self {
        match self {
            Slots::Inline { len, buf } => Slots::Inline {
                len: *len,
                buf: *buf,
            },
            Slots::Heap(v) => Slots::Heap(v.clone()),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        // Keep an existing heap allocation instead of reallocating — this is
        // what makes `VectorClock::clone_from` free for recycled clocks.
        if let Slots::Heap(dst) = self {
            dst.clear();
            dst.extend_from_slice(source.as_slice());
        } else {
            *self = source.clone();
        }
    }
}

impl Slots {
    fn as_slice(&self) -> &[u32] {
        match self {
            Slots::Inline { len, buf } => &buf[..*len as usize],
            Slots::Heap(v) => v,
        }
    }

    fn as_mut_slice(&mut self) -> &mut [u32] {
        match self {
            Slots::Inline { len, buf } => &mut buf[..*len as usize],
            Slots::Heap(v) => v,
        }
    }

    /// Grows to at least `n` zero-filled components.
    fn grow_to(&mut self, n: usize) {
        match self {
            Slots::Inline { len, buf } => {
                if n <= INLINE_SLOTS {
                    if n > *len as usize {
                        *len = n as u8;
                    }
                } else {
                    let mut v = Vec::with_capacity(n.max(2 * INLINE_SLOTS));
                    v.extend_from_slice(&buf[..*len as usize]);
                    v.resize(n, 0);
                    *self = Slots::Heap(v);
                }
            }
            Slots::Heap(v) => {
                if n > v.len() {
                    v.resize(n, 0);
                }
            }
        }
    }

    /// Zeroes the clock in place, keeping a heap allocation if one exists.
    fn clear(&mut self) {
        match self {
            Slots::Inline { len, buf } => {
                buf[..*len as usize].fill(0);
                *len = 0;
            }
            Slots::Heap(v) => v.clear(),
        }
    }
}

impl Default for Slots {
    fn default() -> Self {
        Slots::Inline {
            len: 0,
            buf: [0; INLINE_SLOTS],
        }
    }
}

/// A Mattern/Fidge vector clock.
///
/// Component `i` holds the most recent logical time of goroutine `i` that
/// the owner of the clock has synchronized with. Missing trailing components
/// are implicitly zero, so clocks over different numbers of goroutines
/// compare correctly.
///
/// The happens-before relation of the Go memory model is tracked by joining
/// clocks at synchronization events (channel send→receive, mutex
/// unlock→lock, `WaitGroup` done→wait, goroutine spawn and join).
///
/// Storage is a small-vector: up to [`INLINE_SLOTS`] components live inline
/// (no heap allocation), and [`VectorClock::clear`] / `clone_from` recycle
/// existing allocations so detectors can reuse clocks across runs.
/// Equality and hashing are over the stored component slice, exactly as if
/// the components were a `Vec<u32>` (trailing explicit zeros participate).
///
/// # Example
///
/// ```
/// use grs_clock::{Tid, VectorClock};
/// let mut c = VectorClock::new();
/// c.tick(Tid::new(2));
/// assert_eq!(c.get(Tid::new(2)), 1);
/// assert_eq!(c.get(Tid::new(7)), 0); // implicit zero
/// ```
#[derive(Debug, Default, Clone)]
pub struct VectorClock {
    slots: Slots,
}

impl PartialEq for VectorClock {
    fn eq(&self, other: &Self) -> bool {
        self.slots.as_slice() == other.slots.as_slice()
    }
}

impl Eq for VectorClock {}

impl std::hash::Hash for VectorClock {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.slots.as_slice().hash(state);
    }
}

impl VectorClock {
    /// Creates the zero clock (no events observed).
    #[must_use]
    pub fn new() -> Self {
        VectorClock::default()
    }

    /// Creates a clock with room for `n` components. Up to [`INLINE_SLOTS`]
    /// components need no heap storage regardless of `n`.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        if n <= INLINE_SLOTS {
            VectorClock::default()
        } else {
            VectorClock {
                slots: Slots::Heap(Vec::with_capacity(n)),
            }
        }
    }

    /// The component for `tid` (zero if never observed).
    #[must_use]
    pub fn get(&self, tid: Tid) -> u32 {
        self.slots.as_slice().get(tid.index()).copied().unwrap_or(0)
    }

    /// Sets the component for `tid`, growing the clock as needed.
    pub fn set(&mut self, tid: Tid, value: u32) {
        let i = tid.index();
        self.slots.grow_to(i + 1);
        self.slots.as_mut_slice()[i] = value;
    }

    /// Zeroes every component in place, keeping the heap allocation (if the
    /// clock ever spilled) so the clock can be recycled without
    /// reallocating.
    pub fn clear(&mut self) {
        self.slots.clear();
    }

    /// Increments the component for `tid` and returns the new value.
    ///
    /// This is the local-step rule: a goroutine ticks its own component at
    /// each release operation.
    pub fn tick(&mut self, tid: Tid) -> u32 {
        let v = self.get(tid) + 1;
        self.set(tid, v);
        v
    }

    /// Joins `other` into `self`: the component-wise maximum.
    ///
    /// This is the acquire rule: after `a.join(&b)`, everything ordered
    /// before `b` is ordered before subsequent events of `a`'s owner.
    pub fn join(&mut self, other: &VectorClock) {
        let olen = other.slots.as_slice().len();
        self.slots.grow_to(olen);
        for (s, &o) in self
            .slots
            .as_mut_slice()
            .iter_mut()
            .zip(other.slots.as_slice().iter())
        {
            if o > *s {
                *s = o;
            }
        }
    }

    /// Returns the component-wise maximum of two clocks without mutating
    /// either.
    #[must_use]
    pub fn joined(&self, other: &VectorClock) -> VectorClock {
        let mut r = self.clone();
        r.join(other);
        r
    }

    /// True when every component of `self` is `<=` the corresponding
    /// component of `other` (reflexive happens-before: `self ⊑ other`).
    #[must_use]
    pub fn le(&self, other: &VectorClock) -> bool {
        let o = other.slots.as_slice();
        for (i, &s) in self.slots.as_slice().iter().enumerate() {
            if s > o.get(i).copied().unwrap_or(0) {
                return false;
            }
        }
        true
    }

    /// True when `self` strictly happens-before `other`.
    #[must_use]
    pub fn happens_before(&self, other: &VectorClock) -> bool {
        self.le(other) && self != other
    }

    /// True when neither clock happens-before the other and they differ.
    #[must_use]
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        self.order(other) == ClockOrder::Concurrent
    }

    /// Classifies the relation between two clocks.
    #[must_use]
    pub fn order(&self, other: &VectorClock) -> ClockOrder {
        let le = self.le(other);
        let ge = other.le(self);
        match (le, ge) {
            (true, true) => ClockOrder::Equal,
            (true, false) => ClockOrder::Before,
            (false, true) => ClockOrder::After,
            (false, false) => ClockOrder::Concurrent,
        }
    }

    /// Number of explicitly stored components (trailing zeros may be
    /// omitted).
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.as_slice().len()
    }

    /// True when no component has ever been set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.as_slice().iter().all(|&v| v == 0)
    }

    /// Iterates over `(Tid, value)` pairs with non-zero values.
    pub fn iter(&self) -> impl Iterator<Item = (Tid, u32)> + '_ {
        self.slots
            .as_slice()
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v != 0)
            .map(|(i, &v)| (Tid::new(i as u32), v))
    }
}

impl Index<Tid> for VectorClock {
    type Output = u32;

    fn index(&self, tid: Tid) -> &u32 {
        self.slots.as_slice().get(tid.index()).unwrap_or(&0)
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, v) in self.slots.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ">")
    }
}

impl FromIterator<(Tid, u32)> for VectorClock {
    fn from_iter<I: IntoIterator<Item = (Tid, u32)>>(iter: I) -> Self {
        let mut c = VectorClock::new();
        for (t, v) in iter {
            c.set(t, v);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> Tid {
        Tid::new(i)
    }

    #[test]
    fn zero_clock_is_le_everything() {
        let z = VectorClock::new();
        let mut c = VectorClock::new();
        c.tick(t(0));
        assert!(z.le(&c));
        assert!(z.le(&z));
        assert!(z.happens_before(&c));
        assert!(!c.happens_before(&z));
    }

    #[test]
    fn tick_increments() {
        let mut c = VectorClock::new();
        assert_eq!(c.tick(t(3)), 1);
        assert_eq!(c.tick(t(3)), 2);
        assert_eq!(c.get(t(3)), 2);
        assert_eq!(c.get(t(0)), 0);
    }

    #[test]
    fn join_is_componentwise_max() {
        let mut a = VectorClock::new();
        a.set(t(0), 5);
        a.set(t(1), 1);
        let mut b = VectorClock::new();
        b.set(t(0), 2);
        b.set(t(2), 7);
        a.join(&b);
        assert_eq!(a.get(t(0)), 5);
        assert_eq!(a.get(t(1)), 1);
        assert_eq!(a.get(t(2)), 7);
    }

    #[test]
    fn concurrent_detection() {
        let mut a = VectorClock::new();
        let mut b = VectorClock::new();
        a.tick(t(0));
        b.tick(t(1));
        assert_eq!(a.order(&b), ClockOrder::Concurrent);
        assert!(a.concurrent_with(&b));
        b.join(&a);
        assert_eq!(a.order(&b), ClockOrder::Before);
        assert_eq!(b.order(&a), ClockOrder::After);
    }

    #[test]
    fn equality_ignores_trailing_zeros() {
        let mut a = VectorClock::new();
        a.set(t(0), 1);
        let mut b = VectorClock::new();
        b.set(t(0), 1);
        b.set(t(5), 0);
        // Structural equality differs, but ordering treats them the same.
        assert_eq!(a.order(&b), ClockOrder::Equal);
        assert!(a.le(&b) && b.le(&a));
    }

    #[test]
    fn display_formats() {
        let mut c = VectorClock::new();
        c.set(t(0), 1);
        c.set(t(2), 3);
        assert_eq!(c.to_string(), "<1,0,3>");
        assert_eq!(t(4).to_string(), "g4");
    }

    #[test]
    fn from_iterator_collects() {
        let c: VectorClock = vec![(t(1), 4), (t(3), 2)].into_iter().collect();
        assert_eq!(c.get(t(1)), 4);
        assert_eq!(c.get(t(3)), 2);
        assert_eq!(c.iter().count(), 2);
    }

    #[test]
    fn index_operator() {
        let mut c = VectorClock::new();
        c.set(t(1), 9);
        assert_eq!(c[t(1)], 9);
        assert_eq!(c[t(42)], 0);
    }

    #[test]
    fn spills_to_heap_past_inline_capacity() {
        let mut c = VectorClock::new();
        for i in 0..20 {
            c.set(t(i), i + 1);
        }
        assert_eq!(c.len(), 20);
        for i in 0..20 {
            assert_eq!(c.get(t(i)), i + 1);
        }
        // Semantics are identical on either side of the spill boundary.
        let mut inline = VectorClock::new();
        inline.set(t(3), 5);
        let mut spilled = VectorClock::new();
        spilled.set(t(15), 1);
        spilled.set(t(3), 5);
        assert!(inline.le(&spilled));
    }

    #[test]
    fn clear_recycles_in_place() {
        let mut c = VectorClock::new();
        for i in 0..12 {
            c.set(t(i), 7);
        }
        c.clear();
        assert_eq!(c.len(), 0);
        assert!(c.is_empty());
        assert_eq!(c, VectorClock::new());
        c.set(t(0), 1);
        assert_eq!(c.get(t(0)), 1);
        assert_eq!(c.get(t(11)), 0);
    }

    #[test]
    fn equality_and_hash_match_slice_semantics() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut a = VectorClock::new();
        a.set(t(9), 3); // spilled
        let mut b = VectorClock::new();
        b.set(t(9), 3); // built the same way, stays comparable
        assert_eq!(a, b);
        let hash = |c: &VectorClock| {
            let mut h = DefaultHasher::new();
            c.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
        // clone_from reuses the destination's heap buffer.
        let mut dst = VectorClock::new();
        dst.set(t(20), 1);
        dst.clone_from(&a);
        assert_eq!(dst, a);
    }
}
