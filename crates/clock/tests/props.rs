//! Seeded property tests for the logical-clock lattice and lockset algebra.
//!
//! These ran under `proptest` when the registry was reachable; they now run
//! in tier-1 on the vendored `rand` stub: each property is checked over a
//! few hundred cases drawn from a fixed-seed `StdRng`, so failures are
//! perfectly reproducible (the case index pins the inputs).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use grs_clock::{ClockOrder, Epoch, LockId, Lockset, Tid, VectorClock};

const CASES: usize = 400;

fn gen_clock(rng: &mut StdRng) -> VectorClock {
    let n = rng.gen_range(0..8usize);
    (0..n)
        .map(|i| (Tid::new(i as u32), rng.gen_range(0..50u32)))
        .collect()
}

fn gen_lockset(rng: &mut StdRng) -> Lockset {
    let n = rng.gen_range(0..6usize);
    (0..n).map(|_| LockId::new(rng.gen_range(0..12u64))).collect()
}

/// Runs `body` over `CASES` cases from a per-property deterministic rng.
fn check(seed: u64, mut body: impl FnMut(usize, &mut StdRng)) {
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..CASES {
        body(case, &mut rng);
    }
}

#[test]
fn join_is_commutative() {
    check(0xC0, |case, rng| {
        let (a, b) = (gen_clock(rng), gen_clock(rng));
        let ab = a.joined(&b);
        let ba = b.joined(&a);
        assert_eq!(ab.order(&ba), ClockOrder::Equal, "case {case}");
    });
}

#[test]
fn join_is_associative() {
    check(0xA5, |case, rng| {
        let (a, b, c) = (gen_clock(rng), gen_clock(rng), gen_clock(rng));
        let left = a.joined(&b).joined(&c);
        let right = a.joined(&b.joined(&c));
        assert_eq!(left.order(&right), ClockOrder::Equal, "case {case}");
    });
}

#[test]
fn join_is_idempotent() {
    check(0x1D, |case, rng| {
        let a = gen_clock(rng);
        assert_eq!(a.joined(&a).order(&a), ClockOrder::Equal, "case {case}");
    });
}

#[test]
fn join_is_upper_bound() {
    check(0x0B, |case, rng| {
        let (a, b) = (gen_clock(rng), gen_clock(rng));
        let j = a.joined(&b);
        assert!(a.le(&j) && b.le(&j), "case {case}");
    });
}

#[test]
fn join_is_monotone_in_both_arguments() {
    check(0x40, |case, rng| {
        let (a, b, c) = (gen_clock(rng), gen_clock(rng), gen_clock(rng));
        // a <= a' implies a.join(c) <= a'.join(c); a' := a.join(b) >= a.
        let bigger = a.joined(&b);
        assert!(a.joined(&c).le(&bigger.joined(&c)), "case {case}");
    });
}

#[test]
fn le_is_antisymmetric_up_to_order() {
    check(0xA2, |case, rng| {
        let (a, b) = (gen_clock(rng), gen_clock(rng));
        if a.le(&b) && b.le(&a) {
            assert_eq!(a.order(&b), ClockOrder::Equal, "case {case}");
        }
    });
}

#[test]
fn le_is_transitive() {
    check(0x7A, |case, rng| {
        let (a, b) = (gen_clock(rng), gen_clock(rng));
        // Random triples rarely chain, so construct b <= c via join.
        let c = b.joined(&gen_clock(rng));
        if a.le(&b) {
            assert!(a.le(&c), "case {case}");
        }
    });
}

#[test]
fn order_is_consistent_with_le() {
    check(0x0C, |case, rng| {
        let (a, b) = (gen_clock(rng), gen_clock(rng));
        match a.order(&b) {
            ClockOrder::Before => assert!(a.le(&b) && !b.le(&a), "case {case}"),
            ClockOrder::After => assert!(b.le(&a) && !a.le(&b), "case {case}"),
            ClockOrder::Equal => assert!(a.le(&b) && b.le(&a), "case {case}"),
            ClockOrder::Concurrent => assert!(!a.le(&b) && !b.le(&a), "case {case}"),
        }
    });
}

#[test]
fn tick_strictly_advances() {
    check(0x71, |case, rng| {
        let a = gen_clock(rng);
        let t = rng.gen_range(0..8u32);
        let mut after = a.clone();
        after.tick(Tid::new(t));
        assert!(a.happens_before(&after), "case {case}");
    });
}

/// FastTrack's O(1) epoch test must agree with the full VC comparison.
#[test]
fn epoch_fast_path_equals_vc_comparison() {
    check(0xE9, |case, rng| {
        let a = gen_clock(rng);
        let e = Epoch::new(Tid::new(rng.gen_range(0..8u32)), rng.gen_range(0..60u32));
        assert_eq!(e.le_clock(&a), e.to_clock().le(&a), "case {case}");
    });
}

#[test]
fn epoch_ordering_matches_clock_values() {
    check(0xE0, |case, rng| {
        let t = Tid::new(rng.gen_range(0..8u32));
        let (c1, c2) = (rng.gen_range(0..60u32), rng.gen_range(0..60u32));
        let (e1, e2) = (Epoch::new(t, c1), Epoch::new(t, c2));
        // Same-tid epochs are totally ordered by their clock component.
        assert_eq!(
            e1.to_clock().le(&e2.to_clock()),
            c1 <= c2,
            "case {case}"
        );
    });
}

#[test]
fn lockset_intersection_commutative() {
    check(0x11, |case, rng| {
        let (a, b) = (gen_lockset(rng), gen_lockset(rng));
        assert_eq!(a.intersection(&b), b.intersection(&a), "case {case}");
    });
}

#[test]
fn lockset_intersection_is_subset() {
    check(0x15, |case, rng| {
        let (a, b) = (gen_lockset(rng), gen_lockset(rng));
        let i = a.intersection(&b);
        for l in i.iter() {
            assert!(a.contains(l) && b.contains(l), "case {case}");
        }
        assert!(i.len() <= a.len().min(b.len()), "case {case}");
    });
}

/// Eraser's refinement loop only ever shrinks the candidate set.
#[test]
fn repeated_intersection_monotonically_shrinks() {
    check(0x55, |case, rng| {
        let k = rng.gen_range(1..6usize);
        let sets: Vec<Lockset> = (0..k).map(|_| gen_lockset(rng)).collect();
        let mut candidate = sets[0].clone();
        let mut prev_len = candidate.len();
        for s in &sets[1..] {
            candidate.intersect_with(s);
            assert!(candidate.len() <= prev_len, "case {case}");
            prev_len = candidate.len();
        }
    });
}

#[test]
fn shares_lock_agrees_with_intersection() {
    check(0x5A, |case, rng| {
        let (a, b) = (gen_lockset(rng), gen_lockset(rng));
        assert_eq!(
            a.shares_lock_with(&b),
            !a.intersection(&b).is_empty(),
            "case {case}"
        );
    });
}
