//! Property tests for the logical-clock lattice and lockset algebra.


// Gated behind the `props` feature: proptest is an external crate and
// the tier-1 build must succeed without registry access (restore the
// dev-dependency to run these).
#![cfg(feature = "props")]

use grs_clock::{ClockOrder, Epoch, LockId, Lockset, Tid, VectorClock};
use proptest::prelude::*;

fn arb_clock() -> impl Strategy<Value = VectorClock> {
    prop::collection::vec(0u32..50, 0..8).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, c)| (Tid::new(i as u32), c))
            .collect()
    })
}

fn arb_lockset() -> impl Strategy<Value = Lockset> {
    prop::collection::vec(0u64..12, 0..6)
        .prop_map(|v| v.into_iter().map(LockId::new).collect())
}

proptest! {
    #[test]
    fn join_is_commutative(a in arb_clock(), b in arb_clock()) {
        let ab = a.joined(&b);
        let ba = b.joined(&a);
        prop_assert_eq!(ab.order(&ba), ClockOrder::Equal);
    }

    #[test]
    fn join_is_associative(a in arb_clock(), b in arb_clock(), c in arb_clock()) {
        let left = a.joined(&b).joined(&c);
        let right = a.joined(&b.joined(&c));
        prop_assert_eq!(left.order(&right), ClockOrder::Equal);
    }

    #[test]
    fn join_is_idempotent(a in arb_clock()) {
        prop_assert_eq!(a.joined(&a).order(&a), ClockOrder::Equal);
    }

    #[test]
    fn join_is_upper_bound(a in arb_clock(), b in arb_clock()) {
        let j = a.joined(&b);
        prop_assert!(a.le(&j));
        prop_assert!(b.le(&j));
    }

    #[test]
    fn le_is_antisymmetric_up_to_order(a in arb_clock(), b in arb_clock()) {
        if a.le(&b) && b.le(&a) {
            prop_assert_eq!(a.order(&b), ClockOrder::Equal);
        }
    }

    #[test]
    fn le_is_transitive(a in arb_clock(), b in arb_clock(), c in arb_clock()) {
        if a.le(&b) && b.le(&c) {
            prop_assert!(a.le(&c));
        }
    }

    #[test]
    fn order_is_consistent_with_le(a in arb_clock(), b in arb_clock()) {
        match a.order(&b) {
            ClockOrder::Before => prop_assert!(a.le(&b) && !b.le(&a)),
            ClockOrder::After => prop_assert!(b.le(&a) && !a.le(&b)),
            ClockOrder::Equal => prop_assert!(a.le(&b) && b.le(&a)),
            ClockOrder::Concurrent => prop_assert!(!a.le(&b) && !b.le(&a)),
        }
    }

    #[test]
    fn tick_strictly_advances(a in arb_clock(), t in 0u32..8) {
        let mut after = a.clone();
        after.tick(Tid::new(t));
        prop_assert!(a.happens_before(&after));
    }

    /// FastTrack's O(1) epoch test must agree with the full VC comparison.
    #[test]
    fn epoch_fast_path_equals_vc_comparison(
        a in arb_clock(), t in 0u32..8, c in 0u32..60,
    ) {
        let e = Epoch::new(Tid::new(t), c);
        prop_assert_eq!(e.le_clock(&a), e.to_clock().le(&a));
    }

    #[test]
    fn lockset_intersection_commutative(a in arb_lockset(), b in arb_lockset()) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
    }

    #[test]
    fn lockset_intersection_is_subset(a in arb_lockset(), b in arb_lockset()) {
        let i = a.intersection(&b);
        for l in i.iter() {
            prop_assert!(a.contains(l) && b.contains(l));
        }
        prop_assert!(i.len() <= a.len().min(b.len()));
    }

    /// Eraser's refinement loop only ever shrinks the candidate set.
    #[test]
    fn repeated_intersection_monotonically_shrinks(
        sets in prop::collection::vec(arb_lockset(), 1..6),
    ) {
        let mut candidate = sets[0].clone();
        let mut prev_len = candidate.len();
        for s in &sets[1..] {
            candidate.intersect_with(s);
            prop_assert!(candidate.len() <= prev_len);
            prev_len = candidate.len();
        }
    }

    #[test]
    fn shares_lock_agrees_with_intersection(a in arb_lockset(), b in arb_lockset()) {
        prop_assert_eq!(a.shares_lock_with(&b), !a.intersection(&b).is_empty());
    }
}
