//! Seeded property tests for the detectors.
//!
//! The strongest guarantee a happens-before detector offers is *no false
//! positives under the observed schedule*: a program whose accesses are all
//! ordered by synchronization must never be flagged, for any shape, seed,
//! or strategy. Conversely, removing the synchronization from the same
//! shape must eventually be caught.
//!
//! These ran under `proptest` when the registry was reachable; they now run
//! in tier-1 on the vendored `rand` stub: shapes and seeds are drawn from a
//! fixed-seed `StdRng`, so failures are perfectly reproducible (the case
//! index pins the inputs).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use grs_detector::{Eraser, FastTrack, FastTrackConfig, Tsan};
use grs_runtime::{Program, RunConfig, Runtime, Strategy as Sched};

#[derive(Debug, Clone)]
struct Shape {
    workers: u8,
    ops: u8,
    sync: SyncKind,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum SyncKind {
    Mutex,
    Channel,
    WaitGroupPublish,
    Atomic,
}

const SYNC_KINDS: [SyncKind; 4] = [
    SyncKind::Mutex,
    SyncKind::Channel,
    SyncKind::WaitGroupPublish,
    SyncKind::Atomic,
];

fn gen_shape(rng: &mut StdRng) -> Shape {
    Shape {
        workers: rng.gen_range(1..4u8),
        ops: rng.gen_range(1..4u8),
        sync: SYNC_KINDS[rng.gen_range(0..SYNC_KINDS.len())],
    }
}

/// A fully synchronized program of the given shape.
fn synced(shape: &Shape) -> Program {
    let shape = shape.clone();
    Program::new("prop_synced", move |ctx| match shape.sync {
        SyncKind::Mutex => {
            let mu = ctx.mutex("mu");
            let x = ctx.cell("x", 0i64);
            let wg = ctx.waitgroup("wg");
            for _ in 0..shape.workers {
                wg.add(ctx, 1);
                let (mu, x, wg) = (mu.clone(), x.clone(), wg.clone());
                let ops = shape.ops;
                ctx.go("w", move |ctx| {
                    for _ in 0..ops {
                        mu.lock(ctx);
                        ctx.update(&x, |v| v + 1);
                        mu.unlock(ctx);
                    }
                    wg.done(ctx);
                });
            }
            wg.wait(ctx);
            mu.lock(ctx);
            let _ = ctx.read(&x);
            mu.unlock(ctx);
        }
        SyncKind::Channel => {
            // Ownership transfer: each worker writes a private cell, then
            // sends it; main reads after receiving.
            let ch = ctx.chan::<grs_runtime::Cell<i64>>("ch", 0);
            for w in 0..shape.workers {
                let ch = ch.clone();
                let ops = shape.ops;
                ctx.go("w", move |ctx| {
                    let mine = ctx.cell("mine", 0i64);
                    for _ in 0..ops {
                        ctx.update(&mine, |v| v + i64::from(w));
                    }
                    ch.send(ctx, mine);
                });
            }
            for _ in 0..shape.workers {
                if let Some(cell) = ch.recv(ctx).value() {
                    let _ = ctx.read(&cell);
                }
            }
        }
        SyncKind::WaitGroupPublish => {
            let wg = ctx.waitgroup("wg");
            let mut cells = Vec::new();
            for w in 0..shape.workers {
                wg.add(ctx, 1);
                let cell = ctx.cell("slot", 0i64);
                cells.push(cell.clone());
                let wg = wg.clone();
                let ops = shape.ops;
                ctx.go("w", move |ctx| {
                    for _ in 0..ops {
                        ctx.update(&cell, |v| v + i64::from(w));
                    }
                    wg.done(ctx);
                });
            }
            wg.wait(ctx);
            for c in &cells {
                let _ = ctx.read(c);
            }
        }
        SyncKind::Atomic => {
            let a = ctx.atomic("a", 0);
            let done = ctx.chan::<()>("done", usize::from(shape.workers));
            for _ in 0..shape.workers {
                let (a, done) = (a.clone(), done.clone());
                let ops = shape.ops;
                ctx.go("w", move |ctx| {
                    for _ in 0..ops {
                        a.add(ctx, 1);
                    }
                    done.send(ctx, ());
                });
            }
            for _ in 0..shape.workers {
                let _ = done.recv(ctx);
            }
            let _ = a.load(ctx);
        }
    })
}

/// The same shape with its synchronization removed.
fn unsynced(shape: &Shape) -> Program {
    let shape = shape.clone();
    Program::new("prop_unsynced", move |ctx| {
        let x = ctx.cell("x", 0i64);
        let done = ctx.chan::<()>("done", usize::from(shape.workers));
        for _ in 0..shape.workers {
            let (x, done) = (x.clone(), done.clone());
            let ops = shape.ops;
            ctx.go("w", move |ctx| {
                for _ in 0..ops {
                    ctx.update(&x, |v| v + 1); // no lock
                }
                done.send(ctx, ());
            });
        }
        for _ in 0..shape.workers {
            let _ = done.recv(ctx);
        }
        let _ = ctx.read(&x);
    })
}

/// HB detectors never flag synchronized programs — any shape, seed, or
/// strategy, epochs or pure vector clocks.
#[test]
fn no_false_positives_on_synced_shapes() {
    let mut rng = StdRng::seed_from_u64(0xD1);
    for case in 0..20 {
        let shape = gen_shape(&mut rng);
        let seed = rng.gen_range(0..500u64);
        let p = synced(&shape);
        for strategy in [Sched::Random, Sched::Pct { depth: 3 }] {
            let cfg = RunConfig::with_seed(seed).strategy(strategy);
            let (_, tsan) = Runtime::new(cfg.clone()).run(&p, Tsan::new());
            assert!(
                tsan.reports().is_empty(),
                "case {case}: tsan false positive on {shape:?}: {}",
                tsan.reports()[0]
            );
            let (_, vc) =
                Runtime::new(cfg).run(&p, FastTrack::with_config(FastTrackConfig::pure_vc()));
            assert!(vc.reports().is_empty(), "case {case}: pure-vc false positive");
        }
    }
}

/// Multi-worker unsynchronized shapes are caught within a seed budget.
#[test]
fn unsynced_shapes_are_caught() {
    let mut rng = StdRng::seed_from_u64(0xD2);
    let mut checked = 0;
    while checked < 10 {
        let shape = gen_shape(&mut rng);
        if shape.workers < 2 {
            continue;
        }
        checked += 1;
        let p = unsynced(&shape);
        let mut found = false;
        for seed in 0..40 {
            let (_, tsan) = Runtime::new(RunConfig::with_seed(seed)).run(&p, Tsan::new());
            if !tsan.reports().is_empty() {
                found = true;
                break;
            }
        }
        assert!(found, "no seed caught {shape:?}");
    }
}

/// Epoch and pure-VC FastTrack agree on every run.
#[test]
fn epoch_and_pure_vc_verdicts_agree() {
    let mut rng = StdRng::seed_from_u64(0xD3);
    for case in 0..15 {
        let shape = gen_shape(&mut rng);
        let seed = rng.gen_range(0..200u64);
        for p in [synced(&shape), unsynced(&shape)] {
            let (_, ft) = Runtime::new(RunConfig::with_seed(seed)).run(&p, FastTrack::new());
            let (_, vc) = Runtime::new(RunConfig::with_seed(seed))
                .run(&p, FastTrack::with_config(FastTrackConfig::pure_vc()));
            assert_eq!(
                ft.reports().is_empty(),
                vc.reports().is_empty(),
                "case {case}: verdict mismatch on {} {:?} seed {}",
                p.name(),
                shape,
                seed
            );
        }
    }
}

/// Eraser accepts consistently locked shapes (its soundness case).
#[test]
fn eraser_accepts_locked_shapes() {
    let mut rng = StdRng::seed_from_u64(0xD4);
    let mut checked = 0;
    while checked < 15 {
        let shape = gen_shape(&mut rng);
        let seed = rng.gen_range(0..200u64);
        if shape.sync != SyncKind::Mutex {
            continue;
        }
        checked += 1;
        let p = synced(&shape);
        let (_, er) = Runtime::new(RunConfig::with_seed(seed)).run(&p, Eraser::new());
        assert!(er.reports().is_empty(), "eraser flagged a locked shape");
    }
}
