//! Flat-shadow ↔ legacy-shadow differential suite.
//!
//! The flat, index-addressed shadow tables (PR 7) replace the original
//! HashMap-backed ones in FastTrack, its pure-VC ablation, Eraser, and the
//! TSan hybrid. The legacy implementation stays compiled under the
//! test-only `oracle` feature, and this suite pins the rewrite to it
//! **bit-identically**: same report text in the same order, same site
//! keys, same step counts, same peak shadow words — live, scalar replay,
//! and batch replay at several chunk sizes.

#![cfg(feature = "oracle")]

use grs_detector::{replay_decoded, DetectorArena, DetectorChoice, ReplayOutcome};
use grs_runtime::{record, DecodedTrace, Program, RunConfig, StackDepot};

/// Programs spanning every synchronization primitive the detectors model:
/// locks (both modes), channels (buffered/unbuffered/close), WaitGroup,
/// Once, atomics, plus racy and race-free variants of each shape.
fn corpus() -> Vec<Program> {
    let mut programs = Vec::new();

    // Partial locking: one side locks, the other doesn't (racy).
    programs.push(Program::new("partial_lock", |ctx| {
        let mu = ctx.mutex("mu");
        let x = ctx.cell("x", 0i64);
        let (mu2, x2) = (mu.clone(), x.clone());
        ctx.go("locked", move |ctx| {
            mu2.lock(ctx);
            ctx.update(&x2, |v| v + 1);
            mu2.unlock(ctx);
        });
        ctx.update(&x, |v| v + 1);
    }));

    // Channel-synchronized (clean for HB detectors, Eraser false positive).
    programs.push(Program::new("chan_synced", |ctx| {
        let x = ctx.cell("x", 0i64);
        let ch = ctx.chan::<()>("done", 0);
        let (x2, tx) = (x.clone(), ch.clone());
        ctx.go("writer", move |ctx| {
            ctx.write(&x2, 1);
            tx.send(ctx, ());
        });
        let _ = ch.recv(ctx);
        let _ = ctx.read(&x);
    }));

    // RWLock: reader holds read mode, writer wrongly also takes read mode.
    programs.push(Program::new("rwlock_write_under_rlock", |ctx| {
        let rw = ctx.rwmutex("rw");
        let x = ctx.cell("x", 0i64);
        let (rw2, x2) = (rw.clone(), x.clone());
        ctx.go("bad_writer", move |ctx| {
            rw2.rlock(ctx);
            ctx.write(&x2, 7);
            rw2.runlock(ctx);
        });
        rw.rlock(ctx);
        let _ = ctx.read(&x);
        rw.runlock(ctx);
    }));

    // WaitGroup + Once + shared counter: wg joins make it clean; a stray
    // unsynchronized read keeps a race reachable on some schedules.
    programs.push(Program::new("wg_once_mixed", |ctx| {
        let wg = ctx.waitgroup("wg");
        let once = ctx.once("init");
        let x = ctx.cell("x", 0i64);
        for _ in 0..3 {
            wg.add(ctx, 1);
            let (wg, once, x) = (wg.clone(), once.clone(), x.clone());
            ctx.go("worker", move |ctx| {
                let x2 = x.clone();
                once.do_once(ctx, move |ctx| ctx.write(&x2, 1));
                let _ = ctx.read(&x);
                wg.done(ctx);
            });
        }
        wg.wait(ctx);
        ctx.write(&x, 99);
    }));

    // Atomic publish/acquire plus a plain racy counter on the side.
    programs.push(Program::new("atomic_publish", |ctx| {
        let data = ctx.cell("data", 0i64);
        let flag = ctx.atomic("flag", 0);
        let plain = ctx.cell("plain", 0i64);
        let (d2, f2, p2) = (data.clone(), flag.clone(), plain.clone());
        ctx.go("producer", move |ctx| {
            ctx.write(&d2, 42);
            f2.store(ctx, 1);
            ctx.update(&p2, |v| v + 1);
        });
        if flag.load(ctx) == 1 {
            let _ = ctx.read(&data);
        }
        ctx.update(&plain, |v| v + 1);
    }));

    // Buffered channels with close: rendezvous + close edges.
    programs.push(Program::new("buffered_close", |ctx| {
        let x = ctx.cell("x", 0i64);
        let ch = ctx.chan::<i64>("ch", 2);
        let (x2, tx) = (x.clone(), ch.clone());
        ctx.go("producer", move |ctx| {
            ctx.write(&x2, 5);
            tx.send(ctx, 1);
            tx.send(ctx, 2);
            tx.close(ctx);
        });
        while !ch.recv(ctx).is_closed() {}
        let _ = ctx.read(&x);
    }));

    programs
}

const SEEDS: u64 = 16;

fn assert_same_reports(
    label: &str,
    flat: &[grs_detector::RaceReport],
    oracle: &[grs_detector::RaceReport],
) {
    assert_eq!(flat.len(), oracle.len(), "{label}: report count");
    for (f, o) in flat.iter().zip(oracle.iter()) {
        assert_eq!(f.site_key(), o.site_key(), "{label}: site key");
        assert_eq!(format!("{f}"), format!("{o}"), "{label}: report text");
    }
}

/// Live runs: the flat arena and the oracle arena must be bit-identical on
/// steps, reports, and monitor statistics for every program × seed ×
/// algorithm cell.
#[test]
fn live_runs_match_oracle() {
    let mut flat = DetectorArena::new();
    let mut oracle = DetectorArena::new_oracle();
    assert!(oracle.is_oracle() && !flat.is_oracle());
    let mut total_reports = 0usize;
    for p in corpus() {
        for seed in 0..SEEDS {
            for choice in DetectorChoice::all_with_ablation() {
                let cfg = RunConfig::with_seed(seed);
                let (fo, fr) = flat.run(choice, &p, cfg.clone());
                let (oo, or) = oracle.run(choice, &p, cfg);
                let label = format!("{} seed {seed} {choice}", p.name());
                assert_eq!(fo.steps, oo.steps, "{label}: steps");
                assert_eq!(
                    fo.stats.events_dispatched, oo.stats.events_dispatched,
                    "{label}: events"
                );
                assert_eq!(
                    fo.stats.peak_shadow_words, oo.stats.peak_shadow_words,
                    "{label}: peak shadow words"
                );
                assert_same_reports(&label, &fr, &or);
                total_reports += fr.len();
            }
        }
    }
    // Guard against a vacuous pass: the corpus must actually exercise the
    // race-reporting paths, not just agree on silence.
    assert!(total_reports > 0, "equivalence corpus produced no reports");
}

/// Scalar replay: both arenas replay a recorded trace to the same outcome.
#[test]
fn scalar_replay_matches_oracle() {
    let mut flat = DetectorArena::new();
    let mut oracle = DetectorArena::new_oracle();
    for p in corpus() {
        for seed in 0..SEEDS {
            let (_, trace) = record(&p, &RunConfig::with_seed(seed));
            for choice in DetectorChoice::all_with_ablation() {
                let f = flat.replay(choice, &trace);
                let o = oracle.replay(choice, &trace);
                let label = format!("{} seed {seed} {choice} (scalar)", p.name());
                assert_eq!(f.events, o.events, "{label}: events");
                assert_eq!(
                    f.peak_shadow_words, o.peak_shadow_words,
                    "{label}: peak shadow words"
                );
                assert_same_reports(&label, &f.reports, &o.reports);
            }
        }
    }
}

/// Batch replay: the flat detectors' SoA hot loop, at chunk sizes 1, 2, a
/// prime, and the default, against the oracle's scalar-core replay of the
/// same decoded trace. The chunking must be invisible in every output.
#[test]
fn batch_replay_matches_oracle_at_every_chunk_size() {
    let mut flat = DetectorArena::new();
    let mut oracle = DetectorArena::new_oracle();
    for p in corpus() {
        for seed in 0..SEEDS / 2 {
            let (_, trace) = record(&p, &RunConfig::with_seed(seed));
            let bytes = trace.encode();
            for chunk in [1usize, 2, 61, 4096] {
                let decoded = DecodedTrace::decode_with_chunk(&bytes, chunk)
                    .expect("just-encoded trace decodes");
                assert_eq!(decoded.len(), trace.events.len());
                let choices = DetectorChoice::all_with_ablation();
                let f = flat.replay_many_decoded_observed(
                    &decoded,
                    &choices,
                    &grs_obs::NULL_SINK,
                );
                let o = oracle.replay_many_decoded_observed(
                    &decoded,
                    &choices,
                    &grs_obs::NULL_SINK,
                );
                for ((cf, fout), (co, oout)) in f.iter().zip(o.iter()) {
                    assert_eq!(cf, co);
                    let label =
                        format!("{} seed {seed} {cf} chunk {chunk} (batch)", p.name());
                    assert_eq!(fout.events, oout.events, "{label}: events");
                    assert_eq!(
                        fout.peak_shadow_words, oout.peak_shadow_words,
                        "{label}: peak shadow words"
                    );
                    assert_same_reports(&label, &fout.reports, &oout.reports);
                }
            }
        }
    }
}

/// The standalone `replay_decoded` driver agrees with the scalar
/// `replay_trace` driver on the flat detectors themselves (no oracle in
/// the loop): one analyzer, both drivers, same everything.
#[test]
fn replay_decoded_driver_matches_scalar_driver() {
    use grs_detector::{replay_trace, FastTrack, Tsan};
    let p = &corpus()[0];
    for seed in 0..SEEDS {
        let (_, trace) = record(p, &RunConfig::with_seed(seed));
        let bytes = trace.encode();
        let decoded = DecodedTrace::decode(&bytes).expect("decodes");
        let mut ft = FastTrack::new();
        let mut tsan = Tsan::new();
        let depot = StackDepot::new();
        let scalar: ReplayOutcome = replay_trace(&mut ft, &trace, &depot);
        let batched: ReplayOutcome = replay_decoded(&mut ft, &decoded, &depot);
        assert_eq!(scalar.events, batched.events);
        assert_eq!(scalar.peak_shadow_words, batched.peak_shadow_words);
        assert_same_reports("driver ft", &batched.reports, &scalar.reports);
        let scalar = replay_trace(&mut tsan, &trace, &depot);
        let batched = replay_decoded(&mut tsan, &decoded, &depot);
        assert_eq!(scalar.peak_shadow_words, batched.peak_shadow_words);
        assert_same_reports("driver tsan", &batched.reports, &scalar.reports);
    }
}
