//! Correctness tests for the detectors: true positives on the racy shapes
//! the study catalogs, and — just as important — **no false positives** on
//! properly synchronized programs (the happens-before detector's precision
//! guarantee under an observed schedule).

use grs_detector::{Eraser, ExploreConfig, Explorer, FastTrack, FastTrackConfig, Tsan};
use grs_runtime::{Program, RunConfig, Runtime, Strategy};

/// Runs `p` under many seeds with the TSan monitor; returns true when any
/// run reports a race.
fn tsan_finds_race(p: &Program, seeds: u64) -> bool {
    (0..seeds).any(|seed| {
        let (_, t) = Runtime::new(RunConfig::with_seed(seed)).run(p, Tsan::new());
        !t.reports().is_empty()
    })
}

/// Asserts that no seed produces a race report (precision check).
fn assert_race_free(p: &Program, seeds: u64) {
    for seed in 0..seeds {
        let (outcome, t) = Runtime::new(RunConfig::with_seed(seed)).run(p, Tsan::new());
        assert!(
            t.reports().is_empty(),
            "false positive at seed {seed}: {}\noutcome: {:?}",
            t.reports()[0],
            outcome.errors
        );
    }
}

#[test]
fn detects_unsynchronized_write_write() {
    let p = Program::new("ww", |ctx| {
        let x = ctx.cell("x", 0i64);
        let x2 = x.clone();
        ctx.go("w1", move |ctx| ctx.write(&x2, 1));
        ctx.write(&x, 2);
    });
    assert!(tsan_finds_race(&p, 30));
}

#[test]
fn detects_unsynchronized_read_write() {
    let p = Program::new("rw", |ctx| {
        let x = ctx.cell("x", 0i64);
        let x2 = x.clone();
        ctx.go("w", move |ctx| ctx.write(&x2, 1));
        let _ = ctx.read(&x);
    });
    assert!(tsan_finds_race(&p, 30));
}

#[test]
fn no_race_between_reads() {
    let p = Program::new("rr", |ctx| {
        let x = ctx.cell("x", 7i64);
        for _ in 0..3 {
            let x2 = x.clone();
            ctx.go("r", move |ctx| {
                let _ = ctx.read(&x2);
            });
        }
        let _ = ctx.read(&x);
    });
    assert_race_free(&p, 30);
}

#[test]
fn mutex_protection_is_race_free() {
    let p = Program::new("mutexed", |ctx| {
        let mu = ctx.mutex("mu");
        let x = ctx.cell("x", 0i64);
        let wg = ctx.waitgroup("wg");
        for _ in 0..3 {
            wg.add(ctx, 1);
            let (mu, x, wg) = (mu.clone(), x.clone(), wg.clone());
            ctx.go("w", move |ctx| {
                mu.lock(ctx);
                ctx.update(&x, |v| v + 1);
                mu.unlock(ctx);
                wg.done(ctx);
            });
        }
        wg.wait(ctx);
        assert_eq!(ctx.read(&x), 3);
    });
    assert_race_free(&p, 40);
}

#[test]
fn unbuffered_channel_orders_accesses() {
    let p = Program::new("chan_sync", |ctx| {
        let x = ctx.cell("x", 0i64);
        let ch = ctx.chan::<()>("done", 0);
        let (x2, tx) = (x.clone(), ch.clone());
        ctx.go("writer", move |ctx| {
            ctx.write(&x2, 1);
            tx.send(ctx, ());
        });
        let _ = ch.recv(ctx);
        assert_eq!(ctx.read(&x), 1);
    });
    assert_race_free(&p, 40);
}

#[test]
fn rendezvous_orders_both_directions() {
    // Receiver writes AFTER recv; sender reads AFTER its send completes.
    // For an unbuffered channel the recv happens-before send-completion,
    // so the sender's read is ordered after the receiver's... no wait:
    // sender reads x only after send() returns, and the receiver wrote x
    // before recv() — the recv→send-complete edge orders write before read.
    let p = Program::new("rendezvous_back_edge", |ctx| {
        let x = ctx.cell("x", 0i64);
        let ch = ctx.chan::<()>("ch", 0);
        let (x2, rx) = (x.clone(), ch.clone());
        ctx.go("receiver", move |ctx| {
            ctx.write(&x2, 5); // before the recv
            let _ = rx.recv(ctx);
        });
        ch.send(ctx, ());
        // send completed => rendezvous done => receiver's pre-recv write is
        // ordered before us.
        assert_eq!(ctx.read(&x), 5);
    });
    assert_race_free(&p, 40);
}

#[test]
fn buffered_channel_backpressure_edge() {
    // cap-1 channel: send #1 can only complete after recv #0, so the
    // receiver's write between recv#0 and nothing... construct: receiver
    // writes x after recv #0; main writes x after send #1 completes.
    let p = Program::new("backpressure_edge", |ctx| {
        let x = ctx.cell("x", 0i64);
        let ch = ctx.chan::<i64>("ch", 1);
        let (x2, rx) = (x.clone(), ch.clone());
        ctx.go("consumer", move |ctx| {
            ctx.write(&x2, 1); // happens-before recv #0
            let _ = rx.recv(ctx); // recv #0 — happens-before send #1 completes
        });
        ch.send(ctx, 10); // send #0 (fills the buffer)
        ch.send(ctx, 20); // send #1 (cannot complete until recv #0) — edge!
        ctx.write(&x, 2); // ordered after consumer's write via that edge
    });
    assert_race_free(&p, 60);
}

#[test]
fn close_orders_with_drain_recv() {
    let p = Program::new("close_sync", |ctx| {
        let x = ctx.cell("x", 0i64);
        let ch = ctx.chan::<i64>("ch", 4);
        let (x2, tx) = (x.clone(), ch.clone());
        ctx.go("producer", move |ctx| {
            ctx.write(&x2, 1);
            tx.close(ctx);
        });
        // Drain until closed; the close edge orders the write before us.
        loop {
            if ch.recv(ctx).is_closed() {
                break;
            }
        }
        assert_eq!(ctx.read(&x), 1);
    });
    assert_race_free(&p, 40);
}

#[test]
fn waitgroup_orders_worker_writes() {
    let p = Program::new("wg_sync", |ctx| {
        let wg = ctx.waitgroup("wg");
        let x = ctx.cell("x", 0i64);
        wg.add(ctx, 1);
        let (wg2, x2) = (wg.clone(), x.clone());
        ctx.go("worker", move |ctx| {
            ctx.write(&x2, 9);
            wg2.done(ctx);
        });
        wg.wait(ctx);
        assert_eq!(ctx.read(&x), 9);
    });
    assert_race_free(&p, 40);
}

#[test]
fn once_orders_initialization() {
    let p = Program::new("once_sync", |ctx| {
        let once = ctx.once("init");
        let x = ctx.cell("x", 0i64);
        let wg = ctx.waitgroup("wg");
        for _ in 0..3 {
            wg.add(ctx, 1);
            let (once, x, wg) = (once.clone(), x.clone(), wg.clone());
            ctx.go("user", move |ctx| {
                once.do_once(ctx, |ctx| ctx.write(&x, 42));
                let _ = ctx.read(&x); // ordered after the once body
                wg.done(ctx);
            });
        }
        wg.wait(ctx);
    });
    assert_race_free(&p, 40);
}

#[test]
fn rwmutex_writer_vs_reader_is_race_free() {
    let p = Program::new("rw_sync", |ctx| {
        let rw = ctx.rwmutex("rw");
        let x = ctx.cell("x", 0i64);
        let (rw2, x2) = (rw.clone(), x.clone());
        ctx.go("writer", move |ctx| {
            rw2.lock(ctx);
            ctx.write(&x2, 1);
            rw2.unlock(ctx);
        });
        rw.rlock(ctx);
        let _ = ctx.read(&x);
        rw.runlock(ctx);
    });
    assert_race_free(&p, 40);
}

#[test]
fn detects_write_under_reader_lock() {
    // Listing 11: two goroutines both hold the READ lock and write.
    // RLock does not order readers with each other => real race, and the
    // HB detector catches it even though a lock is held.
    let p = Program::new("rlock_write", |ctx| {
        let rw = ctx.rwmutex("g.mutex");
        let ready = ctx.cell("g.ready", false);
        let wg = ctx.waitgroup("wg");
        for _ in 0..2 {
            wg.add(ctx, 1);
            let (rw, ready, wg) = (rw.clone(), ready.clone(), wg.clone());
            ctx.go("updateGate", move |ctx| {
                rw.rlock(ctx);
                ctx.write(&ready, true); // write in a read-locked section!
                rw.runlock(ctx);
                wg.done(ctx);
            });
        }
        wg.wait(ctx);
    });
    assert!(tsan_finds_race(&p, 60));
}

#[test]
fn atomic_accesses_do_not_race_with_each_other() {
    let p = Program::new("atomics_ok", |ctx| {
        let a = ctx.atomic("a", 0);
        let a2 = a.clone();
        ctx.go("w", move |ctx| {
            a2.add(ctx, 1);
        });
        let _ = a.load(ctx);
        a.add(ctx, 1);
    });
    assert_race_free(&p, 40);
}

#[test]
fn detects_plain_access_mixed_with_atomic() {
    // §4.9.2: atomic for writes, plain for reads.
    let p = Program::new("partial_atomic", |ctx| {
        let a = ctx.atomic("counter", 0);
        let a2 = a.clone();
        ctx.go("w", move |ctx| a2.store(ctx, 1));
        let _ = a.load_plain(ctx); // plain read vs atomic write
    });
    assert!(tsan_finds_race(&p, 40));
}

#[test]
fn atomic_publish_orders_plain_payload() {
    // Correct atomic flag protocol: plain payload write, atomic flag store,
    // atomic flag load observed, plain payload read. No race.
    let p = Program::new("atomic_publish", |ctx| {
        let data = ctx.cell("data", 0i64);
        let flag = ctx.atomic("flag", 0);
        let (d2, f2) = (data.clone(), flag.clone());
        ctx.go("producer", move |ctx| {
            ctx.write(&d2, 99);
            f2.store(ctx, 1);
        });
        // Spin until the flag is set (bounded for the step budget).
        for _ in 0..200 {
            if flag.load(ctx) == 1 {
                assert_eq!(ctx.read(&data), 99);
                return;
            }
        }
    });
    assert_race_free(&p, 40);
}

#[test]
fn spawn_edge_orders_parent_writes() {
    let p = Program::new("spawn_edge", |ctx| {
        let x = ctx.cell("x", 0i64);
        ctx.write(&x, 1); // before spawn
        let x2 = x.clone();
        ctx.go("reader", move |ctx| {
            let _ = ctx.read(&x2); // ordered after parent's write
        });
    });
    assert_race_free(&p, 40);
}

#[test]
fn pure_vc_and_epochs_agree() {
    let programs = vec![
        Program::new("racy", |ctx| {
            let x = ctx.cell("x", 0i64);
            let x2 = x.clone();
            ctx.go("w", move |ctx| ctx.write(&x2, 1));
            let _ = ctx.read(&x);
        }),
        Program::new("clean", |ctx| {
            let x = ctx.cell("x", 0i64);
            let ch = ctx.chan::<()>("ch", 0);
            let (x2, tx) = (x.clone(), ch.clone());
            ctx.go("w", move |ctx| {
                ctx.write(&x2, 1);
                tx.send(ctx, ());
            });
            let _ = ch.recv(ctx);
            let _ = ctx.read(&x);
        }),
    ];
    for p in &programs {
        for seed in 0..20 {
            let (_, ft) = Runtime::new(RunConfig::with_seed(seed)).run(p, FastTrack::new());
            let (_, vc) = Runtime::new(RunConfig::with_seed(seed))
                .run(p, FastTrack::with_config(FastTrackConfig::pure_vc()));
            assert_eq!(
                ft.reports().is_empty(),
                vc.reports().is_empty(),
                "verdict mismatch on {} seed {seed}",
                p.name()
            );
        }
    }
}

#[test]
fn epoch_fast_path_dominates_on_thread_local_data() {
    let p = Program::new("local_heavy", |ctx| {
        let x = ctx.cell("x", 0i64);
        for _ in 0..100 {
            ctx.update(&x, |v| v + 1);
        }
    });
    let (_, ft) = Runtime::new(RunConfig::with_seed(0)).run(&p, FastTrack::new());
    assert!(ft.accesses_processed() >= 200);
    let hit_rate = ft.epoch_fast_hits() as f64 / ft.accesses_processed() as f64;
    assert!(
        hit_rate > 0.95,
        "thread-local accesses must hit the epoch fast path (got {hit_rate})"
    );
}

#[test]
fn eraser_flags_unlocked_shared_writes() {
    let p = Program::new("unlocked", |ctx| {
        let x = ctx.cell("x", 0i64);
        let x2 = x.clone();
        ctx.go("w", move |ctx| ctx.write(&x2, 1));
        ctx.sleep(2);
        ctx.write(&x, 2);
    });
    let mut any = false;
    for seed in 0..30 {
        let (_, er) = Runtime::new(RunConfig::with_seed(seed)).run(&p, Eraser::new());
        any |= !er.reports().is_empty();
    }
    assert!(any);
}

#[test]
fn eraser_false_positive_on_channel_sync_fasttrack_clean() {
    // The motivating comparison: lockset alone cannot see channel ordering.
    let p = Program::new("chan_synced", |ctx| {
        let x = ctx.cell("x", 0i64);
        let ch = ctx.chan::<()>("ch", 0);
        let (x2, tx) = (x.clone(), ch.clone());
        ctx.go("w", move |ctx| {
            ctx.write(&x2, 1);
            tx.send(ctx, ());
        });
        let _ = ch.recv(ctx);
        let _ = ctx.read(&x);
    });
    let (_, er) = Runtime::new(RunConfig::with_seed(3)).run(&p, Eraser::new());
    assert!(!er.reports().is_empty(), "Eraser should over-report here");
    let (_, ft) = Runtime::new(RunConfig::with_seed(3)).run(&p, FastTrack::new());
    assert!(ft.reports().is_empty(), "FastTrack must not");
}

#[test]
fn eraser_accepts_consistent_locking() {
    let p = Program::new("locked", |ctx| {
        let mu = ctx.mutex("mu");
        let x = ctx.cell("x", 0i64);
        let (mu2, x2) = (mu.clone(), x.clone());
        ctx.go("w", move |ctx| {
            mu2.lock(ctx);
            ctx.write(&x2, 1);
            mu2.unlock(ctx);
        });
        mu.lock(ctx);
        ctx.write(&x, 2);
        mu.unlock(ctx);
    });
    for seed in 0..20 {
        let (_, er) = Runtime::new(RunConfig::with_seed(seed)).run(&p, Eraser::new());
        assert!(er.reports().is_empty(), "seed {seed}");
    }
}

#[test]
fn explorer_aggregates_and_dedups() {
    let p = Program::new("flaky_race", |ctx| {
        let x = ctx.cell("x", 0i64);
        let x2 = x.clone();
        ctx.go("w", move |ctx| ctx.write(&x2, 1));
        let _ = ctx.read(&x);
    });
    let result = Explorer::new(ExploreConfig::quick().runs(50)).explore(&p);
    assert!(result.found_race());
    assert!(result.detection_rate() > 0.0 && result.detection_rate() <= 1.0);
    // One racy pair of source locations => at most 2 unique races
    // (read-vs-write orientations share a site key, write orderings may
    // produce a distinct pair).
    assert!(result.unique_races.len() <= 2, "{:#?}", result.unique_races);
    for r in &result.unique_races {
        assert_eq!(r.program.as_deref(), Some("flaky_race"));
    }
}

#[test]
fn explorer_is_deterministic() {
    let p = Program::new("det", |ctx| {
        let x = ctx.cell("x", 0i64);
        let x2 = x.clone();
        ctx.go("w", move |ctx| ctx.write(&x2, 1));
        let _ = ctx.read(&x);
    });
    let r1 = Explorer::new(ExploreConfig::quick()).explore(&p);
    let r2 = Explorer::new(ExploreConfig::quick()).explore(&p);
    assert_eq!(r1.racy_runs, r2.racy_runs);
    assert_eq!(r1.unique_races.len(), r2.unique_races.len());
}

#[test]
fn explorer_strategies_expose_races() {
    let p = Program::new("strat", |ctx| {
        let x = ctx.cell("x", 0i64);
        let x2 = x.clone();
        ctx.go("w", move |ctx| ctx.write(&x2, 1));
        let _ = ctx.read(&x);
    });
    for strategy in [Strategy::Random, Strategy::Pct { depth: 3 }] {
        let r = Explorer::new(ExploreConfig::quick().runs(40).strategy(strategy)).explore(&p);
        assert!(r.found_race(), "{strategy:?} found nothing");
    }
}

#[test]
fn race_report_carries_both_stacks() {
    let p = Program::new("stacked", |ctx| {
        let x = ctx.cell("x", 0i64);
        let x2 = x.clone();
        ctx.go("worker", move |ctx| {
            ctx.call("ProcessJob", |ctx| ctx.write(&x2, 1));
        });
        ctx.call("Collect", |ctx| {
            let _ = ctx.read(&x);
        });
    });
    let result = Explorer::new(ExploreConfig::quick().runs(60)).explore(&p);
    let race = result
        .unique_races
        .first()
        .expect("race must be detected");
    let (s1, s2) = race.stacks();
    let all: Vec<String> = s1
        .func_names()
        .into_iter()
        .chain(s2.func_names())
        .map(String::from)
        .collect();
    assert!(all.iter().any(|f| f == "ProcessJob"));
    assert!(all.iter().any(|f| f == "Collect"));
}

#[test]
fn report_cap_bounds_memory_on_extremely_racy_programs() {
    // A program with many distinct racy sites must not accumulate reports
    // past the configured cap.
    let p = Program::new("racy_everywhere", |ctx| {
        let cells: Vec<_> = (0..40).map(|i| ctx.cell(&format!("c{i}"), 0i64)).collect();
        for c in &cells {
            let c = c.clone();
            ctx.go("w", move |ctx| ctx.write(&c, 1));
        }
        for c in &cells {
            let _ = ctx.read(c);
        }
    });
    let cfg = FastTrackConfig {
        max_reports: 5,
        ..FastTrackConfig::default()
    };
    let mut max_seen = 0;
    for seed in 0..10 {
        let (_, ft) =
            Runtime::new(RunConfig::with_seed(seed)).run(&p, FastTrack::with_config(cfg.clone()));
        max_seen = max_seen.max(ft.reports().len());
        assert!(ft.reports().len() <= 5, "cap exceeded: {}", ft.reports().len());
    }
    assert!(max_seen > 0, "some race must still be reported");
}
