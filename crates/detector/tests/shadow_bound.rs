//! Regression test for the FastTrack `Shared`-read-map retention leak.
//!
//! When a variable's read state inflates to `Shared` (a vector-clock map of
//! reader entries), a later write that happens-after those reads makes the
//! entries redundant: any future access unordered with a dropped read is
//! also unordered with the dominating write, so the write epoch alone still
//! flags the race. Before the prune, a long-running process that cycles
//! through `readers read → barrier → writer writes` accumulated one map
//! entry per reader *per round* — O(rounds) shadow memory for O(1) live
//! state. The prune drops write-dominated entries on each write, so the
//! footprint is bounded by the per-round reader count.

use grs_detector::{replay_decoded, FastTrack};
use grs_runtime::{record, DecodedTrace, Program, RunConfig, Runtime, StackDepot};

const ROUNDS: i64 = 24;
const READERS: i64 = 4;

/// `ROUNDS` cycles of: spawn `READERS` goroutines that each read `x`, wait
/// for all of them (channel barrier → happens-before), then write `x`.
fn cyclic_readers() -> Program {
    Program::new("cyclic_readers", |ctx| {
        let x = ctx.cell("x", 0i64);
        let done = ctx.chan::<()>("done", READERS as usize);
        for round in 0..ROUNDS {
            for _ in 0..READERS {
                let (x, done) = (x.clone(), done.clone());
                ctx.go("reader", move |ctx| {
                    let _ = ctx.read(&x);
                    done.send(ctx, ());
                });
            }
            for _ in 0..READERS {
                let _ = done.recv(ctx);
            }
            // Happens-after every read of this round: the prune point.
            ctx.write(&x, round);
        }
    })
}

#[test]
fn shared_read_maps_stay_bounded_across_rounds() {
    let (outcome, ft) =
        Runtime::new(RunConfig::with_seed(7)).run(&cyclic_readers(), FastTrack::new());
    // The program is race-free: every read is joined before the write.
    assert!(ft.reports().is_empty(), "barriered program must be clean");

    // Shadow accounting: `x` costs 2 fixed words plus its live read
    // history; the channel has no var shadow. With the prune, the history
    // peaks at one entry per same-round reader (plus the main goroutine's
    // own reads-after-write bookkeeping) — independent of ROUNDS. The
    // leaking implementation retains every round's readers and peaks at
    // ROUNDS * READERS entries.
    let bound = 2 + (READERS as usize) + 4;
    let leak_scale = (ROUNDS * READERS) as usize;
    assert!(
        outcome.stats.peak_shadow_words <= bound,
        "peak shadow words {} exceeds the O(readers) bound {} (leak would reach ~{})",
        outcome.stats.peak_shadow_words,
        bound,
        leak_scale
    );
    // Guard the test itself: the leaking peak must be well above the bound,
    // otherwise this assertion could never catch the regression.
    assert!(leak_scale > 2 * bound);
}

/// The same O(readers) bound through the **batch replay** hot loop: the
/// flat shadow arrays (PR 7) must reproduce the live path's peak exactly.
/// A flat table that forgot the prune — or that counted never-touched
/// index holes as shadow words — would blow past the bound here even when
/// the live path stays tight.
#[test]
fn batch_replay_keeps_shared_read_history_bounded() {
    let p = cyclic_readers();
    let cfg = RunConfig::with_seed(7);
    let (live, _) = Runtime::new(cfg.clone()).run(&p, FastTrack::new());
    let (_, trace) = record(&p, &cfg);
    let bytes = trace.encode();
    let decoded = DecodedTrace::decode(&bytes).expect("just-encoded trace decodes");
    let mut ft = FastTrack::new();
    let out = replay_decoded(&mut ft, &decoded, &StackDepot::new());
    assert!(out.reports.is_empty(), "barriered program must be clean");
    assert_eq!(
        out.peak_shadow_words, live.stats.peak_shadow_words,
        "batch replay must reproduce the live peak exactly"
    );
    let bound = 2 + (READERS as usize) + 4;
    assert!(
        out.peak_shadow_words <= bound,
        "batch-replay peak {} exceeds the O(readers) bound {}",
        out.peak_shadow_words,
        bound
    );
}

#[test]
fn pruning_does_not_suppress_real_races() {
    // Same shape but the final write skips the barrier for the last round:
    // the unjoined readers race with it, and the prune (which only drops
    // write-dominated entries) must keep them.
    let p = Program::new("cyclic_readers_racy_tail", |ctx| {
        let x = ctx.cell("x", 0i64);
        let done = ctx.chan::<()>("done", READERS as usize);
        for round in 0..ROUNDS {
            for _ in 0..READERS {
                let (x, done) = (x.clone(), done.clone());
                ctx.go("reader", move |ctx| {
                    let _ = ctx.read(&x);
                    done.send(ctx, ());
                });
            }
            let joins = if round == ROUNDS - 1 { 0 } else { READERS };
            for _ in 0..joins {
                let _ = done.recv(ctx);
            }
            ctx.write(&x, round);
        }
    });
    let mut detected = false;
    for seed in 0..20 {
        let (_, ft) = Runtime::new(RunConfig::with_seed(seed)).run(&p, FastTrack::new());
        if !ft.reports().is_empty() {
            detected = true;
            break;
        }
    }
    assert!(detected, "the unbarriered tail round must still race");
}
