//! The FastTrack happens-before race detector.
//!
//! FastTrack (Flanagan & Freund, PLDI 2009) is the happens-before component
//! of ThreadSanitizer: per-goroutine vector clocks advance at release
//! operations and join at acquire operations, and each shared variable
//! keeps a shadow of its last write (an [`Epoch`]) and its read history (an
//! epoch, inflated to a vector clock only while reads are concurrent).
//!
//! The [`FastTrackConfig`]'s `pure_vc` flag disables the epoch fast path and
//! keeps full vector clocks for every shadow slot — same verdicts, more
//! work — which the ablation benchmark uses to measure what the epoch
//! optimization buys (the original paper reports most accesses hit the
//! O(1) path).
//!
//! Happens-before edges follow the Go memory model as emitted by the
//! runtime: spawn, mutex/rwlock release→acquire, channel send→receive,
//! receive→send-completion (rendezvous/backpressure), close→recv-closed,
//! `WaitGroup` done→wait, `Once` execution→observation, and `sync/atomic`
//! release/acquire on the accessed address.

use std::collections::HashMap;
use std::sync::Arc;

use grs_clock::{Epoch, LockId, Lockset, LocksetId, LocksetInterner, Tid, VectorClock};
use grs_runtime::event::{Event, EventKind, LockMode};
use grs_runtime::{AccessKind, Addr, Gid, Monitor, SourceLoc, StackDepot, StackId};

use crate::report::{DetectorKind, RaceAccess, RaceReport};

/// Configuration for [`FastTrack`].
#[derive(Debug, Clone)]
pub struct FastTrackConfig {
    /// Disable the epoch fast path; keep full vector clocks everywhere.
    pub pure_vc: bool,
    /// Track per-goroutine locksets and attach them to reports.
    pub track_locksets: bool,
    /// Stop recording after this many reports (guards memory on extremely
    /// racy programs; the paper's detector similarly caps per-run output).
    pub max_reports: usize,
    /// Label attached to the reports.
    pub kind: DetectorKind,
}

impl Default for FastTrackConfig {
    fn default() -> Self {
        FastTrackConfig {
            pure_vc: false,
            track_locksets: false,
            max_reports: 256,
            kind: DetectorKind::FastTrack,
        }
    }
}

impl FastTrackConfig {
    /// The pure-vector-clock ablation variant.
    #[must_use]
    pub fn pure_vc() -> Self {
        FastTrackConfig {
            pure_vc: true,
            kind: DetectorKind::PureVectorClock,
            ..FastTrackConfig::default()
        }
    }
}

/// One recorded access (for the "previous access" half of a report).
///
/// `Copy`: the stack is a depot id and the lockset an interner id, so
/// storing shadow history per variable moves two `u32`s instead of cloning
/// frame vectors — the heart of this detector's hot-path refactor.
#[derive(Debug, Clone, Copy)]
struct AccessInfo {
    gid: Gid,
    kind: AccessKind,
    stack: StackId,
    loc: SourceLoc,
    locks: LocksetId,
}

impl AccessInfo {
    /// Materializes the compact ids into a report half (report paths only).
    fn to_race_access(self, depot: &StackDepot, locksets: &LocksetInterner) -> RaceAccess {
        RaceAccess {
            gid: self.gid,
            kind: self.kind,
            stack: depot.resolve(self.stack),
            stack_id: self.stack,
            loc: self.loc,
            locks_held: locksets.get(self.locks).clone(),
        }
    }
}

/// Read-history word count of one variable (for shadow accounting).
fn read_words(state: &ReadState) -> usize {
    match state {
        ReadState::None => 0,
        ReadState::Exclusive(..) => 1,
        ReadState::Shared(m) => m.len(),
    }
}

/// Read history of one variable.
#[derive(Debug)]
enum ReadState {
    /// No read yet.
    None,
    /// Totally ordered reads: the maximal one as an epoch.
    Exclusive(Epoch, AccessInfo),
    /// Concurrent reads: per-goroutine last-read clock (FastTrack's
    /// "read-shared" inflation).
    Shared(HashMap<u32, (u32, AccessInfo)>),
}

/// Shadow state of one variable.
#[derive(Debug)]
struct VarShadow {
    write_epoch: Epoch,
    /// Full clock of the writer at the last write (kept only in `pure_vc`
    /// mode, where it replaces the epoch comparison).
    write_clock: Option<VectorClock>,
    write_info: Option<AccessInfo>,
    read: ReadState,
    /// Release/acquire clock for `sync/atomic` operations on this address.
    sync_clock: VectorClock,
}

impl VarShadow {
    fn new() -> Self {
        VarShadow {
            write_epoch: Epoch::ZERO,
            write_clock: None,
            write_info: None,
            read: ReadState::None,
            sync_clock: VectorClock::new(),
        }
    }
}

#[derive(Debug, Default)]
struct LockShadow {
    write_release: VectorClock,
    read_release: VectorClock,
}

#[derive(Debug, Default)]
struct ChanShadow {
    send_clocks: HashMap<u64, VectorClock>,
    recv_clocks: HashMap<u64, VectorClock>,
    close_clock: Option<VectorClock>,
}

/// The FastTrack monitor. Create one per run and pass it to
/// [`grs_runtime::Runtime::run`]; collect [`FastTrack::reports`] afterwards.
///
/// # Example
///
/// ```
/// use grs_detector::FastTrack;
/// use grs_runtime::{Program, RunConfig, Runtime};
///
/// let racy = Program::new("unlocked", |ctx| {
///     let x = ctx.cell("x", 0i64);
///     let x2 = x.clone();
///     ctx.go("writer", move |ctx| ctx.write(&x2, 1));
///     ctx.sleep(2);
///     let _ = ctx.read(&x);
/// });
/// let mut any = false;
/// for seed in 0..20 {
///     let (_, ft) = Runtime::new(RunConfig::with_seed(seed)).run(&racy, FastTrack::new());
///     any |= !ft.reports().is_empty();
/// }
/// assert!(any, "some schedule must expose the race");
/// ```
#[derive(Debug)]
pub struct FastTrack {
    cfg: FastTrackConfig,
    /// Depot of the current run (attached by [`Monitor::on_run_start`]);
    /// used only to materialize reports.
    depot: StackDepot,
    /// Interned locksets; shadow history stores [`LocksetId`]s.
    locksets: LocksetInterner,
    clocks: Vec<VectorClock>,
    held: Vec<Lockset>,
    /// Interned id of each goroutine's current `held` set, refreshed on
    /// acquire/release so accesses copy a `u32`.
    held_ids: Vec<LocksetId>,
    locks: HashMap<u64, LockShadow>,
    chans: HashMap<u64, ChanShadow>,
    wg_done: HashMap<u64, VectorClock>,
    once_done: HashMap<u64, VectorClock>,
    vars: HashMap<u64, VarShadow>,
    reports: Vec<RaceReport>,
    seen_sites: std::collections::HashSet<String>,
    accesses_processed: u64,
    epoch_fast_hits: u64,
    /// Live shadow-word count (per-variable fixed slots + read history),
    /// maintained incrementally so [`Monitor::shadow_words`] is O(1).
    shadow_words: usize,
}

impl Default for FastTrack {
    fn default() -> Self {
        Self::new()
    }
}

impl FastTrack {
    /// A detector with the default (epoch-optimized) configuration.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(FastTrackConfig::default())
    }

    /// A detector with an explicit configuration.
    #[must_use]
    pub fn with_config(cfg: FastTrackConfig) -> Self {
        FastTrack {
            cfg,
            depot: StackDepot::new(),
            locksets: LocksetInterner::new(),
            clocks: Vec::new(),
            held: Vec::new(),
            held_ids: Vec::new(),
            locks: HashMap::new(),
            chans: HashMap::new(),
            wg_done: HashMap::new(),
            once_done: HashMap::new(),
            vars: HashMap::new(),
            reports: Vec::new(),
            seen_sites: std::collections::HashSet::new(),
            accesses_processed: 0,
            epoch_fast_hits: 0,
            shadow_words: 0,
        }
    }

    /// The races detected so far.
    #[must_use]
    pub fn reports(&self) -> &[RaceReport] {
        &self.reports
    }

    /// Consumes the detector, returning its reports.
    #[must_use]
    pub fn into_reports(self) -> Vec<RaceReport> {
        self.reports
    }

    /// Takes the accumulated reports, leaving the detector reusable (the
    /// arena path: take reports, `reset()`, run again).
    pub fn take_reports(&mut self) -> Vec<RaceReport> {
        std::mem::take(&mut self.reports)
    }

    /// Clears all per-run state while keeping container allocations warm,
    /// so one detector can monitor thousands of campaign runs without
    /// reallocating its shadow tables. Called automatically at the start of
    /// every run (see [`Monitor::on_run_start`]).
    pub fn reset(&mut self) {
        self.clocks.clear();
        self.held.clear();
        self.held_ids.clear();
        self.locks.clear();
        self.chans.clear();
        self.wg_done.clear();
        self.once_done.clear();
        self.vars.clear();
        self.reports.clear();
        self.seen_sites.clear();
        self.accesses_processed = 0;
        self.epoch_fast_hits = 0;
        self.shadow_words = 0;
        self.locksets.reset();
    }

    /// Number of memory accesses processed.
    #[must_use]
    pub fn accesses_processed(&self) -> u64 {
        self.accesses_processed
    }

    /// How many accesses were resolved entirely on the O(1) epoch path —
    /// the statistic the FastTrack paper's speedup rests on.
    #[must_use]
    pub fn epoch_fast_hits(&self) -> u64 {
        self.epoch_fast_hits
    }

    fn clock_mut(&mut self, gid: Gid) -> &mut VectorClock {
        let i = gid.index();
        while self.clocks.len() <= i {
            let t = self.clocks.len() as u32;
            let mut c = VectorClock::new();
            c.set(Tid::new(t), 1);
            self.clocks.push(c);
            self.held.push(Lockset::new());
            self.held_ids.push(LocksetId::EMPTY);
        }
        &mut self.clocks[i]
    }

    fn ensure_tid(&mut self, gid: Gid) {
        let _ = self.clock_mut(gid);
    }

    fn tick(&mut self, gid: Gid) {
        let t = Tid::new(gid.0);
        self.clock_mut(gid).tick(t);
    }

    fn record(
        &mut self,
        addr: Addr,
        object: &Arc<str>,
        prior: AccessInfo,
        current: AccessInfo,
    ) {
        if self.reports.len() >= self.cfg.max_reports {
            return;
        }
        // Materialize stacks/locksets only now — reports are rare.
        let report = RaceReport {
            addr,
            object: object.clone(),
            prior: prior.to_race_access(&self.depot, &self.locksets),
            current: current.to_race_access(&self.depot, &self.locksets),
            detector: self.cfg.kind,
            program: None,
            repro_seed: None,
            repro: None,
        };
        if self.seen_sites.insert(report.site_key()) {
            self.reports.push(report);
        }
    }

    fn on_access(
        &mut self,
        gid: Gid,
        addr: Addr,
        object: &Arc<str>,
        kind: AccessKind,
        stack: StackId,
        loc: SourceLoc,
    ) {
        self.ensure_tid(gid);
        self.accesses_processed += 1;
        let tid = Tid::new(gid.0);
        let locks = if self.cfg.track_locksets {
            self.held_ids[gid.index()]
        } else {
            LocksetId::EMPTY
        };
        let info = AccessInfo {
            gid,
            kind,
            stack,
            loc,
            locks,
        };
        // Atomic acquire side: an atomic read (or RMW) joins the address's
        // sync clock *before* race checks, so atomic-synchronized plain
        // accesses are correctly ordered.
        if kind.is_atomic() {
            let sync = self
                .vars
                .get(&addr.0)
                .map(|v| v.sync_clock.clone())
                .unwrap_or_default();
            self.clocks[gid.index()].join(&sync);
        }
        let c = self.clocks[gid.index()].clone();
        let pure_vc = self.cfg.pure_vc;
        let mut fast = true;
        let mut found: Vec<(AccessInfo, AccessInfo)> = Vec::new();
        // Shadow accounting: +2 fixed words (write + sync slot) per new
        // variable, plus the read-history delta measured below.
        let mut words_delta: isize = if self.vars.contains_key(&addr.0) {
            0
        } else {
            2
        };
        {
            let var = self
                .vars
                .entry(addr.0)
                .or_insert_with(VarShadow::new);
            let read_words_before = read_words(&var.read);
            // --- race checks ---
            let write_hb = if pure_vc {
                fast = false;
                var.write_clock.as_ref().is_none_or(|wc| wc.le(&c))
            } else {
                var.write_epoch.le_clock(&c)
            };
            if !write_hb {
                if let Some(wi) = &var.write_info {
                    if !(kind.is_atomic() && wi.kind.is_atomic()) {
                        found.push((*wi, info));
                    }
                }
            }
            if kind.is_write() {
                match &var.read {
                    ReadState::None => {}
                    ReadState::Exclusive(e, ri) => {
                        let read_hb = if pure_vc {
                            e.to_clock().le(&c)
                        } else {
                            e.le_clock(&c)
                        };
                        if !(read_hb || (kind.is_atomic() && ri.kind.is_atomic())) {
                            found.push((*ri, info));
                        }
                    }
                    ReadState::Shared(map) => {
                        fast = false;
                        // Iterate in tid order: HashMap order is nondeterministic
                        // across processes, and report order feeds dedup
                        // representatives and `max_reports` truncation.
                        let mut entries: Vec<_> = map.iter().collect();
                        entries.sort_by_key(|(t2, _)| **t2);
                        for (t2, (clk, ri)) in entries {
                            if *clk > c.get(Tid::new(*t2))
                                && !(kind.is_atomic() && ri.kind.is_atomic())
                            {
                                found.push((*ri, info));
                            }
                        }
                    }
                }
            }
            // --- shadow updates ---
            if kind.is_write() {
                var.write_epoch = Epoch::new(tid, c.get(tid));
                var.write_clock = if pure_vc { Some(c.clone()) } else { None };
                var.write_info = Some(info);
                // Prune the read history this write re-exclusives: an entry
                // whose clock is dominated by the writer (`clk <= c[t2]`,
                // i.e. read happens-before this write) can never expose a
                // race this write itself wouldn't — any later access
                // unordered with the dropped read is also unordered with
                // the write (clocks transfer whole histories), so the race
                // still fires against `write_info`. Without this prune the
                // Shared map retains one entry per goroutine that ever read
                // the variable, forever: the unbounded-shadow leak.
                if let ReadState::Shared(map) = &mut var.read {
                    map.retain(|t2, (clk, _)| *clk > c.get(Tid::new(*t2)));
                    if map.is_empty() {
                        var.read = ReadState::None;
                    }
                }
            } else {
                // Read: update the read history.
                let my_clk = c.get(tid);
                if pure_vc {
                    let map = match &mut var.read {
                        ReadState::Shared(m) => m,
                        other => {
                            let mut m = HashMap::new();
                            if let ReadState::Exclusive(e, ri) = other {
                                m.insert(e.tid().raw(), (e.clock(), *ri));
                            }
                            var.read = ReadState::Shared(m);
                            match &mut var.read {
                                ReadState::Shared(m) => m,
                                _ => unreachable!("just assigned"),
                            }
                        }
                    };
                    map.insert(tid.raw(), (my_clk, info));
                } else {
                    match &mut var.read {
                        ReadState::None => {
                            var.read = ReadState::Exclusive(Epoch::new(tid, my_clk), info);
                        }
                        ReadState::Exclusive(e, _) => {
                            if e.tid() == tid || e.le_clock(&c) {
                                var.read = ReadState::Exclusive(Epoch::new(tid, my_clk), info);
                            } else {
                                fast = false;
                                let mut m = HashMap::new();
                                if let ReadState::Exclusive(e, ri) = &var.read {
                                    m.insert(e.tid().raw(), (e.clock(), *ri));
                                }
                                m.insert(tid.raw(), (my_clk, info));
                                var.read = ReadState::Shared(m);
                            }
                        }
                        ReadState::Shared(m) => {
                            fast = false;
                            m.insert(tid.raw(), (my_clk, info));
                        }
                    }
                }
            }
            words_delta += read_words(&var.read) as isize - read_words_before as isize;
        }
        self.shadow_words = self
            .shadow_words
            .checked_add_signed(words_delta)
            .expect("shadow-word count underflow");
        if fast {
            self.epoch_fast_hits += 1;
        }
        // Atomic release side: publish our clock to the address sync clock
        // and advance.
        if kind == AccessKind::AtomicWrite {
            let c_now = self.clocks[gid.index()].clone();
            let var = self
                .vars
                .get_mut(&addr.0)
                .expect("var shadow just ensured");
            var.sync_clock.join(&c_now);
            self.tick(gid);
        }
        for (prior, current) in found {
            self.record(addr, object, prior, current);
        }
    }

    fn on_sync(&mut self, ev: &Event) {
        let gid = ev.gid;
        self.ensure_tid(gid);
        match &ev.kind {
            EventKind::Spawn { child, .. } => {
                self.ensure_tid(*child);
                let parent_clock = self.clocks[gid.index()].clone();
                self.clocks[child.index()].join(&parent_clock);
                self.tick(*child);
                self.tick(gid);
            }
            EventKind::Acquire { lock, mode } => {
                let shadow = self.locks.entry(lock.0).or_default();
                let mut joined = shadow.write_release.clone();
                if *mode == LockMode::Write {
                    joined.join(&shadow.read_release);
                }
                self.clocks[gid.index()].join(&joined);
                if self.cfg.track_locksets {
                    self.held[gid.index()].insert(LockId::new(lock.0));
                    self.held_ids[gid.index()] = self.locksets.intern(&self.held[gid.index()]);
                }
            }
            EventKind::Release { lock, mode } => {
                let c = self.clocks[gid.index()].clone();
                let shadow = self.locks.entry(lock.0).or_default();
                match mode {
                    LockMode::Write => shadow.write_release = c,
                    LockMode::Read => shadow.read_release.join(&c),
                }
                self.tick(gid);
                if self.cfg.track_locksets {
                    self.held[gid.index()].remove(LockId::new(lock.0));
                    self.held_ids[gid.index()] = self.locksets.intern(&self.held[gid.index()]);
                }
            }
            EventKind::ChanSend { chan, seq } => {
                let c = self.clocks[gid.index()].clone();
                self.chans
                    .entry(chan.0)
                    .or_default()
                    .send_clocks
                    .insert(*seq, c);
                self.tick(gid);
            }
            EventKind::ChanRecv { chan, seq } => {
                let sent = self
                    .chans
                    .entry(chan.0)
                    .or_default()
                    .send_clocks
                    .remove(seq);
                if let Some(sc) = sent {
                    self.clocks[gid.index()].join(&sc);
                }
                let c = self.clocks[gid.index()].clone();
                self.chans
                    .entry(chan.0)
                    .or_default()
                    .recv_clocks
                    .insert(*seq, c);
                self.tick(gid);
            }
            EventKind::ChanSendComplete { chan, seq, cap } => {
                let target = if *cap == 0 {
                    Some(*seq)
                } else {
                    seq.checked_sub(*cap as u64)
                };
                if let Some(t) = target {
                    let rc = self.chans.entry(chan.0).or_default().recv_clocks.remove(&t);
                    if let Some(rc) = rc {
                        self.clocks[gid.index()].join(&rc);
                    }
                }
            }
            EventKind::ChanClose { chan } => {
                let c = self.clocks[gid.index()].clone();
                self.chans.entry(chan.0).or_default().close_clock = Some(c);
                self.tick(gid);
            }
            EventKind::ChanRecvClosed { chan } => {
                let cc = self
                    .chans
                    .entry(chan.0)
                    .or_default()
                    .close_clock
                    .clone();
                if let Some(cc) = cc {
                    self.clocks[gid.index()].join(&cc);
                }
            }
            EventKind::WgAdd { wg, delta, .. } => {
                if *delta < 0 {
                    let c = self.clocks[gid.index()].clone();
                    self.wg_done.entry(wg.0).or_default().join(&c);
                    self.tick(gid);
                }
            }
            EventKind::WgWait { wg } => {
                let dc = self.wg_done.get(&wg.0).cloned();
                if let Some(dc) = dc {
                    self.clocks[gid.index()].join(&dc);
                }
            }
            EventKind::OnceExecuted { once } => {
                let c = self.clocks[gid.index()].clone();
                self.once_done.insert(once.0, c);
                self.tick(gid);
            }
            EventKind::OnceObserved { once } => {
                let oc = self.once_done.get(&once.0).cloned();
                if let Some(oc) = oc {
                    self.clocks[gid.index()].join(&oc);
                }
            }
            EventKind::GoroutineEnd | EventKind::Access { .. } => {}
        }
    }
}

impl Monitor for FastTrack {
    fn on_run_start(&mut self, depot: &StackDepot) {
        // A fresh run: drop any previous run's shadow state (allocations
        // stay warm) and attach the run's depot for report materialization.
        self.reset();
        self.depot = depot.clone();
    }

    fn on_event(&mut self, event: &Event) {
        if let EventKind::Access {
            addr,
            object,
            kind,
            stack,
            loc,
        } = &event.kind
        {
            let object = object.clone();
            self.on_access(event.gid, *addr, &object, *kind, *stack, *loc);
        } else {
            self.on_sync(event);
        }
    }

    fn shadow_words(&self) -> usize {
        self.shadow_words
    }
}
