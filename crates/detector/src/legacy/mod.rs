//! The legacy HashMap-backed shadow state, frozen as the equivalence
//! oracle for the flat rewrite.
//!
//! These modules are byte-for-byte copies of the detector cores as they
//! stood before the flat shadow-memory refactor (`fasttrack.rs`,
//! `eraser.rs`, `tsan.rs` with `HashMap<u64, _>` variable/lock/channel
//! tables and a `HashMap` shared-read history). They are compiled only
//! under the test-only `oracle` cargo feature and exist for exactly one
//! purpose: differential testing. The equivalence suite runs the same
//! programs and traces through both implementations and pins the flat
//! path's reports, fingerprints, shadow-word accounting, and campaign
//! digests bit-identical to this oracle.
//!
//! Nothing here is reachable from a release build: the `oracle` feature
//! is enabled through dev-dependencies only, so `cargo build --release`
//! never compiles this module.

pub mod eraser;
pub mod fasttrack;
pub mod tsan;

pub use eraser::Eraser as LegacyEraser;
pub use fasttrack::{FastTrack as LegacyFastTrack, FastTrackConfig as LegacyFastTrackConfig};
pub use tsan::Tsan as LegacyTsan;

use grs_runtime::{Event, Monitor, StackDepot};

use crate::replay::ReplayAnalyzer;
use crate::report::RaceReport;

/// The oracle types satisfy the same replay contract as the flat
/// detectors, through the same Monitor delegation the flat macro uses —
/// so the replay drivers (and the batch default path, which materializes
/// events one at a time) can drive them interchangeably.
macro_rules! impl_legacy_replay_analyzer {
    ($($ty:ty),+) => {$(
        impl ReplayAnalyzer for $ty {
            fn begin_replay(&mut self, depot: &StackDepot) {
                Monitor::on_run_start(self, depot);
            }

            fn replay_event(&mut self, event: &Event) {
                Monitor::on_event(self, event);
            }

            fn finish_replay(&mut self) -> Vec<RaceReport> {
                Monitor::on_run_end(self);
                self.take_reports()
            }

            fn replay_shadow_words(&self) -> usize {
                Monitor::shadow_words(self)
            }
        }
    )+};
}

impl_legacy_replay_analyzer!(
    fasttrack::FastTrack,
    eraser::Eraser,
    tsan::Tsan
);
