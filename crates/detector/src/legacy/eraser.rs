//! The Eraser lockset race detector.
//!
//! Eraser (Savage et al., TOCS 1997) ignores happens-before entirely: each
//! shared variable carries a candidate set of locks, refined by intersection
//! with the accessor's held locks at every access once the variable is
//! shared. An empty candidate set on a shared-modified variable means no
//! single lock consistently protects it — a *potential* race.
//!
//! Because channel communication, `WaitGroup`s, and goroutine spawn order
//! establish happens-before without any lock, Eraser over-reports on idiomatic
//! Go: the detector-comparison benchmark quantifies exactly that, which is
//! why ThreadSanitizer anchors its verdicts on vector clocks (§3.1).

use std::collections::HashMap;
use std::sync::Arc;

use grs_clock::{LockId, Lockset, LocksetId, LocksetInterner};
use grs_runtime::event::{Event, EventKind, LockMode};
use grs_runtime::{AccessKind, Addr, Gid, Monitor, SourceLoc, StackDepot, StackId};

use crate::report::{DetectorKind, RaceAccess, RaceReport};

/// Eraser's per-variable state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarState {
    /// Only one goroutine has ever touched the variable.
    Exclusive(Gid),
    /// Multiple goroutines read it (no cross-goroutine write yet).
    Shared,
    /// Written by one goroutine and accessed by another: races possible.
    SharedModified,
}

/// `Copy`: stack and lockset are interner ids, so remembering the previous
/// access per variable moves two `u32`s instead of cloning frame vectors
/// and lock vectors on every event.
#[derive(Debug, Clone, Copy)]
struct LastAccess {
    gid: Gid,
    kind: AccessKind,
    stack: StackId,
    loc: SourceLoc,
    locks: LocksetId,
}

impl LastAccess {
    fn to_race_access(self, depot: &StackDepot, locksets: &LocksetInterner) -> RaceAccess {
        RaceAccess {
            gid: self.gid,
            kind: self.kind,
            stack: depot.resolve(self.stack),
            stack_id: self.stack,
            loc: self.loc,
            locks_held: locksets.get(self.locks).clone(),
        }
    }
}

#[derive(Debug)]
struct EraserVar {
    object: Arc<str>,
    state: VarState,
    /// Candidate protecting set, refined through the interner's memoized
    /// intersection (a hash probe per access in steady state).
    candidate: LocksetId,
    last: LastAccess,
    reported: bool,
}

/// The Eraser monitor.
///
/// # Example
///
/// ```
/// use grs_detector::Eraser;
/// use grs_runtime::{Program, RunConfig, Runtime};
///
/// // Channel-synchronized program: race-free, but Eraser still flags it
/// // because no LOCK protects the variable (a false positive by design).
/// let p = Program::new("chan_synced", |ctx| {
///     let x = ctx.cell("x", 0i64);
///     let ch = ctx.chan::<()>("done", 0);
///     let (x2, tx) = (x.clone(), ch.clone());
///     ctx.go("writer", move |ctx| {
///         ctx.write(&x2, 1);
///         tx.send(ctx, ());
///     });
///     let _ = ch.recv(ctx);
///     let _ = ctx.read(&x);
/// });
/// let (_, er) = Runtime::new(RunConfig::with_seed(0)).run(&p, Eraser::new());
/// assert_eq!(er.reports().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Eraser {
    /// Depot of the current run (attached by [`Monitor::on_run_start`]);
    /// used only to materialize reports.
    depot: StackDepot,
    /// Interned locksets; candidates and last-access records are ids.
    locksets: LocksetInterner,
    /// Locks held per goroutine, in any mode.
    held: Vec<Lockset>,
    /// Locks held per goroutine in *write* (exclusive) mode. Eraser's
    /// read-write-lock refinement: a read-mode `RLock` admits concurrent
    /// readers, so it protects reads but not writes — a write access is
    /// refined against this set only (the Listing 11 `RLock`-write bug
    /// class would otherwise be invisible to locksets).
    write_held: Vec<Lockset>,
    /// Interned ids of the current `held` / `write_held` sets, refreshed on
    /// acquire/release so accesses copy `u32`s instead of cloning sets.
    held_ids: Vec<LocksetId>,
    write_held_ids: Vec<LocksetId>,
    vars: HashMap<u64, EraserVar>,
    reports: Vec<RaceReport>,
}

impl Eraser {
    /// A fresh Eraser monitor.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The potential races reported so far.
    #[must_use]
    pub fn reports(&self) -> &[RaceReport] {
        &self.reports
    }

    /// Consumes the detector, returning its reports.
    #[must_use]
    pub fn into_reports(self) -> Vec<RaceReport> {
        self.reports
    }

    /// Takes the accumulated reports, leaving the detector reusable.
    pub fn take_reports(&mut self) -> Vec<RaceReport> {
        std::mem::take(&mut self.reports)
    }

    /// Clears all per-run state, keeping container allocations warm. Called
    /// automatically at the start of every run.
    pub fn reset(&mut self) {
        self.held.clear();
        self.write_held.clear();
        self.held_ids.clear();
        self.write_held_ids.clear();
        self.vars.clear();
        self.reports.clear();
        self.locksets.reset();
    }

    fn ensure_gid(&mut self, gid: Gid) {
        let i = gid.index();
        while self.held.len() <= i {
            self.held.push(Lockset::new());
            self.write_held.push(Lockset::new());
            self.held_ids.push(LocksetId::EMPTY);
            self.write_held_ids.push(LocksetId::EMPTY);
        }
    }

    fn on_access(
        &mut self,
        gid: Gid,
        addr: Addr,
        object: &Arc<str>,
        kind: AccessKind,
        stack: StackId,
        loc: SourceLoc,
    ) {
        self.ensure_gid(gid);
        let held = self.held_ids[gid.index()];
        // The locks that actually protect an access of `kind`: writes are
        // only protected by exclusive-mode locks, reads by any mode.
        let effective = if kind.is_write() {
            self.write_held_ids[gid.index()]
        } else {
            held
        };
        let current = LastAccess {
            gid,
            kind,
            stack,
            loc,
            locks: held,
        };
        match self.vars.get_mut(&addr.0) {
            None => {
                self.vars.insert(
                    addr.0,
                    EraserVar {
                        object: object.clone(),
                        state: VarState::Exclusive(gid),
                        candidate: effective,
                        last: current,
                        reported: false,
                    },
                );
            }
            Some(var) => {
                let mut check = false;
                let prior = var.last;
                match var.state {
                    VarState::Exclusive(owner) if owner == gid => {
                        // Still exclusive; remember the most recent lockset
                        // but do not refine yet (classic Eraser).
                        var.candidate = effective;
                    }
                    VarState::Exclusive(_) => {
                        var.state = if kind.is_write() || var.last.kind.is_write() {
                            VarState::SharedModified
                        } else {
                            VarState::Shared
                        };
                        check = var.state == VarState::SharedModified;
                    }
                    VarState::Shared => {
                        if kind.is_write() {
                            var.state = VarState::SharedModified;
                            check = true;
                        }
                    }
                    VarState::SharedModified => {
                        check = true;
                    }
                }
                let refine = !matches!(var.state, VarState::Exclusive(_));
                var.last = current;
                let candidate = var.candidate;
                let reported = var.reported;
                let object = var.object.clone();
                let new_candidate = if refine {
                    self.locksets.intersect(candidate, effective)
                } else {
                    candidate
                };
                if let Some(var) = self.vars.get_mut(&addr.0) {
                    var.candidate = new_candidate;
                }
                if check && new_candidate == LocksetId::EMPTY && !reported {
                    // Suppress pairs where both sides used sync/atomic.
                    if !(kind.is_atomic() && prior.kind.is_atomic()) {
                        if let Some(var) = self.vars.get_mut(&addr.0) {
                            var.reported = true;
                        }
                        let report = RaceReport {
                            addr,
                            object,
                            prior: prior.to_race_access(&self.depot, &self.locksets),
                            current: current.to_race_access(&self.depot, &self.locksets),
                            detector: DetectorKind::Eraser,
                            program: None,
                            repro_seed: None,
                            repro: None,
                        };
                        self.reports.push(report);
                    }
                }
            }
        }
    }
}

impl Monitor for Eraser {
    fn on_run_start(&mut self, depot: &StackDepot) {
        self.reset();
        self.depot = depot.clone();
    }

    fn on_event(&mut self, event: &Event) {
        match &event.kind {
            EventKind::Access {
                addr,
                object,
                kind,
                stack,
                loc,
            } => {
                let object = object.clone();
                self.on_access(event.gid, *addr, &object, *kind, *stack, *loc);
            }
            EventKind::Acquire { lock, mode } => {
                self.ensure_gid(event.gid);
                let i = event.gid.index();
                self.held[i].insert(LockId::new(lock.0));
                self.held_ids[i] = self.locksets.intern(&self.held[i]);
                if *mode == LockMode::Write {
                    self.write_held[i].insert(LockId::new(lock.0));
                    self.write_held_ids[i] = self.locksets.intern(&self.write_held[i]);
                }
            }
            EventKind::Release { lock, .. } => {
                self.ensure_gid(event.gid);
                let i = event.gid.index();
                self.held[i].remove(LockId::new(lock.0));
                self.held_ids[i] = self.locksets.intern(&self.held[i]);
                if self.write_held[i].remove(LockId::new(lock.0)) {
                    self.write_held_ids[i] = self.locksets.intern(&self.write_held[i]);
                }
            }
            _ => {}
        }
    }

    fn shadow_words(&self) -> usize {
        // One candidate-set slot plus one last-access slot per tracked
        // variable — Eraser's shadow footprint is constant per variable.
        2 * self.vars.len()
    }
}
