//! The TSan-style combined detector: FastTrack verdicts + lockset context.
//!
//! Go's `-race` is ThreadSanitizer, which the paper describes as
//! "integrating lock-set and happens-before algorithms" (§1, §3.1). The
//! happens-before component decides *whether* two accesses race (precise,
//! no false positives under the observed schedule); the lockset component
//! enriches the report with which locks each side held, which is what makes
//! reports actionable for developers triaging partial-locking bugs
//! (Observation 10).

use grs_runtime::event::Event;
use grs_runtime::{Monitor, StackDepot};

use super::fasttrack::{FastTrack, FastTrackConfig};
use crate::report::{DetectorKind, RaceReport};

/// The combined detector — the default monitor for all experiments.
///
/// # Example
///
/// ```
/// use grs_detector::Tsan;
/// use grs_runtime::{Program, RunConfig, Runtime};
///
/// // Partial locking (§4.9.2): one side locks, the other forgets.
/// let p = Program::new("partial_lock", |ctx| {
///     let mu = ctx.mutex("mu");
///     let x = ctx.cell("x", 0i64);
///     let (mu2, x2) = (mu.clone(), x.clone());
///     ctx.go("locked-writer", move |ctx| {
///         mu2.lock(ctx);
///         ctx.write(&x2, 1);
///         mu2.unlock(ctx);
///     });
///     ctx.sleep(2);
///     let _ = ctx.read(&x); // no lock held!
/// });
/// let mut hit = None;
/// for seed in 0..30 {
///     let (_, tsan) = Runtime::new(RunConfig::with_seed(seed)).run(&p, Tsan::new());
///     if let Some(r) = tsan.into_reports().pop() { hit = Some(r); break; }
/// }
/// let report = hit.expect("race must be detected");
/// // The locked side held a lock; the racy read held none.
/// assert!(report.prior.locks_held.len() + report.current.locks_held.len() == 1);
/// ```
#[derive(Debug)]
pub struct Tsan {
    inner: FastTrack,
}

impl Default for Tsan {
    fn default() -> Self {
        Self::new()
    }
}

impl Tsan {
    /// A fresh combined detector.
    #[must_use]
    pub fn new() -> Self {
        Tsan {
            inner: FastTrack::with_config(FastTrackConfig {
                track_locksets: true,
                kind: DetectorKind::Tsan,
                ..FastTrackConfig::default()
            }),
        }
    }

    /// The races detected so far.
    #[must_use]
    pub fn reports(&self) -> &[RaceReport] {
        self.inner.reports()
    }

    /// Consumes the detector, returning its reports.
    #[must_use]
    pub fn into_reports(self) -> Vec<RaceReport> {
        self.inner.into_reports()
    }

    /// Number of memory accesses processed.
    #[must_use]
    pub fn accesses_processed(&self) -> u64 {
        self.inner.accesses_processed()
    }

    /// Takes the accumulated reports, leaving the detector reusable.
    pub fn take_reports(&mut self) -> Vec<RaceReport> {
        self.inner.take_reports()
    }

    /// Clears all per-run state, keeping allocations warm.
    pub fn reset(&mut self) {
        self.inner.reset();
    }
}

impl Monitor for Tsan {
    fn on_run_start(&mut self, depot: &StackDepot) {
        self.inner.on_run_start(depot);
    }

    fn on_event(&mut self, event: &Event) {
        self.inner.on_event(event);
    }

    fn shadow_words(&self) -> usize {
        self.inner.shadow_words()
    }
}
