//! Offline trace replay: feed a recorded [`Trace`] through any detector.
//!
//! Every detector in this crate is *schedule-independent*: its entire
//! analysis is a fold over the totally ordered event stream delivered to
//! `Monitor::on_event`, and the runtime's scheduler never consults the
//! monitor. FastTrack is literally defined over a trace (Flanagan &
//! Freund), and Eraser/TSan likewise only see events. That makes the
//! live-monitoring path and this offline path two drivers of the same
//! core — which is exactly what [`ReplayAnalyzer`] captures:
//!
//! * [`ReplayAnalyzer::begin_replay`] resets per-run shadow state and
//!   attaches the trace's rebuilt depot (the live path's `on_run_start`);
//! * [`ReplayAnalyzer::replay_event`] is the schedule-independent
//!   `on_event` core, unchanged;
//! * [`ReplayAnalyzer::finish_replay`] flushes and yields the reports.
//!
//! The replay driver ([`replay_trace`]) also mirrors the runtime kernel's
//! bookkeeping — events dispatched, peak shadow words sampled after every
//! event *and* once after the end-of-run flush — so a replayed run's
//! statistics are bit-identical to the live run's [`MonitorStats`], not
//! just its reports.
//!
//! [`MonitorStats`]: grs_runtime::MonitorStats

use grs_runtime::{DecodedTrace, Event, Monitor, StackDepot, Trace};

use crate::eraser::Eraser;
use crate::fasttrack::FastTrack;
use crate::report::RaceReport;
use crate::tsan::Tsan;

/// A detector core that can analyze a recorded trace offline.
///
/// Implemented by every algorithm in this crate (FastTrack, its
/// pure-vector-clock ablation, Eraser, and the TSan hybrid). The contract:
/// for a trace recorded from a live run, `begin_replay` + one
/// `replay_event` per recorded event + `finish_replay` must produce
/// reports bit-identical to what the same detector would have produced
/// monitoring that run live.
pub trait ReplayAnalyzer: Send {
    /// Starts a fresh analysis: clears per-run shadow state (allocations
    /// stay warm) and attaches the depot the trace's [`StackId`]s resolve
    /// through.
    ///
    /// [`StackId`]: grs_runtime::StackId
    fn begin_replay(&mut self, depot: &StackDepot);

    /// Consumes one recorded event — the same schedule-independent core
    /// the live `Monitor::on_event` path dispatches to.
    fn replay_event(&mut self, event: &Event);

    /// Finishes the analysis and takes the accumulated race reports,
    /// leaving the analyzer reusable for the next trace.
    fn finish_replay(&mut self) -> Vec<RaceReport>;

    /// Current shadow-word footprint (mirrors `Monitor::shadow_words`, so
    /// replayed peak-shadow statistics match live runs).
    fn replay_shadow_words(&self) -> usize;

    /// Consumes an entire batch-decoded event stream, returning the peak
    /// shadow-word count sampled after each event.
    ///
    /// The default implementation materializes each event from the SoA
    /// lanes and feeds it through [`ReplayAnalyzer::replay_event`] — i.e.
    /// it routes batch input through the scalar core, which is exactly what
    /// the legacy oracle detectors use, so flat-vs-oracle equivalence tests
    /// compare the batch hot loop against unchanged reference semantics.
    /// The flat detectors override this with a branch-light loop over the
    /// plain arrays (no `Event` materialization, no `Arc` clones).
    fn replay_decoded_events(&mut self, decoded: &DecodedTrace) -> usize {
        let mut peak = 0usize;
        for i in 0..decoded.len() {
            let event = decoded.event(i);
            self.replay_event(&event);
            peak = peak.max(self.replay_shadow_words());
        }
        peak
    }
}

/// The three concrete monitor types share one blanket bridge: their
/// `Monitor` impls are already pure event folds, so the replay hooks
/// delegate straight to them.
macro_rules! impl_replay_analyzer {
    ($($ty:ty),+) => {$(
        impl ReplayAnalyzer for $ty {
            fn begin_replay(&mut self, depot: &StackDepot) {
                Monitor::on_run_start(self, depot);
            }

            fn replay_event(&mut self, event: &Event) {
                Monitor::on_event(self, event);
            }

            fn finish_replay(&mut self) -> Vec<RaceReport> {
                Monitor::on_run_end(self);
                self.take_reports()
            }

            fn replay_shadow_words(&self) -> usize {
                Monitor::shadow_words(self)
            }

            fn replay_decoded_events(&mut self, decoded: &DecodedTrace) -> usize {
                self.replay_decoded_core(decoded)
            }
        }
    )+};
}

impl_replay_analyzer!(FastTrack, Eraser, Tsan);

/// What one offline analysis of a trace produced.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The races the analyzer reported, in detection order.
    pub reports: Vec<RaceReport>,
    /// Events fed to the analyzer — equals the live run's
    /// `events_dispatched` (the recorder saw every dispatched event).
    pub events: u64,
    /// Peak shadow words, sampled exactly like the live kernel does (after
    /// every event, and once more after the end-of-run flush).
    pub peak_shadow_words: usize,
}

/// Replays `trace` through `analyzer`, rebuilding the trace's depot
/// snapshot into `depot` first.
///
/// The rebuilt depot reproduces the recorded id assignment exactly
/// (first-intern order), so the `StackId`s carried by replayed access
/// events resolve to the same stacks the live run saw.
pub fn replay_trace(
    analyzer: &mut (impl ReplayAnalyzer + ?Sized),
    trace: &Trace,
    depot: &StackDepot,
) -> ReplayOutcome {
    trace.rebuild_depot_into(depot);
    replay_prepared(analyzer, trace, depot)
}

/// Replays `trace` through `analyzer` against a depot that *already* holds
/// the trace's stacks (e.g. rebuilt once and shared across several
/// analyzers by [`DetectorArena::replay_all`]).
///
/// [`DetectorArena::replay_all`]: crate::DetectorArena::replay_all
pub fn replay_prepared(
    analyzer: &mut (impl ReplayAnalyzer + ?Sized),
    trace: &Trace,
    depot: &StackDepot,
) -> ReplayOutcome {
    analyzer.begin_replay(depot);
    let mut peak = 0usize;
    for event in &trace.events {
        analyzer.replay_event(event);
        peak = peak.max(analyzer.replay_shadow_words());
    }
    let reports = analyzer.finish_replay();
    peak = peak.max(analyzer.replay_shadow_words());
    ReplayOutcome {
        reports,
        events: trace.events.len() as u64,
        peak_shadow_words: peak,
    }
}

/// Replays a batch-decoded trace through `analyzer` — the fast path.
///
/// Rebuilds the decoded depot snapshot into `depot`, then drives the
/// analyzer's batch loop over the SoA event lanes. Produces a
/// [`ReplayOutcome`] bit-identical to [`replay_trace`] on the equivalent
/// scalar-decoded [`Trace`] (same reports in the same order, same event
/// count, same peak-shadow sampling), while skipping per-event enum
/// materialization entirely.
pub fn replay_decoded(
    analyzer: &mut (impl ReplayAnalyzer + ?Sized),
    decoded: &DecodedTrace,
    depot: &StackDepot,
) -> ReplayOutcome {
    decoded.rebuild_depot_into(depot);
    replay_decoded_prepared(analyzer, decoded, depot)
}

/// [`replay_decoded`] against a depot that already holds the decoded
/// trace's stacks (rebuilt once and shared across several analyzers by the
/// arena's batch fan-out).
pub fn replay_decoded_prepared(
    analyzer: &mut (impl ReplayAnalyzer + ?Sized),
    decoded: &DecodedTrace,
    depot: &StackDepot,
) -> ReplayOutcome {
    analyzer.begin_replay(depot);
    let mut peak = analyzer.replay_decoded_events(decoded);
    let reports = analyzer.finish_replay();
    peak = peak.max(analyzer.replay_shadow_words());
    ReplayOutcome {
        reports,
        events: decoded.len() as u64,
        peak_shadow_words: peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::DetectorChoice;
    use grs_runtime::{record, Program, RunConfig};

    fn racy_program() -> Program {
        Program::new("racy_counter", |ctx| {
            let x = ctx.cell("x", 0i64);
            let mu = ctx.mutex("mu");
            let done = ctx.chan::<()>("done", 2);
            for g in 0..2 {
                let (x, mu, done) = (x.clone(), mu.clone(), done.clone());
                ctx.go("w", move |ctx| {
                    if g == 0 {
                        mu.lock(ctx);
                        ctx.update(&x, |v| v + 1);
                        mu.unlock(ctx);
                    } else {
                        ctx.update(&x, |v| v + 1);
                    }
                    done.send(ctx, ());
                });
            }
            for _ in 0..2 {
                let _ = done.recv(ctx);
            }
        })
    }

    #[test]
    fn replay_matches_live_for_every_algorithm() {
        let p = racy_program();
        for seed in 0..16 {
            let cfg = RunConfig::with_seed(seed);
            let (outcome, trace) = record(&p, &cfg);
            for choice in DetectorChoice::all_with_ablation() {
                let (live_o, live_r) = choice.run(&p, cfg.clone());
                let replayed = choice.replay(&trace);
                assert_eq!(replayed.events, live_o.stats.events_dispatched);
                assert_eq!(
                    replayed.peak_shadow_words, live_o.stats.peak_shadow_words,
                    "{choice} seed {seed}: shadow peak"
                );
                assert_eq!(outcome.steps, live_o.steps);
                assert_eq!(replayed.reports.len(), live_r.len(), "{choice} seed {seed}");
                for (a, b) in replayed.reports.iter().zip(live_r.iter()) {
                    assert_eq!(format!("{a}"), format!("{b}"), "{choice} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn analyzer_is_reusable_across_traces() {
        let p = racy_program();
        let depot = StackDepot::new();
        let mut ft = FastTrack::new();
        for seed in [3u64, 9, 3] {
            let (_, trace) = record(&p, &RunConfig::with_seed(seed));
            let (_, live) = DetectorChoice::FastTrack.run(&p, RunConfig::with_seed(seed));
            let out = replay_trace(&mut ft, &trace, &depot);
            assert_eq!(out.reports.len(), live.len(), "seed {seed}");
        }
    }
}
