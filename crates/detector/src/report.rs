//! Race reports: the detector output the deployment pipeline consumes.
//!
//! A report mirrors what the paper's workflow files as a bug (§3.3): the
//! conflicting address, the two calling contexts, and the access types.

use std::fmt;
use std::sync::Arc;

use grs_clock::Lockset;
use grs_runtime::{AccessKind, Addr, Gid, ReproArtifact, SourceLoc, Stack, StackId};

/// Which algorithm produced a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectorKind {
    /// Happens-before via FastTrack epochs.
    FastTrack,
    /// Happens-before via full vector clocks (ablation variant).
    PureVectorClock,
    /// Eraser-style locksets (may report false positives).
    Eraser,
    /// The combined TSan-style detector.
    Tsan,
}

impl fmt::Display for DetectorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DetectorKind::FastTrack => "fasttrack",
            DetectorKind::PureVectorClock => "pure-vc",
            DetectorKind::Eraser => "eraser",
            DetectorKind::Tsan => "tsan",
        };
        f.write_str(s)
    }
}

/// One side of a race: who accessed, how, and from where.
#[derive(Debug, Clone)]
pub struct RaceAccess {
    /// The accessing goroutine.
    pub gid: Gid,
    /// Read/write, atomic or plain.
    pub kind: AccessKind,
    /// Go-style calling context, materialized at record time (reports are
    /// rare, so the clone cost is paid off the hot path).
    pub stack: Stack,
    /// The depot id the stack was resolved from. Only meaningful together
    /// with the depot of the run that produced the report, and only until
    /// that depot is reset; `StackId::EMPTY` for reports built without a
    /// depot.
    pub stack_id: StackId,
    /// Source location of the access.
    pub loc: SourceLoc,
    /// Locks held at the access (filled by lockset-aware detectors; empty
    /// otherwise).
    pub locks_held: Lockset,
}

impl fmt::Display for RaceAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} by {} at {}\n    {}",
            self.kind, self.gid, self.loc, self.stack
        )
    }
}

/// A detected data race on one shadow address.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// The conflicting address.
    pub addr: Addr,
    /// Debug name of the object (e.g. `"myResults[header]"`).
    pub object: Arc<str>,
    /// The earlier access (in the observed schedule).
    pub prior: RaceAccess,
    /// The access that triggered the report.
    pub current: RaceAccess,
    /// Which detector produced the report.
    pub detector: DetectorKind,
    /// Name of the program under test (filled by the explorer).
    pub program: Option<Arc<str>>,
    /// The seed of the first run that exposed this race — the §3.4 "necessary
    /// instructions to reproduce": rerunning the program under this seed
    /// replays the interleaving deterministically (filled by the explorer).
    pub repro_seed: Option<u64>,
    /// The full reproduction artifact (seed + strategy + trace digest +
    /// optional `.grtrace` path) when the producing run was recorded or the
    /// filling harness knows its strategy. Supersedes `repro_seed`, which
    /// is kept as the bare-seed projection.
    pub repro: Option<ReproArtifact>,
}

impl RaceReport {
    /// True when at least one side is a write (always the case for HB
    /// detectors; also enforced by Eraser's state machine).
    #[must_use]
    pub fn involves_write(&self) -> bool {
        self.prior.kind.is_write() || self.current.kind.is_write()
    }

    /// The two stacks, in the (earlier, later) order they executed.
    #[must_use]
    pub fn stacks(&self) -> (&Stack, &Stack) {
        (&self.prior.stack, &self.current.stack)
    }

    /// A coarse within-run duplicate key: the conflicting object plus both
    /// source locations, orientation-insensitive. (The cross-run,
    /// line-insensitive fingerprint of §3.3.1 lives in `grs-deploy`.)
    #[must_use]
    pub fn site_key(&self) -> String {
        let mut locs = [
            format!("{}", self.prior.loc),
            format!("{}", self.current.loc),
        ];
        locs.sort();
        format!("{}|{}|{}", self.object, locs[0], locs[1])
    }
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "WARNING: DATA RACE ({})", self.detector)?;
        if let Some(p) = &self.program {
            writeln!(f, "  program: {p}")?;
        }
        writeln!(f, "  object: {} @ {}", self.object, self.addr)?;
        writeln!(f, "  {}", self.current)?;
        writeln!(f, "  previous {}", self.prior)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grs_runtime::Frame;

    fn access(gid: u32, kind: AccessKind, func: &str, line: u32) -> RaceAccess {
        RaceAccess {
            gid: Gid(gid),
            kind,
            stack: Stack::from_frames(vec![Frame {
                func: Arc::from(func),
                call_line: 0,
            }]),
            stack_id: StackId::EMPTY,
            loc: SourceLoc { file: "x.rs", line },
            locks_held: Lockset::new(),
        }
    }

    fn report(k1: AccessKind, l1: u32, k2: AccessKind, l2: u32) -> RaceReport {
        RaceReport {
            addr: Addr(1),
            object: Arc::from("x"),
            prior: access(0, k1, "main", l1),
            current: access(1, k2, "worker", l2),
            detector: DetectorKind::FastTrack,
            program: None,
            repro_seed: None,
            repro: None,
        }
    }

    #[test]
    fn involves_write_detects_writes() {
        assert!(report(AccessKind::Write, 1, AccessKind::Read, 2).involves_write());
        assert!(report(AccessKind::Read, 1, AccessKind::AtomicWrite, 2).involves_write());
        assert!(!report(AccessKind::Read, 1, AccessKind::Read, 2).involves_write());
    }

    #[test]
    fn site_key_is_orientation_insensitive() {
        let a = report(AccessKind::Write, 10, AccessKind::Read, 20);
        let mut b = report(AccessKind::Read, 20, AccessKind::Write, 10);
        std::mem::swap(&mut b.prior, &mut b.current);
        // b now has the same orientation as a; build the reversed one:
        let c = report(AccessKind::Read, 20, AccessKind::Write, 10);
        assert_eq!(a.site_key(), c.site_key());
    }

    #[test]
    fn display_mentions_data_race() {
        let r = report(AccessKind::Write, 1, AccessKind::Read, 2);
        let s = r.to_string();
        assert!(s.contains("DATA RACE"));
        assert!(s.contains("fasttrack"));
        assert!(s.contains("x.rs:1"));
        assert!(s.contains("x.rs:2"));
    }
}
