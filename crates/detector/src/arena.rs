//! Reusable detector state for run campaigns.
//!
//! A campaign executes thousands of short runs (§3.2's flakiness means each
//! program is rerun across many seeds). Constructing a fresh detector per run
//! throws away warmed-up shadow maps, vector-clock buffers, and the stack
//! depot's trie on every iteration. [`DetectorArena`] keeps one long-lived
//! instance of each detector plus one [`StackDepot`], and reuses them for
//! every run: [`Monitor::on_run_start`](grs_runtime::Monitor::on_run_start)
//! clears the *contents* at the start of each run but keeps the container
//! allocations, so steady-state campaign runs allocate close to nothing.
//!
//! Determinism is unaffected: `reset()` restores every detector (and the
//! depot, via [`Runtime::run_with_depot`]) to its initial logical state, so
//! a run through an arena produces byte-identical reports to a run through a
//! fresh detector — [`DetectorChoice::run`] and [`DetectorArena::run`] are
//! interchangeable, and the tests below pin that equivalence.

use grs_obs::{ObsSink, SpanGuard};
use grs_runtime::{DecodedTrace, Program, RunConfig, RunOutcome, Runtime, StackDepot, Trace};

use crate::eraser::Eraser;
use crate::explorer::DetectorChoice;
use crate::fasttrack::{FastTrack, FastTrackConfig};
#[cfg(feature = "oracle")]
use crate::legacy::{LegacyEraser, LegacyFastTrack, LegacyFastTrackConfig, LegacyTsan};
use crate::replay::{replay_decoded_prepared, replay_prepared, ReplayAnalyzer, ReplayOutcome};
use crate::report::RaceReport;
use crate::tsan::Tsan;

/// One long-lived instance of each detection algorithm plus a shared stack
/// depot, reused across runs.
///
/// # Example
///
/// ```
/// use grs_detector::{DetectorArena, DetectorChoice};
/// use grs_runtime::{Program, RunConfig};
///
/// let p = Program::new("racy", |ctx| {
///     let x = ctx.cell("x", 0i64);
///     let x2 = x.clone();
///     ctx.go("w", move |ctx| ctx.write(&x2, 1));
///     let _ = ctx.read(&x);
/// });
/// let mut arena = DetectorArena::new();
/// let mut racy = 0;
/// for seed in 0..8 {
///     let (_, reports) = arena.run(DetectorChoice::Hybrid, &p, RunConfig::with_seed(seed));
///     racy += usize::from(!reports.is_empty());
/// }
/// assert!(racy > 0);
/// ```
#[derive(Debug)]
pub struct DetectorArena {
    depot: StackDepot,
    fasttrack: FastTrack,
    pure_vc: FastTrack,
    eraser: Eraser,
    hybrid: Tsan,
    /// When set, every run/replay dispatches to the legacy HashMap-shadow
    /// detectors instead of the flat ones — the differential oracle the
    /// equivalence suite compares against (test/bench builds only).
    #[cfg(feature = "oracle")]
    legacy: Option<Box<LegacyDetectors>>,
}

/// The legacy detector set for oracle-mode arenas.
#[cfg(feature = "oracle")]
#[derive(Debug)]
struct LegacyDetectors {
    fasttrack: LegacyFastTrack,
    pure_vc: LegacyFastTrack,
    eraser: LegacyEraser,
    hybrid: LegacyTsan,
}

impl Default for DetectorArena {
    fn default() -> Self {
        Self::new()
    }
}

impl DetectorArena {
    /// A fresh arena. Detectors are built lazily-cheap (empty containers);
    /// they warm up over the first few runs.
    #[must_use]
    pub fn new() -> Self {
        DetectorArena {
            depot: StackDepot::new(),
            fasttrack: FastTrack::new(),
            pure_vc: FastTrack::with_config(FastTrackConfig::pure_vc()),
            eraser: Eraser::new(),
            hybrid: Tsan::new(),
            #[cfg(feature = "oracle")]
            legacy: None,
        }
    }

    /// An arena whose runs and replays go through the **legacy**
    /// HashMap-shadow detectors — the reference implementation the flat
    /// shadow memory is pinned against. Available in test/bench builds
    /// only (`oracle` feature).
    #[cfg(feature = "oracle")]
    #[must_use]
    pub fn new_oracle() -> Self {
        DetectorArena {
            legacy: Some(Box::new(LegacyDetectors {
                fasttrack: LegacyFastTrack::new(),
                pure_vc: LegacyFastTrack::with_config(LegacyFastTrackConfig::pure_vc()),
                eraser: LegacyEraser::new(),
                hybrid: LegacyTsan::new(),
            })),
            ..DetectorArena::new()
        }
    }

    /// Whether this arena dispatches to the legacy oracle detectors.
    #[cfg(feature = "oracle")]
    #[must_use]
    pub fn is_oracle(&self) -> bool {
        self.legacy.is_some()
    }

    /// The arena's stack depot. After a [`DetectorArena::run`], report
    /// `stack_id`s resolve through this depot until the next run resets it.
    #[must_use]
    pub fn depot(&self) -> &StackDepot {
        &self.depot
    }

    /// Executes one run of `program` under `choice`, reusing this arena's
    /// detector instance and depot. Equivalent to [`DetectorChoice::run`]
    /// report-for-report, minus the per-run allocations.
    pub fn run(
        &mut self,
        choice: DetectorChoice,
        program: &Program,
        cfg: RunConfig,
    ) -> (RunOutcome, Vec<RaceReport>) {
        #[cfg(feature = "oracle")]
        if self.legacy.is_some() {
            return self.run_legacy(choice, program, cfg);
        }
        let runtime = Runtime::new(cfg);
        // `run_with_depot` takes the monitor by value and hands it back; the
        // `mem::take` placeholder is an empty detector that is immediately
        // overwritten, so no warmed state is lost.
        match choice {
            DetectorChoice::FastTrack => {
                let m = std::mem::take(&mut self.fasttrack);
                let (o, mut m) = runtime.run_with_depot(program, m, &self.depot);
                let reports = m.take_reports();
                self.fasttrack = m;
                (o, reports)
            }
            DetectorChoice::PureVectorClock => {
                let m = std::mem::take(&mut self.pure_vc);
                let (o, mut m) = runtime.run_with_depot(program, m, &self.depot);
                let reports = m.take_reports();
                self.pure_vc = m;
                (o, reports)
            }
            DetectorChoice::Eraser => {
                let m = std::mem::take(&mut self.eraser);
                let (o, mut m) = runtime.run_with_depot(program, m, &self.depot);
                let reports = m.take_reports();
                self.eraser = m;
                (o, reports)
            }
            DetectorChoice::Hybrid => {
                let m = std::mem::take(&mut self.hybrid);
                let (o, mut m) = runtime.run_with_depot(program, m, &self.depot);
                let reports = m.take_reports();
                self.hybrid = m;
                (o, reports)
            }
        }
    }

    /// [`DetectorArena::run`] through the legacy oracle detectors.
    #[cfg(feature = "oracle")]
    fn run_legacy(
        &mut self,
        choice: DetectorChoice,
        program: &Program,
        cfg: RunConfig,
    ) -> (RunOutcome, Vec<RaceReport>) {
        let runtime = Runtime::new(cfg);
        let DetectorArena { depot, legacy, .. } = self;
        let legacy = legacy.as_mut().expect("checked by caller");
        match choice {
            DetectorChoice::FastTrack => {
                let m = std::mem::take(&mut legacy.fasttrack);
                let (o, mut m) = runtime.run_with_depot(program, m, depot);
                let reports = m.take_reports();
                legacy.fasttrack = m;
                (o, reports)
            }
            DetectorChoice::PureVectorClock => {
                let m = std::mem::take(&mut legacy.pure_vc);
                let (o, mut m) = runtime.run_with_depot(program, m, depot);
                let reports = m.take_reports();
                legacy.pure_vc = m;
                (o, reports)
            }
            DetectorChoice::Eraser => {
                let m = std::mem::take(&mut legacy.eraser);
                let (o, mut m) = runtime.run_with_depot(program, m, depot);
                let reports = m.take_reports();
                legacy.eraser = m;
                (o, reports)
            }
            DetectorChoice::Hybrid => {
                let m = std::mem::take(&mut legacy.hybrid);
                let (o, mut m) = runtime.run_with_depot(program, m, depot);
                let reports = m.take_reports();
                legacy.hybrid = m;
                (o, reports)
            }
        }
    }

    /// [`DetectorArena::run`] with observability: wraps the run in a
    /// `detector.analyze` span and reports the run's
    /// [`MonitorStats`](grs_runtime::MonitorStats) into `sink`. Detection
    /// results are identical to the unobserved path.
    pub fn run_observed(
        &mut self,
        choice: DetectorChoice,
        program: &Program,
        cfg: RunConfig,
        sink: &dyn ObsSink,
    ) -> (RunOutcome, Vec<RaceReport>) {
        let (outcome, reports) = {
            let _span = SpanGuard::enter(sink, "detector.analyze");
            self.run(choice, program, cfg)
        };
        sink.add("detector.runs", 1);
        outcome.stats.record_into(sink);
        (outcome, reports)
    }

    fn analyzer_mut(&mut self, choice: DetectorChoice) -> &mut dyn ReplayAnalyzer {
        #[cfg(feature = "oracle")]
        if let Some(legacy) = &mut self.legacy {
            return match choice {
                DetectorChoice::FastTrack => &mut legacy.fasttrack,
                DetectorChoice::PureVectorClock => &mut legacy.pure_vc,
                DetectorChoice::Eraser => &mut legacy.eraser,
                DetectorChoice::Hybrid => &mut legacy.hybrid,
            };
        }
        match choice {
            DetectorChoice::FastTrack => &mut self.fasttrack,
            DetectorChoice::PureVectorClock => &mut self.pure_vc,
            DetectorChoice::Eraser => &mut self.eraser,
            DetectorChoice::Hybrid => &mut self.hybrid,
        }
    }

    /// Analyzes a recorded trace offline under `choice`, reusing this
    /// arena's detector instance. Rebuilds the trace's depot snapshot into
    /// the arena depot, so report `stack_id`s resolve through
    /// [`DetectorArena::depot`] afterwards. Reports are bit-identical to a
    /// live [`DetectorArena::run`] of the recorded `(seed, strategy)`.
    pub fn replay(&mut self, choice: DetectorChoice, trace: &Trace) -> ReplayOutcome {
        trace.rebuild_depot_into(&self.depot);
        let depot = self.depot.clone();
        replay_prepared(self.analyzer_mut(choice), trace, &depot)
    }

    /// Fans one recorded trace through **all four** detector algorithms —
    /// the execute-once/analyze-many core of the replay campaign. The
    /// depot snapshot is rebuilt once and shared; each algorithm's reports
    /// are pinned bit-identical to its live run by the replay-fidelity
    /// tests.
    pub fn replay_all(&mut self, trace: &Trace) -> Vec<(DetectorChoice, ReplayOutcome)> {
        self.replay_many(trace, &DetectorChoice::all_with_ablation())
    }

    /// Fans one recorded trace through the given detector algorithms,
    /// rebuilding the depot snapshot once and sharing it — the campaign
    /// engine's path for arbitrary configured detector subsets.
    pub fn replay_many(
        &mut self,
        trace: &Trace,
        choices: &[DetectorChoice],
    ) -> Vec<(DetectorChoice, ReplayOutcome)> {
        self.replay_many_observed(trace, choices, &grs_obs::NULL_SINK)
    }

    /// [`DetectorArena::replay_many`] with observability: the depot rebuild
    /// is spanned as `replay.decode`, each offline analysis as
    /// `replay.analyze`, and every analysis reports the same stable
    /// counters a live observed run would (`detector.runs`,
    /// `runtime.events`, depot/shadow gauges) — which is what keeps the
    /// exported metrics identical between live and replay campaigns.
    pub fn replay_many_observed(
        &mut self,
        trace: &Trace,
        choices: &[DetectorChoice],
        sink: &dyn ObsSink,
    ) -> Vec<(DetectorChoice, ReplayOutcome)> {
        {
            let _span = SpanGuard::enter(sink, "replay.decode");
            trace.rebuild_depot_into(&self.depot);
        }
        let depot = self.depot.clone();
        choices
            .iter()
            .map(|&choice| {
                let out = {
                    let _span = SpanGuard::enter(sink, "replay.analyze");
                    replay_prepared(self.analyzer_mut(choice), trace, &depot)
                };
                sink.add("detector.runs", 1);
                sink.add("replay.analyses", 1);
                sink.add("runtime.events", out.events);
                sink.gauge_max("runtime.depot_stacks", trace.stacks.len() as u64);
                sink.gauge_max("detector.peak_shadow_words", out.peak_shadow_words as u64);
                (choice, out)
            })
            .collect()
    }

    /// The batch-decoded counterpart of
    /// [`DetectorArena::replay_many_observed`]: fans one [`DecodedTrace`]
    /// through the given algorithms via each analyzer's SoA hot loop. The
    /// depot snapshot is rebuilt once and shared; reports, event counts,
    /// peak-shadow samples, and every stable counter are bit-identical to
    /// the scalar path, with two extra replay-only counters
    /// (`replay.batches`, `replay.batch_events`) capturing batching volume.
    pub fn replay_many_decoded_observed(
        &mut self,
        decoded: &DecodedTrace,
        choices: &[DetectorChoice],
        sink: &dyn ObsSink,
    ) -> Vec<(DetectorChoice, ReplayOutcome)> {
        {
            let _span = SpanGuard::enter(sink, "replay.decode");
            decoded.rebuild_depot_into(&self.depot);
        }
        let depot = self.depot.clone();
        choices
            .iter()
            .map(|&choice| {
                let out = {
                    let _span = SpanGuard::enter(sink, "replay.analyze");
                    replay_decoded_prepared(self.analyzer_mut(choice), decoded, &depot)
                };
                sink.add("detector.runs", 1);
                sink.add("replay.analyses", 1);
                sink.add("runtime.events", out.events);
                sink.add("replay.batches", decoded.chunks);
                sink.add("replay.batch_events", out.events);
                sink.gauge_max("runtime.depot_stacks", decoded.stacks.len() as u64);
                sink.gauge_max("detector.peak_shadow_words", out.peak_shadow_words as u64);
                (choice, out)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grs_runtime::Strategy;

    fn racy_program() -> Program {
        Program::new("racy_counter", |ctx| {
            let x = ctx.cell("x", 0i64);
            let mu = ctx.mutex("mu");
            let done = ctx.chan::<()>("done", 2);
            for g in 0..2 {
                let (x, mu, done) = (x.clone(), mu.clone(), done.clone());
                ctx.go("w", move |ctx| {
                    if g == 0 {
                        mu.lock(ctx);
                        ctx.update(&x, |v| v + 1);
                        mu.unlock(ctx);
                    } else {
                        ctx.update(&x, |v| v + 1);
                    }
                    done.send(ctx, ());
                });
            }
            for _ in 0..2 {
                let _ = done.recv(ctx);
            }
        })
    }

    /// The arena path must be report-for-report identical to fresh
    /// detectors, for every algorithm, across interleavings — reuse is an
    /// allocation optimization, not a semantic change.
    #[test]
    fn arena_matches_fresh_detectors() {
        let p = racy_program();
        for choice in [
            DetectorChoice::FastTrack,
            DetectorChoice::PureVectorClock,
            DetectorChoice::Eraser,
            DetectorChoice::Hybrid,
        ] {
            let mut arena = DetectorArena::new();
            for seed in 0..24 {
                let cfg = RunConfig {
                    seed,
                    strategy: Strategy::Random,
                    ..RunConfig::default()
                };
                let (fresh_o, fresh_r) = choice.run(&p, cfg.clone());
                let (arena_o, arena_r) = arena.run(choice, &p, cfg);
                assert_eq!(fresh_o.steps, arena_o.steps, "{choice} seed {seed}");
                assert_eq!(fresh_r.len(), arena_r.len(), "{choice} seed {seed}");
                for (a, b) in fresh_r.iter().zip(arena_r.iter()) {
                    assert_eq!(a.site_key(), b.site_key(), "{choice} seed {seed}");
                    assert_eq!(
                        format!("{a}"),
                        format!("{b}"),
                        "{choice} seed {seed}: full report text must match"
                    );
                }
            }
        }
    }

    /// Run stats flow through the arena path: events are counted and the
    /// depot holds the last run's stacks.
    #[test]
    fn arena_runs_carry_stats() {
        let p = racy_program();
        let mut arena = DetectorArena::new();
        let (o, _) = arena.run(DetectorChoice::Hybrid, &p, RunConfig::with_seed(3));
        assert!(o.stats.events_dispatched > 0);
        assert!(o.stats.depot.stacks > 0);
        assert!(!arena.depot().is_empty());
    }
}
