//! Coverage-guided schedule exploration: mutate recorded schedules toward
//! novel interleavings instead of drawing fresh seeds blindly.
//!
//! The plain [`Explorer`](crate::Explorer) treats every run as independent
//! — seed `i` learns nothing from seed `i - 1`. That mirrors the paper's
//! deployment (rerun the tests daily and hope), and it converges slowly on
//! interleavings that random walks rarely visit. The guided explorer
//! closes the loop: every run comes back with a coverage signature and the
//! full [`ScheduleTrace`] of decisions it took, novel runs enter a
//! frontier, and subsequent runs *mutate* a frontier schedule — truncate
//! it at a random decision point, flip that decision to a different
//! runnable goroutine, and let the base strategy schedule the rest —
//! rather than starting from scratch.
//!
//! Mutated runs stay fully reproducible: the interleaving is a pure
//! function of `(seed, prefix)`, so each race report carries a
//! [`ReproArtifact`] with the prefix attached
//! ([`ReproArtifact::guided`]), and replaying that seed with
//! `RunConfig::schedule_prefix` re-triggers the race deterministically.
//!
//! Setting [`GuidedConfig::corpus`] to the whole budget disables mutation
//! and degenerates to fresh-seed exploration under the base strategy —
//! which is exactly the random/PCT baseline arm of the convergence
//! ablation, so one code path produces every curve being compared.

use std::collections::{HashSet, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use grs_runtime::{
    calibrate_steps, Program, ReproArtifact, RunConfig, ScheduleTrace, Strategy,
};

use crate::explorer::DetectorChoice;
use crate::report::RaceReport;

/// Parameters of one guided exploration.
#[derive(Debug, Clone)]
pub struct GuidedConfig {
    /// Total executions (corpus runs + mutated runs).
    pub budget: usize,
    /// Fresh-seed runs executed before mutation starts; also the fallback
    /// when the frontier is empty. Clamped to `budget`.
    pub corpus: usize,
    /// First seed; execution `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Base strategy: schedules corpus runs and the suffix of every
    /// mutated run after its prefix is exhausted.
    pub strategy: Strategy,
    /// Per-run step budget.
    pub max_steps: u64,
    /// Detection algorithm for every run.
    pub detector: DetectorChoice,
    /// Most recent novel schedules kept as mutation candidates; older
    /// entries are evicted first.
    pub frontier_cap: usize,
}

impl GuidedConfig {
    /// A guided exploration of `budget` executions with the default knobs.
    #[must_use]
    pub fn new(budget: usize) -> Self {
        GuidedConfig {
            budget,
            corpus: (budget / 8).clamp(1, 16),
            base_seed: 1,
            strategy: Strategy::Random,
            max_steps: 1_000_000,
            detector: DetectorChoice::Hybrid,
            frontier_cap: 32,
        }
    }

    /// The ablation baseline: the same budget spent entirely on fresh
    /// seeds under `strategy`, with mutation disabled.
    #[must_use]
    pub fn baseline(budget: usize, strategy: Strategy) -> Self {
        GuidedConfig::new(budget).corpus(budget).strategy(strategy)
    }

    /// Sets the corpus size (builder style).
    #[must_use]
    pub fn corpus(mut self, corpus: usize) -> Self {
        self.corpus = corpus;
        self
    }

    /// Sets the base seed (builder style).
    #[must_use]
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Sets the base strategy (builder style).
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the detection algorithm (builder style).
    #[must_use]
    pub fn detector(mut self, detector: DetectorChoice) -> Self {
        self.detector = detector;
        self
    }

    /// Sets the per-run step budget (builder style).
    #[must_use]
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }
}

/// Aggregated result of one guided exploration.
#[derive(Debug)]
pub struct GuidedResult {
    /// Program name.
    pub program: String,
    /// Executions performed (`== budget`).
    pub executions: usize,
    /// Distinct races across all runs (dedup by site), each carrying a
    /// `(seed, prefix)` [`ReproArtifact`].
    pub unique_races: Vec<RaceReport>,
    /// Distinct coverage signatures observed — the novelty map size.
    pub novel_signatures: usize,
    /// Executions that ran a mutated schedule prefix (the rest were
    /// fresh-seed corpus runs).
    pub mutated_runs: usize,
    /// `convergence[i]` = unique races known after execution `i` — the
    /// executions-to-N-races curve of the scheduler ablation, unsampled.
    pub convergence: Vec<usize>,
}

impl GuidedResult {
    /// True when any run exposed a race.
    #[must_use]
    pub fn found_race(&self) -> bool {
        !self.unique_races.is_empty()
    }

    /// The first execution count (1-based) at which `n` unique races were
    /// known, or `None` if the exploration never got there.
    #[must_use]
    pub fn executions_to(&self, n: usize) -> Option<usize> {
        if n == 0 {
            return Some(0);
        }
        self.convergence.iter().position(|&u| u >= n).map(|i| i + 1)
    }
}

/// The feedback state of one guided exploration: the novelty map of
/// coverage signatures plus the frontier of schedules that produced them.
///
/// Shared between [`GuidedExplorer`] and the fleet engine's adaptive
/// campaign mode — both drive the same propose/observe loop, so per-unit
/// exploration behaves identically whether it runs standalone or inside a
/// campaign. Fully deterministic: the proposal stream is a pure function
/// of the construction seed and the observed `(coverage, schedule)`
/// sequence.
#[derive(Debug, Clone)]
pub struct ScheduleFrontier {
    rng: StdRng,
    corpus: usize,
    frontier_cap: usize,
    seen: HashSet<u64>,
    frontier: VecDeque<ScheduleTrace>,
}

impl ScheduleFrontier {
    /// A frontier whose mutation choices are driven by `seed`; the first
    /// `corpus` proposals are always fresh runs, and at most
    /// `frontier_cap` novel schedules are kept as mutation candidates.
    #[must_use]
    pub fn new(seed: u64, corpus: usize, frontier_cap: usize) -> Self {
        ScheduleFrontier {
            // Mutation choices draw from their own stream so run seeds
            // stay the plain `base_seed + i` ladder the repro artifacts
            // quote.
            rng: StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
            corpus: corpus.max(1),
            frontier_cap: frontier_cap.max(1),
            seen: HashSet::new(),
            frontier: VecDeque::new(),
        }
    }

    /// Proposes the schedule prefix for execution `exec`: `None` while the
    /// corpus is being seeded (or the frontier is empty), a mutated prefix
    /// afterwards.
    pub fn propose(&mut self, exec: usize) -> Option<ScheduleTrace> {
        if exec < self.corpus || self.frontier.is_empty() {
            None
        } else {
            self.mutate()
        }
    }

    /// Feeds one finished run back: a novel coverage signature admits its
    /// schedule to the frontier (evicting the oldest past the cap).
    /// Returns whether the signature was novel.
    pub fn observe(&mut self, coverage: u64, schedule: ScheduleTrace) -> bool {
        let novel = self.seen.insert(coverage);
        if novel {
            self.frontier.push_back(schedule);
            if self.frontier.len() > self.frontier_cap {
                self.frontier.pop_front();
            }
        }
        novel
    }

    /// Distinct coverage signatures observed so far.
    #[must_use]
    pub fn novel_signatures(&self) -> usize {
        self.seen.len()
    }

    /// Truncates a frontier schedule at a random decision and flips that
    /// decision to a different position in its runnable set. When the
    /// decision had arity 1 there is nothing to flip; the truncation alone
    /// still diversifies the suffix (it resumes under the base strategy
    /// with a fresh seed).
    fn mutate(&mut self) -> Option<ScheduleTrace> {
        let candidate = self.frontier.get(self.rng.gen_range(0..self.frontier.len()))?;
        if candidate.is_empty() {
            return None;
        }
        let cut = self.rng.gen_range(0..candidate.len());
        let mut prefix = candidate.prefix(cut + 1);
        let d = prefix.decisions.last_mut().expect("prefix of cut+1 >= 1");
        if d.arity > 1 {
            d.chosen = (d.chosen + self.rng.gen_range(1..d.arity)) % d.arity;
        }
        Some(prefix)
    }
}

/// The feedback-driven explorer: novelty map + schedule frontier +
/// prefix mutation. See the module docs.
#[derive(Debug, Clone)]
pub struct GuidedExplorer {
    config: GuidedConfig,
}

impl GuidedExplorer {
    /// An explorer with the given configuration.
    #[must_use]
    pub fn new(config: GuidedConfig) -> Self {
        GuidedExplorer { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &GuidedConfig {
        &self.config
    }

    /// Explores `program` under the feedback loop, returning the deduped
    /// races and the full convergence curve. Deterministic: the whole
    /// exploration is a pure function of the config.
    #[must_use]
    pub fn explore(&self, program: &Program) -> GuidedResult {
        let cfg = &self.config;
        // PCT change points must land inside the run to mean anything;
        // calibrate the horizon against the program's observed length.
        let pct_horizon = match cfg.strategy {
            Strategy::Pct { .. } => calibrate_steps(program, cfg.max_steps),
            _ => 1_000,
        };
        let mut frontier = ScheduleFrontier::new(cfg.base_seed, cfg.corpus, cfg.frontier_cap);
        let mut seen_sites = HashSet::new();
        let mut result = GuidedResult {
            program: program.name().to_string(),
            executions: 0,
            unique_races: Vec::new(),
            novel_signatures: 0,
            mutated_runs: 0,
            convergence: Vec::with_capacity(cfg.budget),
        };
        for exec in 0..cfg.budget {
            let seed = cfg.base_seed + exec as u64;
            let prefix = frontier.propose(exec);
            let mut run_cfg = RunConfig {
                seed,
                strategy: cfg.strategy,
                max_steps: cfg.max_steps,
                ..RunConfig::default()
            }
            .pct_horizon(pct_horizon);
            if let Some(p) = &prefix {
                run_cfg = run_cfg.schedule_prefix(p.clone());
                result.mutated_runs += 1;
            }
            let (outcome, reports) = cfg.detector.run(program, run_cfg);
            frontier.observe(outcome.coverage, outcome.schedule);
            for mut r in reports {
                r.program = Some(std::sync::Arc::from(program.name()));
                r.repro_seed = Some(seed);
                r.repro = Some(match &prefix {
                    Some(p) => ReproArtifact::guided(seed, cfg.strategy, p.clone()),
                    None => ReproArtifact::seeded(seed, cfg.strategy),
                });
                if seen_sites.insert(r.site_key()) {
                    result.unique_races.push(r);
                }
            }
            result.executions += 1;
            result.convergence.push(result.unique_races.len());
        }
        result.novel_signatures = frontier.novel_signatures();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grs_runtime::Runtime;

    /// A two-phase race: the second worker only races when the schedule
    /// lets both leave the barrier-ish channel dance in the rare order.
    fn racy_program() -> Program {
        Program::new("guided_racy", |ctx| {
            let x = ctx.cell("x", 0i64);
            let done = ctx.chan::<()>("done", 2);
            for _ in 0..2 {
                let (x, done) = (x.clone(), done.clone());
                ctx.go("w", move |ctx| {
                    ctx.update(&x, |v| v + 1);
                    done.send(ctx, ());
                });
            }
            for _ in 0..2 {
                let _ = done.recv(ctx);
            }
        })
    }

    #[test]
    fn guided_exploration_finds_races_and_tracks_convergence() {
        let r = GuidedExplorer::new(GuidedConfig::new(24).base_seed(3)).explore(&racy_program());
        assert_eq!(r.executions, 24);
        assert_eq!(r.convergence.len(), 24);
        assert!(r.found_race());
        assert!(r.novel_signatures >= 1);
        assert!(r.mutated_runs > 0, "mutation loop never engaged");
        // Convergence is monotone and ends at the dedup total.
        assert!(r.convergence.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*r.convergence.last().unwrap(), r.unique_races.len());
        assert_eq!(r.executions_to(1), Some(r.convergence.iter().position(|&u| u >= 1).unwrap() + 1));
        assert_eq!(r.executions_to(0), Some(0));
        assert_eq!(r.executions_to(usize::MAX), None);
    }

    #[test]
    fn guided_exploration_is_deterministic() {
        let run = || {
            let r = GuidedExplorer::new(GuidedConfig::new(16).base_seed(7)).explore(&racy_program());
            (
                r.convergence.clone(),
                r.novel_signatures,
                r.unique_races.iter().map(RaceReport::site_key).collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn baseline_config_never_mutates() {
        let r = GuidedExplorer::new(GuidedConfig::baseline(12, Strategy::Random))
            .explore(&racy_program());
        assert_eq!(r.mutated_runs, 0);
        assert_eq!(r.executions, 12);
    }

    /// A schedule-dependent race: main only writes `x` when it observes
    /// the worker's `y` flag, so the `x` race is exposed only under
    /// interleavings that run the worker ahead of main's check.
    fn rare_racy_program() -> Program {
        Program::new("guided_rare", |ctx| {
            let x = ctx.cell("x", 0i64);
            let y = ctx.cell("y", 0i64);
            let done = ctx.chan::<()>("done", 1);
            let (x2, y2, done2) = (x.clone(), y.clone(), done.clone());
            ctx.go("w", move |ctx| {
                ctx.write(&y2, 1);
                ctx.write(&x2, 1);
                done2.send(ctx, ());
            });
            if ctx.read(&y) == 1 {
                ctx.write(&x, 2);
            }
            let _ = done.recv(ctx);
        })
    }

    /// The acceptance property of the whole exploration layer: a guided
    /// race is reproducible from its `(seed, prefix)` artifact alone.
    #[test]
    fn guided_races_reproduce_from_their_artifact() {
        let program = rare_racy_program();
        let r = GuidedExplorer::new(GuidedConfig::new(32).base_seed(1).corpus(1))
            .explore(&program);
        let guided_race = r
            .unique_races
            .iter()
            .find(|r| {
                r.repro
                    .as_ref()
                    .is_some_and(|a| a.schedule_prefix.is_some())
            })
            .expect("no race was found on a mutated schedule");
        let artifact = guided_race.repro.clone().unwrap();
        let cfg = RunConfig {
            seed: artifact.seed,
            strategy: artifact.strategy,
            ..RunConfig::default()
        }
        .schedule_prefix(artifact.schedule_prefix.clone().unwrap());
        let (_, reports) = DetectorChoice::Hybrid.run(&program, cfg.clone());
        assert!(
            reports.iter().any(|rep| rep.site_key() == guided_race.site_key()),
            "replaying {artifact} did not re-trigger the race"
        );
        // And the replay is schedule-deterministic: same prefix, same trace.
        let (o1, _) = Runtime::new(cfg.clone()).run(&program, grs_runtime::TraceHasher::new());
        let (o2, _) = Runtime::new(cfg).run(&program, grs_runtime::TraceHasher::new());
        assert_eq!(o1.schedule, o2.schedule);
        assert_eq!(o1.coverage, o2.coverage);
    }
}

