//! The FastTrack happens-before race detector.
//!
//! FastTrack (Flanagan & Freund, PLDI 2009) is the happens-before component
//! of ThreadSanitizer: per-goroutine vector clocks advance at release
//! operations and join at acquire operations, and each shared variable
//! keeps a shadow of its last write (an [`Epoch`]) and its read history (an
//! epoch, inflated to a vector clock only while reads are concurrent).
//!
//! The [`FastTrackConfig`]'s `pure_vc` flag disables the epoch fast path and
//! keeps full vector clocks for every shadow slot — same verdicts, more
//! work — which the ablation benchmark uses to measure what the epoch
//! optimization buys (the original paper reports most accesses hit the
//! O(1) path).
//!
//! Happens-before edges follow the Go memory model as emitted by the
//! runtime: spawn, mutex/rwlock release→acquire, channel send→receive,
//! receive→send-completion (rendezvous/backpressure), close→recv-closed,
//! `WaitGroup` done→wait, `Once` execution→observation, and `sync/atomic`
//! release/acquire on the accessed address.
//!
//! # Flat shadow memory
//!
//! The runtime's kernel allocates every object id — addresses, locks,
//! channels, wait groups, once cells — from one dense per-run counter, so
//! all shadow tables here are flat `Vec`s indexed by the id itself instead
//! of `HashMap<u64, _>`s: a variable access costs one bounds-checked array
//! index, not a hash probe. The concurrent-read history is a tid-sorted
//! small vector (iteration order matches the old sorted-HashMap walk, so
//! report order is bit-identical), and the legacy HashMap implementation
//! survives under the test-only `oracle` feature (`crate::legacy`) as the
//! differential oracle pinning this rewrite.

use std::sync::Arc;

use grs_clock::{Epoch, LockId, Lockset, LocksetId, LocksetInterner, Tid, VectorClock};
use grs_runtime::event::{Event, EventKind, LockMode};
use grs_runtime::{
    AccessKind, Addr, DecodedTrace, Gid, Monitor, SourceLoc, StackDepot, StackId,
};

use crate::report::{DetectorKind, RaceAccess, RaceReport};

/// Configuration for [`FastTrack`].
#[derive(Debug, Clone)]
pub struct FastTrackConfig {
    /// Disable the epoch fast path; keep full vector clocks everywhere.
    pub pure_vc: bool,
    /// Track per-goroutine locksets and attach them to reports.
    pub track_locksets: bool,
    /// Stop recording after this many reports (guards memory on extremely
    /// racy programs; the paper's detector similarly caps per-run output).
    pub max_reports: usize,
    /// Label attached to the reports.
    pub kind: DetectorKind,
}

impl Default for FastTrackConfig {
    fn default() -> Self {
        FastTrackConfig {
            pure_vc: false,
            track_locksets: false,
            max_reports: 256,
            kind: DetectorKind::FastTrack,
        }
    }
}

impl FastTrackConfig {
    /// The pure-vector-clock ablation variant.
    #[must_use]
    pub fn pure_vc() -> Self {
        FastTrackConfig {
            pure_vc: true,
            kind: DetectorKind::PureVectorClock,
            ..FastTrackConfig::default()
        }
    }
}

/// One recorded access (for the "previous access" half of a report).
///
/// `Copy`: the stack is a depot id and the lockset an interner id, so
/// storing shadow history per variable moves two `u32`s instead of cloning
/// frame vectors — the heart of this detector's hot-path refactor.
#[derive(Debug, Clone, Copy)]
struct AccessInfo {
    gid: Gid,
    kind: AccessKind,
    stack: StackId,
    loc: SourceLoc,
    locks: LocksetId,
}

impl AccessInfo {
    /// Materializes the compact ids into a report half (report paths only).
    fn to_race_access(self, depot: &StackDepot, locksets: &LocksetInterner) -> RaceAccess {
        RaceAccess {
            gid: self.gid,
            kind: self.kind,
            stack: depot.resolve(self.stack),
            stack_id: self.stack,
            loc: self.loc,
            locks_held: locksets.get(self.locks).clone(),
        }
    }
}

/// One entry of the concurrent-read history: the reading goroutine, its
/// clock at the read, and the access metadata for reports.
#[derive(Debug, Clone, Copy)]
struct SharedRead {
    tid: u32,
    clk: u32,
    info: AccessInfo,
}

/// Read history of one variable.
#[derive(Debug)]
enum ReadState {
    /// No read yet.
    None,
    /// Totally ordered reads: the maximal one as an epoch.
    Exclusive(Epoch, AccessInfo),
    /// Concurrent reads: per-goroutine last-read clock (FastTrack's
    /// "read-shared" inflation), kept sorted by tid so iteration — and
    /// therefore report order — is deterministic without a sort per write.
    Shared(Vec<SharedRead>),
}

/// Inserts or replaces `tid`'s entry, keeping the vector sorted by tid.
fn shared_insert(reads: &mut Vec<SharedRead>, tid: u32, clk: u32, info: AccessInfo) {
    match reads.binary_search_by_key(&tid, |e| e.tid) {
        Ok(i) => reads[i] = SharedRead { tid, clk, info },
        Err(i) => reads.insert(i, SharedRead { tid, clk, info }),
    }
}

/// Shadow state of one variable — one fixed-size slot in the flat
/// variable table.
#[derive(Debug)]
struct VarShadow {
    /// Whether this slot has ever been touched by an access (the flat
    /// table also holds never-accessed slots for ids that name locks or
    /// channels; those don't count as shadow words).
    touched: bool,
    write_epoch: Epoch,
    /// Full clock of the writer at the last write (kept only in `pure_vc`
    /// mode, where it replaces the epoch comparison).
    write_clock: Option<VectorClock>,
    write_info: Option<AccessInfo>,
    read: ReadState,
    /// Release/acquire clock for `sync/atomic` operations on this address.
    sync_clock: VectorClock,
}

impl Default for VarShadow {
    fn default() -> Self {
        VarShadow {
            touched: false,
            write_epoch: Epoch::ZERO,
            write_clock: None,
            write_info: None,
            read: ReadState::None,
            sync_clock: VectorClock::new(),
        }
    }
}

#[derive(Debug, Default)]
struct LockShadow {
    write_release: VectorClock,
    read_release: VectorClock,
}

#[derive(Debug, Default)]
struct ChanShadow {
    /// In-flight send clocks by send sequence number. Entries are removed
    /// when matched, so these maps stay as small as the channel's buffer.
    send_clocks: std::collections::HashMap<u64, VectorClock>,
    recv_clocks: std::collections::HashMap<u64, VectorClock>,
    close_clock: Option<VectorClock>,
}

/// Grows `v` with defaults so index `i` exists, then returns the slot.
#[inline]
fn slot<T: Default>(v: &mut Vec<T>, i: usize) -> &mut T {
    if v.len() <= i {
        v.resize_with(i + 1, T::default);
    }
    &mut v[i]
}

/// The FastTrack monitor. Create one per run and pass it to
/// [`grs_runtime::Runtime::run`]; collect [`FastTrack::reports`] afterwards.
///
/// # Example
///
/// ```
/// use grs_detector::FastTrack;
/// use grs_runtime::{Program, RunConfig, Runtime};
///
/// let racy = Program::new("unlocked", |ctx| {
///     let x = ctx.cell("x", 0i64);
///     let x2 = x.clone();
///     ctx.go("writer", move |ctx| ctx.write(&x2, 1));
///     ctx.sleep(2);
///     let _ = ctx.read(&x);
/// });
/// let mut any = false;
/// for seed in 0..20 {
///     let (_, ft) = Runtime::new(RunConfig::with_seed(seed)).run(&racy, FastTrack::new());
///     any |= !ft.reports().is_empty();
/// }
/// assert!(any, "some schedule must expose the race");
/// ```
#[derive(Debug)]
pub struct FastTrack {
    cfg: FastTrackConfig,
    /// Depot of the current run (attached by [`Monitor::on_run_start`]);
    /// used only to materialize reports.
    depot: StackDepot,
    /// Interned locksets; shadow history stores [`LocksetId`]s.
    locksets: LocksetInterner,
    clocks: Vec<VectorClock>,
    held: Vec<Lockset>,
    /// Interned id of each goroutine's current `held` set, refreshed on
    /// acquire/release so accesses copy a `u32`.
    held_ids: Vec<LocksetId>,
    /// Flat shadow tables indexed by the kernel's dense object ids.
    locks: Vec<LockShadow>,
    chans: Vec<ChanShadow>,
    wg_done: Vec<VectorClock>,
    once_done: Vec<VectorClock>,
    vars: Vec<VarShadow>,
    reports: Vec<RaceReport>,
    seen_sites: std::collections::HashSet<String>,
    /// Scratch buffer for the race pairs one access uncovers; a field so
    /// the hot path never constructs (or drops) a fresh `Vec` per event.
    /// Always left empty between accesses.
    found: Vec<(AccessInfo, AccessInfo)>,
    accesses_processed: u64,
    epoch_fast_hits: u64,
    /// Live shadow-word count (per-variable fixed slots + read history),
    /// maintained incrementally so [`Monitor::shadow_words`] is O(1).
    shadow_words: usize,
}

impl Default for FastTrack {
    fn default() -> Self {
        Self::new()
    }
}

impl FastTrack {
    /// A detector with the default (epoch-optimized) configuration.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(FastTrackConfig::default())
    }

    /// A detector with an explicit configuration.
    #[must_use]
    pub fn with_config(cfg: FastTrackConfig) -> Self {
        FastTrack {
            cfg,
            depot: StackDepot::new(),
            locksets: LocksetInterner::new(),
            clocks: Vec::new(),
            held: Vec::new(),
            held_ids: Vec::new(),
            locks: Vec::new(),
            chans: Vec::new(),
            wg_done: Vec::new(),
            once_done: Vec::new(),
            vars: Vec::new(),
            reports: Vec::new(),
            seen_sites: std::collections::HashSet::new(),
            found: Vec::new(),
            accesses_processed: 0,
            epoch_fast_hits: 0,
            shadow_words: 0,
        }
    }

    /// The races detected so far.
    #[must_use]
    pub fn reports(&self) -> &[RaceReport] {
        &self.reports
    }

    /// Consumes the detector, returning its reports.
    #[must_use]
    pub fn into_reports(self) -> Vec<RaceReport> {
        self.reports
    }

    /// Takes the accumulated reports, leaving the detector reusable (the
    /// arena path: take reports, `reset()`, run again).
    pub fn take_reports(&mut self) -> Vec<RaceReport> {
        std::mem::take(&mut self.reports)
    }

    /// Clears all per-run state while keeping container allocations warm,
    /// so one detector can monitor thousands of campaign runs without
    /// reallocating its shadow tables. Called automatically at the start of
    /// every run (see [`Monitor::on_run_start`]).
    pub fn reset(&mut self) {
        self.clocks.clear();
        self.held.clear();
        self.held_ids.clear();
        self.locks.clear();
        self.chans.clear();
        self.wg_done.clear();
        self.once_done.clear();
        self.vars.clear();
        self.reports.clear();
        self.seen_sites.clear();
        self.accesses_processed = 0;
        self.epoch_fast_hits = 0;
        self.shadow_words = 0;
        self.locksets.reset();
    }

    /// Number of memory accesses processed.
    #[must_use]
    pub fn accesses_processed(&self) -> u64 {
        self.accesses_processed
    }

    /// How many accesses were resolved entirely on the O(1) epoch path —
    /// the statistic the FastTrack paper's speedup rests on.
    #[must_use]
    pub fn epoch_fast_hits(&self) -> u64 {
        self.epoch_fast_hits
    }

    fn clock_mut(&mut self, gid: Gid) -> &mut VectorClock {
        let i = gid.index();
        while self.clocks.len() <= i {
            let t = self.clocks.len() as u32;
            let mut c = VectorClock::new();
            c.set(Tid::new(t), 1);
            self.clocks.push(c);
            self.held.push(Lockset::new());
            self.held_ids.push(LocksetId::EMPTY);
        }
        &mut self.clocks[i]
    }

    #[inline]
    fn ensure_tid(&mut self, gid: Gid) {
        if self.clocks.len() <= gid.index() {
            let _ = self.clock_mut(gid);
        }
    }

    fn tick(&mut self, gid: Gid) {
        let t = Tid::new(gid.0);
        self.clock_mut(gid).tick(t);
    }

    #[cold]
    fn record(
        &mut self,
        addr: Addr,
        object: &Arc<str>,
        prior: AccessInfo,
        current: AccessInfo,
    ) {
        if self.reports.len() >= self.cfg.max_reports {
            return;
        }
        // Materialize stacks/locksets only now — reports are rare.
        let report = RaceReport {
            addr,
            object: object.clone(),
            prior: prior.to_race_access(&self.depot, &self.locksets),
            current: current.to_race_access(&self.depot, &self.locksets),
            detector: self.cfg.kind,
            program: None,
            repro_seed: None,
            repro: None,
        };
        if self.seen_sites.insert(report.site_key()) {
            self.reports.push(report);
        }
    }

    #[inline]
    fn on_access(
        &mut self,
        gid: Gid,
        addr: Addr,
        object: &Arc<str>,
        kind: AccessKind,
        stack: StackId,
        loc: SourceLoc,
    ) {
        self.ensure_tid(gid);
        self.accesses_processed += 1;
        let tid = Tid::new(gid.0);
        let gi = gid.index();
        let vi = addr.0 as usize;
        if self.vars.len() <= vi {
            self.vars.resize_with(vi + 1, VarShadow::default);
        }
        let locks = if self.cfg.track_locksets {
            self.held_ids[gi]
        } else {
            LocksetId::EMPTY
        };
        let info = AccessInfo {
            gid,
            kind,
            stack,
            loc,
            locks,
        };
        // Atomic acquire side: an atomic read (or RMW) joins the address's
        // sync clock *before* race checks, so atomic-synchronized plain
        // accesses are correctly ordered. (An untouched slot's sync clock
        // is empty — joining it is a no-op, matching the old map miss.)
        if kind.is_atomic() {
            let (clocks, vars) = (&mut self.clocks, &self.vars);
            clocks[gi].join(&vars[vi].sync_clock);
        }
        let pure_vc = self.cfg.pure_vc;
        let mut fast = true;
        let mut words_delta: isize = 0;
        {
            // Split field borrows: the goroutine's clock is read-only for
            // the whole check/update sequence (the legacy path cloned it
            // per access), while the variable slot is mutated in place.
            let (clocks, vars, found) = (&self.clocks, &mut self.vars, &mut self.found);
            let c = &clocks[gi];
            let var = &mut vars[vi];
            // Shadow accounting: +2 fixed words (write + sync slot) per
            // newly touched variable, plus the read-history delta below.
            if !var.touched {
                var.touched = true;
                words_delta = 2;
            }
            // --- race checks ---
            let write_hb = if pure_vc {
                fast = false;
                var.write_clock.as_ref().is_none_or(|wc| wc.le(c))
            } else {
                var.write_epoch.le_clock(c)
            };
            if !write_hb {
                if let Some(wi) = &var.write_info {
                    if !(kind.is_atomic() && wi.kind.is_atomic()) {
                        found.push((*wi, info));
                    }
                }
            }
            if kind.is_write() {
                match &var.read {
                    ReadState::None => {}
                    ReadState::Exclusive(e, ri) => {
                        let read_hb = if pure_vc {
                            e.to_clock().le(c)
                        } else {
                            e.le_clock(c)
                        };
                        if !(read_hb || (kind.is_atomic() && ri.kind.is_atomic())) {
                            found.push((*ri, info));
                        }
                    }
                    ReadState::Shared(reads) => {
                        fast = false;
                        // The vector is tid-sorted, so this walk reproduces
                        // the legacy sorted-HashMap iteration: report order
                        // feeds dedup representatives and `max_reports`
                        // truncation.
                        for e in reads {
                            if e.clk > c.get(Tid::new(e.tid))
                                && !(kind.is_atomic() && e.info.kind.is_atomic())
                            {
                                found.push((e.info, info));
                            }
                        }
                    }
                }
            }
            // --- shadow updates ---
            if kind.is_write() {
                var.write_epoch = Epoch::new(tid, c.get(tid));
                if pure_vc {
                    match &mut var.write_clock {
                        Some(wc) => wc.clone_from(c),
                        None => var.write_clock = Some(c.clone()),
                    }
                }
                // In-place overwrite skips the enum's drop/re-tag dance on
                // the hottest store of the write path.
                match &mut var.write_info {
                    Some(wi) => *wi = info,
                    slot @ None => *slot = Some(info),
                }
                // Prune the read history this write re-exclusives: an entry
                // whose clock is dominated by the writer (`clk <= c[t2]`,
                // i.e. read happens-before this write) can never expose a
                // race this write itself wouldn't — any later access
                // unordered with the dropped read is also unordered with
                // the write (clocks transfer whole histories), so the race
                // still fires against `write_info`. Without this prune the
                // shared history retains one entry per goroutine that ever
                // read the variable, forever: the unbounded-shadow leak.
                if let ReadState::Shared(reads) = &mut var.read {
                    let before = reads.len();
                    reads.retain(|e| e.clk > c.get(Tid::new(e.tid)));
                    words_delta += reads.len() as isize - before as isize;
                    if reads.is_empty() {
                        var.read = ReadState::None;
                    }
                }
            } else {
                // Read: update the read history. Each arm tracks its exact
                // shadow-word delta in place — recounting the whole read
                // state before and after costs two extra matches per access
                // on the hot path.
                let my_clk = c.get(tid);
                if pure_vc {
                    let (before, reads) = match &mut var.read {
                        ReadState::Shared(reads) => (reads.len(), reads),
                        other => {
                            let was_exclusive = matches!(other, ReadState::Exclusive(..));
                            let mut reads = Vec::new();
                            if let ReadState::Exclusive(e, ri) = other {
                                reads.push(SharedRead {
                                    tid: e.tid().raw(),
                                    clk: e.clock(),
                                    info: *ri,
                                });
                            }
                            var.read = ReadState::Shared(reads);
                            match &mut var.read {
                                ReadState::Shared(reads) => {
                                    (usize::from(was_exclusive), reads)
                                }
                                _ => unreachable!("just assigned"),
                            }
                        }
                    };
                    shared_insert(reads, tid.raw(), my_clk, info);
                    words_delta += reads.len() as isize - before as isize;
                } else {
                    match &mut var.read {
                        ReadState::None => {
                            var.read = ReadState::Exclusive(Epoch::new(tid, my_clk), info);
                            words_delta += 1;
                        }
                        ReadState::Exclusive(e, ri) => {
                            if e.tid() == tid || e.le_clock(c) {
                                *e = Epoch::new(tid, my_clk);
                                *ri = info;
                            } else {
                                fast = false;
                                let mut reads = Vec::with_capacity(2);
                                if let ReadState::Exclusive(e, ri) = &var.read {
                                    reads.push(SharedRead {
                                        tid: e.tid().raw(),
                                        clk: e.clock(),
                                        info: *ri,
                                    });
                                }
                                shared_insert(&mut reads, tid.raw(), my_clk, info);
                                words_delta += reads.len() as isize - 1;
                                var.read = ReadState::Shared(reads);
                            }
                        }
                        ReadState::Shared(reads) => {
                            fast = false;
                            let before = reads.len();
                            shared_insert(reads, tid.raw(), my_clk, info);
                            words_delta += reads.len() as isize - before as isize;
                        }
                    }
                }
            }
            // Atomic release side: publish our clock to the address sync
            // clock (the tick advances after the borrow region ends).
            if kind == AccessKind::AtomicWrite {
                var.sync_clock.join(c);
            }
        }
        self.shadow_words = self
            .shadow_words
            .checked_add_signed(words_delta)
            .expect("shadow-word count underflow");
        if fast {
            self.epoch_fast_hits += 1;
        }
        if kind == AccessKind::AtomicWrite {
            self.tick(gid);
        }
        // Drain the scratch buffer by index (the pairs are `Copy`), leaving
        // it empty — and its allocation warm — for the next access.
        for i in 0..self.found.len() {
            let (prior, current) = self.found[i];
            self.record(addr, object, prior, current);
        }
        self.found.clear();
    }

    /// Joins `self.clocks[src]` into `self.clocks[dst]` (distinct indices).
    fn join_clocks(&mut self, dst: usize, src: usize) {
        debug_assert_ne!(dst, src);
        if dst < src {
            let (lo, hi) = self.clocks.split_at_mut(src);
            lo[dst].join(&hi[0]);
        } else {
            let (lo, hi) = self.clocks.split_at_mut(dst);
            hi[0].join(&lo[src]);
        }
    }

    // --- per-kind synchronization primitives -----------------------------
    //
    // `on_sync` (the scalar path) and the batch replay loop both dispatch
    // to these, so the happens-before semantics live in exactly one place.

    fn sync_spawn(&mut self, gid: Gid, child: Gid) {
        self.ensure_tid(gid);
        self.ensure_tid(child);
        self.join_clocks(child.index(), gid.index());
        self.tick(child);
        self.tick(gid);
    }

    fn sync_acquire(&mut self, gid: Gid, lock: u64, mode: LockMode) {
        self.ensure_tid(gid);
        let gi = gid.index();
        let li = lock as usize;
        let _ = slot(&mut self.locks, li);
        {
            let (clocks, locks) = (&mut self.clocks, &self.locks);
            let shadow = &locks[li];
            // join(a); join(b) ≡ join(a ⊔ b): pointwise max is associative,
            // so this matches the legacy clone-then-join without the clone.
            clocks[gi].join(&shadow.write_release);
            if mode == LockMode::Write {
                clocks[gi].join(&shadow.read_release);
            }
        }
        if self.cfg.track_locksets {
            self.held[gi].insert(LockId::new(lock));
            self.held_ids[gi] = self.locksets.intern(&self.held[gi]);
        }
    }

    fn sync_release(&mut self, gid: Gid, lock: u64, mode: LockMode) {
        self.ensure_tid(gid);
        let gi = gid.index();
        let li = lock as usize;
        let _ = slot(&mut self.locks, li);
        {
            let (clocks, locks) = (&self.clocks, &mut self.locks);
            let shadow = &mut locks[li];
            match mode {
                LockMode::Write => shadow.write_release.clone_from(&clocks[gi]),
                LockMode::Read => shadow.read_release.join(&clocks[gi]),
            }
        }
        self.tick(gid);
        if self.cfg.track_locksets {
            self.held[gi].remove(LockId::new(lock));
            self.held_ids[gi] = self.locksets.intern(&self.held[gi]);
        }
    }

    fn chan_send(&mut self, gid: Gid, chan: u64, seq: u64) {
        self.ensure_tid(gid);
        let c = self.clocks[gid.index()].clone();
        slot(&mut self.chans, chan as usize)
            .send_clocks
            .insert(seq, c);
        self.tick(gid);
    }

    fn chan_recv(&mut self, gid: Gid, chan: u64, seq: u64) {
        self.ensure_tid(gid);
        let sent = slot(&mut self.chans, chan as usize)
            .send_clocks
            .remove(&seq);
        if let Some(sc) = sent {
            self.clocks[gid.index()].join(&sc);
        }
        let c = self.clocks[gid.index()].clone();
        self.chans[chan as usize].recv_clocks.insert(seq, c);
        self.tick(gid);
    }

    fn chan_send_complete(&mut self, gid: Gid, chan: u64, seq: u64, cap: u64) {
        self.ensure_tid(gid);
        let target = if cap == 0 { Some(seq) } else { seq.checked_sub(cap) };
        if let Some(t) = target {
            let rc = slot(&mut self.chans, chan as usize).recv_clocks.remove(&t);
            if let Some(rc) = rc {
                self.clocks[gid.index()].join(&rc);
            }
        }
    }

    fn chan_close(&mut self, gid: Gid, chan: u64) {
        self.ensure_tid(gid);
        let c = self.clocks[gid.index()].clone();
        slot(&mut self.chans, chan as usize).close_clock = Some(c);
        self.tick(gid);
    }

    fn chan_recv_closed(&mut self, gid: Gid, chan: u64) {
        self.ensure_tid(gid);
        let ci = chan as usize;
        if ci < self.chans.len() {
            let (clocks, chans) = (&mut self.clocks, &self.chans);
            if let Some(cc) = &chans[ci].close_clock {
                clocks[gid.index()].join(cc);
            }
        }
    }

    fn wg_add(&mut self, gid: Gid, wg: u64, delta: i64) {
        if delta < 0 {
            self.ensure_tid(gid);
            let _ = slot(&mut self.wg_done, wg as usize);
            let (clocks, wg_done) = (&self.clocks, &mut self.wg_done);
            wg_done[wg as usize].join(&clocks[gid.index()]);
            self.tick(gid);
        }
    }

    fn wg_wait(&mut self, gid: Gid, wg: u64) {
        self.ensure_tid(gid);
        let wi = wg as usize;
        if wi < self.wg_done.len() {
            let (clocks, wg_done) = (&mut self.clocks, &self.wg_done);
            clocks[gid.index()].join(&wg_done[wi]);
        }
    }

    fn once_executed(&mut self, gid: Gid, once: u64) {
        self.ensure_tid(gid);
        let _ = slot(&mut self.once_done, once as usize);
        let (clocks, once_done) = (&self.clocks, &mut self.once_done);
        once_done[once as usize].clone_from(&clocks[gid.index()]);
        self.tick(gid);
    }

    fn once_observed(&mut self, gid: Gid, once: u64) {
        self.ensure_tid(gid);
        let oi = once as usize;
        if oi < self.once_done.len() {
            let (clocks, once_done) = (&mut self.clocks, &self.once_done);
            clocks[gid.index()].join(&once_done[oi]);
        }
    }

    fn on_sync(&mut self, ev: &Event) {
        let gid = ev.gid;
        match &ev.kind {
            EventKind::Spawn { child, .. } => self.sync_spawn(gid, *child),
            EventKind::Acquire { lock, mode } => self.sync_acquire(gid, lock.0, *mode),
            EventKind::Release { lock, mode } => self.sync_release(gid, lock.0, *mode),
            EventKind::ChanSend { chan, seq } => self.chan_send(gid, chan.0, *seq),
            EventKind::ChanRecv { chan, seq } => self.chan_recv(gid, chan.0, *seq),
            EventKind::ChanSendComplete { chan, seq, cap } => {
                self.chan_send_complete(gid, chan.0, *seq, *cap as u64);
            }
            EventKind::ChanClose { chan } => self.chan_close(gid, chan.0),
            EventKind::ChanRecvClosed { chan } => self.chan_recv_closed(gid, chan.0),
            EventKind::WgAdd { wg, delta, .. } => self.wg_add(gid, wg.0, *delta),
            EventKind::WgWait { wg } => self.wg_wait(gid, wg.0),
            EventKind::OnceExecuted { once } => self.once_executed(gid, once.0),
            EventKind::OnceObserved { once } => self.once_observed(gid, once.0),
            EventKind::GoroutineEnd | EventKind::Access { .. } => {
                self.ensure_tid(gid);
            }
        }
    }

    /// The batch replay hot loop: drives the whole decoded event stream
    /// through the detector, dispatching on raw tag bytes over the SoA
    /// lanes — no `Event` materialization, no `Arc` clones. Returns the
    /// peak shadow-word count observed after each event (the same sampling
    /// the scalar replay driver performs).
    pub(crate) fn replay_decoded_core(&mut self, decoded: &DecodedTrace) -> usize {
        let b = &decoded.batch;
        let n = b.len();
        // Hoist every lane into a local slice: `on_access` is an opaque
        // call, so indexing through `b` directly would reload each Vec's
        // pointer and length from memory on every iteration.
        let tags = &b.tags[..n];
        let gids = &b.gids[..n];
        let prims = &b.prims[..n];
        let args_a = &b.args_a[..n];
        let args_b = &b.args_b[..n];
        let access_kinds = &b.access_kinds[..n];
        let lock_modes = &b.lock_modes[..n];
        let stacks = &b.stacks[..n];
        let objects = &b.objects[..n];
        let files = &b.files[..n];
        let lines = &b.lines[..n];
        let file_table = decoded.files.as_slice();
        let string_table = decoded.strings.as_slice();
        let mut peak = 0usize;
        for i in 0..n {
            let gid = Gid(gids[i]);
            match tags[i] {
                2 => {
                    let loc = SourceLoc {
                        file: file_table[files[i] as usize],
                        line: lines[i],
                    };
                    self.on_access(
                        gid,
                        Addr(prims[i]),
                        &string_table[objects[i] as usize],
                        access_kinds[i],
                        StackId(stacks[i]),
                        loc,
                    );
                    // Shadow words only change on access events, so the
                    // peak needs sampling only here, not per event.
                    peak = peak.max(self.shadow_words);
                }
                0 => self.sync_spawn(gid, Gid(prims[i] as u32)),
                1 => self.ensure_tid(gid),
                3 => self.sync_acquire(gid, prims[i], lock_modes[i]),
                4 => self.sync_release(gid, prims[i], lock_modes[i]),
                5 => self.chan_send(gid, prims[i], args_a[i]),
                6 => self.chan_send_complete(gid, prims[i], args_a[i], args_b[i]),
                7 => self.chan_recv(gid, prims[i], args_a[i]),
                8 => self.chan_recv_closed(gid, prims[i]),
                9 => self.chan_close(gid, prims[i]),
                10 => self.wg_add(gid, prims[i], args_a[i] as i64),
                11 => self.wg_wait(gid, prims[i]),
                12 => self.once_executed(gid, prims[i]),
                13 => self.once_observed(gid, prims[i]),
                tag => unreachable!("tag {tag} was validated during decode"),
            }
        }
        peak
    }
}

impl Monitor for FastTrack {
    fn on_run_start(&mut self, depot: &StackDepot) {
        // A fresh run: drop any previous run's shadow state (allocations
        // stay warm) and attach the run's depot for report materialization.
        self.reset();
        self.depot = depot.clone();
    }

    fn on_event(&mut self, event: &Event) {
        if let EventKind::Access {
            addr,
            object,
            kind,
            stack,
            loc,
        } = &event.kind
        {
            self.on_access(event.gid, *addr, object, *kind, *stack, *loc);
        } else {
            self.on_sync(event);
        }
    }

    fn shadow_words(&self) -> usize {
        self.shadow_words
    }
}
