//! The interleaving explorer: rerun a program across seeds, aggregate races.
//!
//! Dynamic race detection is schedule-dependent — the central deployment
//! problem of §3.2: "the detected set of races depend on the thread
//! interleavings and can vary across multiple runs, even though the input
//! to the program remains unchanged." The explorer makes that first-class:
//! it reruns a program under many seeds (optionally mixing strategies),
//! deduplicates the races found, and reports the per-run detection
//! probability, which the deployment simulator (`grs-deploy`) uses as the
//! flakiness parameter of daily test runs.

use grs_runtime::{Program, RunConfig, RunOutcome, Runtime, Strategy};

use crate::report::RaceReport;
use crate::tsan::Tsan;

/// Exploration parameters.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Number of runs.
    pub runs: usize,
    /// First seed; run `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Scheduling strategy for every run.
    pub strategy: Strategy,
    /// Per-run step budget.
    pub max_steps: u64,
}

impl ExploreConfig {
    /// 30 random-walk runs — enough for the depth-2 races that dominate the
    /// study's corpus.
    #[must_use]
    pub fn quick() -> Self {
        ExploreConfig {
            runs: 30,
            base_seed: 1,
            strategy: Strategy::Random,
            max_steps: 1_000_000,
        }
    }

    /// 200 random-walk runs — for stubborn interleavings and statistics.
    #[must_use]
    pub fn thorough() -> Self {
        ExploreConfig {
            runs: 200,
            ..ExploreConfig::quick()
        }
    }

    /// Sets the number of runs (builder style).
    #[must_use]
    pub fn runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Sets the base seed (builder style).
    #[must_use]
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Sets the strategy (builder style).
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self::quick()
    }
}

/// Aggregated result of exploring one program.
#[derive(Debug)]
pub struct ExploreResult {
    /// Program name.
    pub program: String,
    /// Total runs executed.
    pub runs: usize,
    /// Runs in which at least one race was reported.
    pub racy_runs: usize,
    /// Distinct races across all runs (within-explorer dedup by site).
    pub unique_races: Vec<RaceReport>,
    /// Runs that deadlocked.
    pub deadlock_runs: usize,
    /// Runs that leaked goroutines.
    pub leaked_runs: usize,
    /// Runs with Go-level runtime errors (panics).
    pub error_runs: usize,
    /// Outcome of the first run (representative sample for diagnostics).
    pub sample_outcome: Option<RunOutcome>,
}

impl ExploreResult {
    /// True when any run exposed a race.
    #[must_use]
    pub fn found_race(&self) -> bool {
        !self.unique_races.is_empty()
    }

    /// Fraction of runs that exposed at least one race — the flakiness the
    /// paper's deployment design works around.
    #[must_use]
    pub fn detection_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.racy_runs as f64 / self.runs as f64
        }
    }
}

/// Reruns programs under many schedules and aggregates the races.
///
/// See the crate-level example.
#[derive(Debug, Clone, Default)]
pub struct Explorer {
    config: ExploreConfig,
}

impl Explorer {
    /// An explorer with the given configuration.
    #[must_use]
    pub fn new(config: ExploreConfig) -> Self {
        Explorer { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ExploreConfig {
        &self.config
    }

    /// Explores `program`, returning aggregated races and statistics.
    #[must_use]
    pub fn explore(&self, program: &Program) -> ExploreResult {
        let mut result = ExploreResult {
            program: program.name().to_string(),
            runs: self.config.runs,
            racy_runs: 0,
            unique_races: Vec::new(),
            deadlock_runs: 0,
            leaked_runs: 0,
            error_runs: 0,
            sample_outcome: None,
        };
        let mut seen = std::collections::HashSet::new();
        for i in 0..self.config.runs {
            let seed = self.config.base_seed + i as u64;
            let cfg = RunConfig {
                seed,
                strategy: self.config.strategy,
                max_steps: self.config.max_steps,
                ..RunConfig::default()
            };
            let (outcome, tsan) = Runtime::new(cfg).run(program, Tsan::new());
            let reports = tsan.into_reports();
            if !reports.is_empty() {
                result.racy_runs += 1;
            }
            for mut r in reports {
                r.program = Some(std::sync::Arc::from(program.name()));
                r.repro_seed = Some(seed);
                if seen.insert(r.site_key()) {
                    result.unique_races.push(r);
                }
            }
            if outcome.deadlock.is_some() {
                result.deadlock_runs += 1;
            }
            if !outcome.leaked.is_empty() {
                result.leaked_runs += 1;
            }
            if !outcome.errors.is_empty() {
                result.error_runs += 1;
            }
            if result.sample_outcome.is_none() {
                result.sample_outcome = Some(outcome);
            }
        }
        result
    }
}
