//! The interleaving explorer: rerun a program across seeds, aggregate races.
//!
//! Dynamic race detection is schedule-dependent — the central deployment
//! problem of §3.2: "the detected set of races depend on the thread
//! interleavings and can vary across multiple runs, even though the input
//! to the program remains unchanged." The explorer makes that first-class:
//! it reruns a program under many seeds (optionally mixing strategies),
//! deduplicates the races found, and reports the per-run detection
//! probability, which the deployment simulator (`grs-deploy`) uses as the
//! flakiness parameter of daily test runs.
//!
//! Two execution paths produce identical aggregates:
//!
//! * [`Explorer::explore`] — runs every seed on the calling thread, and
//! * [`Explorer::explore_parallel`] — fans the same seed range out over
//!   [`ExploreConfig::workers`] OS threads. Each `(program, seed,
//!   strategy, detector)` run is a self-contained deterministic
//!   [`Runtime`] instance, so the per-seed race reports are byte-identical
//!   to the serial path; only wall-clock time changes. Results are folded
//!   back in seed order, so even the aggregate dedup order matches.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use grs_runtime::{Program, RunConfig, RunOutcome, Runtime, Strategy};

use crate::eraser::Eraser;
use crate::fasttrack::{FastTrack, FastTrackConfig};
use crate::report::RaceReport;
use crate::tsan::Tsan;

/// Which detection algorithm a run is monitored with.
///
/// The paper's deployment always runs ThreadSanitizer (the hybrid), but the
/// campaign engine (`grs-fleet`) and the differential test harness rerun
/// the same seeds under each algorithm to compare verdicts: FastTrack is
/// precise under the observed schedule, Eraser over-approximates by
/// ignoring happens-before, and the hybrid pairs FastTrack verdicts with
/// lockset context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DetectorChoice {
    /// FastTrack happens-before (epoch-optimized), no lockset context.
    FastTrack,
    /// FastTrack with the epoch fast path disabled (pure vector clocks).
    PureVectorClock,
    /// Eraser locksets only (may report false positives).
    Eraser,
    /// The TSan-style hybrid — FastTrack verdicts + lockset context.
    #[default]
    Hybrid,
}

impl DetectorChoice {
    /// The three production-relevant algorithms, in comparison order.
    #[must_use]
    pub fn all() -> [DetectorChoice; 3] {
        [
            DetectorChoice::FastTrack,
            DetectorChoice::Eraser,
            DetectorChoice::Hybrid,
        ]
    }

    /// All four algorithms, including the pure-vector-clock ablation — the
    /// set the replay harness fans every trace through.
    #[must_use]
    pub fn all_with_ablation() -> [DetectorChoice; 4] {
        [
            DetectorChoice::FastTrack,
            DetectorChoice::PureVectorClock,
            DetectorChoice::Eraser,
            DetectorChoice::Hybrid,
        ]
    }

    /// Short stable label (used in campaign summaries and JSON output).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DetectorChoice::FastTrack => "fasttrack",
            DetectorChoice::PureVectorClock => "pure-vc",
            DetectorChoice::Eraser => "eraser",
            DetectorChoice::Hybrid => "hybrid",
        }
    }

    /// Executes one run of `program` under this detector.
    #[must_use]
    pub fn run(self, program: &Program, cfg: RunConfig) -> (RunOutcome, Vec<RaceReport>) {
        let runtime = Runtime::new(cfg);
        match self {
            DetectorChoice::FastTrack => {
                let (o, m) = runtime.run(program, FastTrack::new());
                (o, m.into_reports())
            }
            DetectorChoice::PureVectorClock => {
                let (o, m) =
                    runtime.run(program, FastTrack::with_config(FastTrackConfig::pure_vc()));
                (o, m.into_reports())
            }
            DetectorChoice::Eraser => {
                let (o, m) = runtime.run(program, Eraser::new());
                (o, m.into_reports())
            }
            DetectorChoice::Hybrid => {
                let (o, m) = runtime.run(program, Tsan::new());
                (o, m.into_reports())
            }
        }
    }

    /// Analyzes a recorded trace offline with a fresh instance of this
    /// detector. For a trace recorded from a live run, the reports are
    /// bit-identical to [`DetectorChoice::run`] under the same config —
    /// the replay-fidelity guarantee the record/replay subsystem rests on.
    #[must_use]
    pub fn replay(self, trace: &grs_runtime::Trace) -> crate::replay::ReplayOutcome {
        let depot = grs_runtime::StackDepot::new();
        match self {
            DetectorChoice::FastTrack => {
                crate::replay::replay_trace(&mut FastTrack::new(), trace, &depot)
            }
            DetectorChoice::PureVectorClock => crate::replay::replay_trace(
                &mut FastTrack::with_config(FastTrackConfig::pure_vc()),
                trace,
                &depot,
            ),
            DetectorChoice::Eraser => {
                crate::replay::replay_trace(&mut Eraser::new(), trace, &depot)
            }
            DetectorChoice::Hybrid => {
                crate::replay::replay_trace(&mut Tsan::new(), trace, &depot)
            }
        }
    }
}

impl std::fmt::Display for DetectorChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Exploration parameters.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Number of runs.
    pub runs: usize,
    /// First seed; run `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Scheduling strategy for every run.
    pub strategy: Strategy,
    /// Per-run step budget.
    pub max_steps: u64,
    /// Detection algorithm for every run.
    pub detector: DetectorChoice,
    /// Worker threads for [`Explorer::explore_parallel`]. Defaults to the
    /// host's available parallelism; `explore` ignores it.
    pub workers: usize,
}

/// The host's available parallelism, with a safe fallback of 1.
#[must_use]
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

impl ExploreConfig {
    /// An exploration of `runs` runs with the default knobs — the entry
    /// point of the builder API, which is the **stable** way to construct a
    /// config:
    ///
    /// ```
    /// use grs_detector::{DetectorChoice, ExploreConfig};
    ///
    /// let cfg = ExploreConfig::new(64)
    ///     .workers(8)
    ///     .detector(DetectorChoice::FastTrack);
    /// assert_eq!(cfg.runs, 64);
    /// ```
    ///
    /// The fields stay `pub` for matching and ad-hoc tweaks, but new knobs
    /// are only guaranteed to get builder methods; struct-literal
    /// construction may break when fields are added.
    #[must_use]
    pub fn new(runs: usize) -> Self {
        ExploreConfig::quick().runs(runs)
    }

    /// 30 random-walk runs — enough for the depth-2 races that dominate the
    /// study's corpus.
    #[must_use]
    pub fn quick() -> Self {
        ExploreConfig {
            runs: 30,
            base_seed: 1,
            strategy: Strategy::Random,
            max_steps: 1_000_000,
            detector: DetectorChoice::Hybrid,
            workers: default_workers(),
        }
    }

    /// 200 random-walk runs — for stubborn interleavings and statistics.
    #[must_use]
    pub fn thorough() -> Self {
        ExploreConfig {
            runs: 200,
            ..ExploreConfig::quick()
        }
    }

    /// Sets the number of runs (builder style).
    #[must_use]
    pub fn runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Sets the base seed (builder style).
    #[must_use]
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Sets the strategy (builder style).
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the detection algorithm (builder style).
    #[must_use]
    pub fn detector(mut self, detector: DetectorChoice) -> Self {
        self.detector = detector;
        self
    }

    /// Sets the worker-thread count for `explore_parallel` (builder style).
    /// Clamped to at least 1.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the per-run step budget (builder style).
    #[must_use]
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self::quick()
    }
}

/// Aggregated result of exploring one program.
#[derive(Debug)]
pub struct ExploreResult {
    /// Program name.
    pub program: String,
    /// Total runs executed.
    pub runs: usize,
    /// Runs in which at least one race was reported.
    pub racy_runs: usize,
    /// Distinct races across all runs (within-explorer dedup by site).
    pub unique_races: Vec<RaceReport>,
    /// Runs that deadlocked.
    pub deadlock_runs: usize,
    /// Runs that leaked goroutines.
    pub leaked_runs: usize,
    /// Runs with Go-level runtime errors (panics).
    pub error_runs: usize,
    /// Outcome of the first run (representative sample for diagnostics).
    pub sample_outcome: Option<RunOutcome>,
}

impl ExploreResult {
    /// True when any run exposed a race.
    #[must_use]
    pub fn found_race(&self) -> bool {
        !self.unique_races.is_empty()
    }

    /// Fraction of runs that exposed at least one race — the flakiness the
    /// paper's deployment design works around. Zero (not NaN) when no run
    /// was executed.
    #[must_use]
    pub fn detection_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.racy_runs as f64 / self.runs as f64
        }
    }
}

/// One run's raw output, tagged with its index for in-order folding.
type IndexedRun = (usize, RunOutcome, Vec<RaceReport>);

/// Reruns programs under many schedules and aggregates the races.
///
/// See the crate-level example.
#[derive(Debug, Clone, Default)]
pub struct Explorer {
    config: ExploreConfig,
}

impl Explorer {
    /// An explorer with the given configuration.
    #[must_use]
    pub fn new(config: ExploreConfig) -> Self {
        Explorer { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ExploreConfig {
        &self.config
    }

    fn run_config(&self, run: usize) -> RunConfig {
        RunConfig {
            seed: self.config.base_seed + run as u64,
            strategy: self.config.strategy,
            max_steps: self.config.max_steps,
            ..RunConfig::default()
        }
    }

    /// Folds per-run results (sorted by run index) into the aggregate. This
    /// is the single aggregation path shared by the serial and parallel
    /// explorers, so the two produce identical results by construction.
    fn fold(&self, program: &Program, runs: Vec<IndexedRun>) -> ExploreResult {
        let mut result = ExploreResult {
            program: program.name().to_string(),
            runs: runs.len(),
            racy_runs: 0,
            unique_races: Vec::new(),
            deadlock_runs: 0,
            leaked_runs: 0,
            error_runs: 0,
            sample_outcome: None,
        };
        let mut seen = std::collections::HashSet::new();
        for (i, outcome, reports) in runs {
            let seed = self.config.base_seed + i as u64;
            if !reports.is_empty() {
                result.racy_runs += 1;
            }
            for mut r in reports {
                r.program = Some(std::sync::Arc::from(program.name()));
                r.repro_seed = Some(seed);
                r.repro = Some(grs_runtime::ReproArtifact::seeded(
                    seed,
                    self.config.strategy,
                ));
                if seen.insert(r.site_key()) {
                    result.unique_races.push(r);
                }
            }
            if outcome.deadlock.is_some() {
                result.deadlock_runs += 1;
            }
            if !outcome.leaked.is_empty() {
                result.leaked_runs += 1;
            }
            if !outcome.errors.is_empty() {
                result.error_runs += 1;
            }
            if result.sample_outcome.is_none() {
                result.sample_outcome = Some(outcome);
            }
        }
        result
    }

    /// Explores `program` serially, returning aggregated races and
    /// statistics.
    #[must_use]
    pub fn explore(&self, program: &Program) -> ExploreResult {
        let runs = (0..self.config.runs)
            .map(|i| {
                let (outcome, reports) = self.config.detector.run(program, self.run_config(i));
                (i, outcome, reports)
            })
            .collect();
        self.fold(program, runs)
    }

    /// Explores `program` with the seed range fanned out over
    /// [`ExploreConfig::workers`] OS threads.
    ///
    /// Workers claim run indices from a shared atomic counter (cheap
    /// work-stealing: no run is ever assigned twice and no worker idles
    /// while work remains). Each run is an independent deterministic
    /// [`Runtime`] instance, and results are folded in run order, so the
    /// output — including the order of `unique_races` — is identical to
    /// [`Explorer::explore`] for any worker count.
    #[must_use]
    pub fn explore_parallel(&self, program: &Program) -> ExploreResult {
        let workers = self.config.workers.max(1).min(self.config.runs.max(1));
        if workers <= 1 {
            return self.explore(program);
        }
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<IndexedRun>> =
            Mutex::new(Vec::with_capacity(self.config.runs));
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= self.config.runs {
                        break;
                    }
                    let (outcome, reports) =
                        self.config.detector.run(program, self.run_config(i));
                    collected
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push((i, outcome, reports));
                });
            }
        });
        let mut runs = collected
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        runs.sort_by_key(|(i, _, _)| *i);
        self.fold(program, runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn racy_program() -> Program {
        Program::new("racy_counter", |ctx| {
            let x = ctx.cell("x", 0i64);
            let done = ctx.chan::<()>("done", 2);
            for _ in 0..2 {
                let (x, done) = (x.clone(), done.clone());
                ctx.go("w", move |ctx| {
                    ctx.update(&x, |v| v + 1);
                    done.send(ctx, ());
                });
            }
            for _ in 0..2 {
                let _ = done.recv(ctx);
            }
        })
    }

    #[test]
    fn detection_rate_is_zero_not_nan_for_zero_runs() {
        let r = Explorer::new(ExploreConfig::quick().runs(0)).explore(&racy_program());
        assert_eq!(r.runs, 0);
        assert_eq!(r.detection_rate(), 0.0);
        assert!(r.detection_rate().is_finite());
        assert!(!r.found_race());
        assert!(r.sample_outcome.is_none());
    }

    #[test]
    fn workers_knob_defaults_to_available_parallelism() {
        assert_eq!(ExploreConfig::quick().workers, default_workers());
        assert!(ExploreConfig::quick().workers(0).workers >= 1);
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let p = racy_program();
        let cfg = ExploreConfig::quick().runs(16);
        let serial = Explorer::new(cfg.clone()).explore(&p);
        for workers in [1, 2, 4] {
            let par = Explorer::new(cfg.clone().workers(workers)).explore_parallel(&p);
            assert_eq!(par.runs, serial.runs);
            assert_eq!(par.racy_runs, serial.racy_runs, "workers={workers}");
            assert_eq!(par.unique_races.len(), serial.unique_races.len());
            for (a, b) in par.unique_races.iter().zip(serial.unique_races.iter()) {
                assert_eq!(a.site_key(), b.site_key());
                assert_eq!(a.repro_seed, b.repro_seed);
            }
        }
    }

    #[test]
    fn detector_choice_runs_each_algorithm() {
        let p = racy_program();
        for choice in [
            DetectorChoice::FastTrack,
            DetectorChoice::PureVectorClock,
            DetectorChoice::Eraser,
            DetectorChoice::Hybrid,
        ] {
            let mut found = false;
            for seed in 0..20 {
                let (_, reports) = choice.run(&p, RunConfig::with_seed(seed));
                if !reports.is_empty() {
                    found = true;
                    break;
                }
            }
            assert!(found, "{choice} never detected the race");
        }
    }
}
