//! Dynamic data-race detectors for the `grs-runtime` substrate.
//!
//! Go's built-in race detector is ThreadSanitizer, which the paper describes
//! as combining two published algorithms (§3.1):
//!
//! * a **happens-before** detector using vector clocks — implemented here as
//!   [`FastTrack`] (Flanagan & Freund's epoch optimization, reference \[44\]),
//!   with a pure-vector-clock variant ([`fasttrack::FastTrackConfig`]'s
//!   `pure_vc`) for the ablation benchmark;
//! * a **lockset** detector — implemented here as [`Eraser`] (Savage et
//!   al., reference \[76\]), which over-approximates by ignoring
//!   happens-before.
//!
//! [`Tsan`] composes FastTrack's precise verdicts with lockset bookkeeping so
//! race reports also say which locks each side held — the shape of report
//! the paper's deployment files as bugs (§3.3: two stacks, access types,
//! conflicting address).
//!
//! [`Explorer`] reruns a [`Program`](grs_runtime::Program) across many seeds
//! and strategies, deduplicates the races found, and measures per-run
//! detection probability — the "flakiness" that drives the paper's entire
//! deployment design (§3.2: a dynamic detector cannot gate a pull request
//! because detection is schedule-dependent).
//!
//! # Example
//!
//! ```
//! use grs_detector::{ExploreConfig, Explorer};
//! use grs_runtime::Program;
//!
//! // Listing 1: loop index variable captured by reference.
//! let program = Program::new("loop_capture", |ctx| {
//!     let job = ctx.cell("job", 0i64);
//!     for i in 0..3 {
//!         ctx.write(&job, i);
//!         let job = job.clone();
//!         ctx.go("worker", move |ctx| {
//!             let _ = ctx.read(&job);
//!         });
//!     }
//! });
//! let result = Explorer::new(ExploreConfig::quick()).explore(&program);
//! assert!(result.found_race(), "the capture race must be detected");
//! ```

pub mod arena;
pub mod eraser;
pub mod explorer;
pub mod fasttrack;
pub mod guided;
#[cfg(feature = "oracle")]
pub mod legacy;
pub mod replay;
pub mod report;
pub mod tsan;

pub use arena::DetectorArena;
pub use eraser::Eraser;
pub use explorer::{default_workers, DetectorChoice, ExploreConfig, ExploreResult, Explorer};
pub use fasttrack::{FastTrack, FastTrackConfig};
pub use guided::{GuidedConfig, GuidedExplorer, GuidedResult, ScheduleFrontier};
pub use replay::{
    replay_decoded, replay_decoded_prepared, replay_trace, ReplayAnalyzer, ReplayOutcome,
};
pub use report::{DetectorKind, RaceAccess, RaceReport};
pub use tsan::Tsan;

/// The types every detector user imports, for `use grs_detector::prelude::*`.
pub mod prelude {
    pub use crate::arena::DetectorArena;
    pub use crate::eraser::Eraser;
    pub use crate::explorer::{default_workers, DetectorChoice, ExploreConfig, Explorer};
    pub use crate::fasttrack::FastTrack;
    pub use crate::guided::{GuidedConfig, GuidedExplorer, GuidedResult, ScheduleFrontier};
    pub use crate::replay::{replay_trace, ReplayAnalyzer, ReplayOutcome};
    pub use crate::report::{DetectorKind, RaceReport};
    pub use crate::tsan::Tsan;
}
