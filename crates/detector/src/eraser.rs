//! The Eraser lockset race detector.
//!
//! Eraser (Savage et al., TOCS 1997) ignores happens-before entirely: each
//! shared variable carries a candidate set of locks, refined by intersection
//! with the accessor's held locks at every access once the variable is
//! shared. An empty candidate set on a shared-modified variable means no
//! single lock consistently protects it — a *potential* race.
//!
//! Because channel communication, `WaitGroup`s, and goroutine spawn order
//! establish happens-before without any lock, Eraser over-reports on idiomatic
//! Go: the detector-comparison benchmark quantifies exactly that, which is
//! why ThreadSanitizer anchors its verdicts on vector clocks (§3.1).

use std::collections::HashMap;
use std::sync::Arc;

use grs_clock::{LockId, Lockset};
use grs_runtime::event::{Event, EventKind, LockMode};
use grs_runtime::{AccessKind, Addr, Gid, Monitor, SourceLoc, Stack};

use crate::report::{DetectorKind, RaceAccess, RaceReport};

/// Eraser's per-variable state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarState {
    /// Only one goroutine has ever touched the variable.
    Exclusive(Gid),
    /// Multiple goroutines read it (no cross-goroutine write yet).
    Shared,
    /// Written by one goroutine and accessed by another: races possible.
    SharedModified,
}

#[derive(Debug, Clone)]
struct LastAccess {
    gid: Gid,
    kind: AccessKind,
    stack: Stack,
    loc: SourceLoc,
    locks: Lockset,
}

#[derive(Debug)]
struct EraserVar {
    object: Arc<str>,
    state: VarState,
    candidate: Lockset,
    last: LastAccess,
    reported: bool,
}

/// The Eraser monitor.
///
/// # Example
///
/// ```
/// use grs_detector::Eraser;
/// use grs_runtime::{Program, RunConfig, Runtime};
///
/// // Channel-synchronized program: race-free, but Eraser still flags it
/// // because no LOCK protects the variable (a false positive by design).
/// let p = Program::new("chan_synced", |ctx| {
///     let x = ctx.cell("x", 0i64);
///     let ch = ctx.chan::<()>("done", 0);
///     let (x2, tx) = (x.clone(), ch.clone());
///     ctx.go("writer", move |ctx| {
///         ctx.write(&x2, 1);
///         tx.send(ctx, ());
///     });
///     let _ = ch.recv(ctx);
///     let _ = ctx.read(&x);
/// });
/// let (_, er) = Runtime::new(RunConfig::with_seed(0)).run(&p, Eraser::new());
/// assert_eq!(er.reports().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Eraser {
    /// Locks held per goroutine, in any mode.
    held: Vec<Lockset>,
    /// Locks held per goroutine in *write* (exclusive) mode. Eraser's
    /// read-write-lock refinement: a read-mode `RLock` admits concurrent
    /// readers, so it protects reads but not writes — a write access is
    /// refined against this set only (the Listing 11 `RLock`-write bug
    /// class would otherwise be invisible to locksets).
    write_held: Vec<Lockset>,
    vars: HashMap<u64, EraserVar>,
    reports: Vec<RaceReport>,
}

impl Eraser {
    /// A fresh Eraser monitor.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The potential races reported so far.
    #[must_use]
    pub fn reports(&self) -> &[RaceReport] {
        &self.reports
    }

    /// Consumes the detector, returning its reports.
    #[must_use]
    pub fn into_reports(self) -> Vec<RaceReport> {
        self.reports
    }

    fn held_mut(&mut self, gid: Gid) -> &mut Lockset {
        let i = gid.index();
        while self.held.len() <= i {
            self.held.push(Lockset::new());
        }
        &mut self.held[i]
    }

    fn write_held_mut(&mut self, gid: Gid) -> &mut Lockset {
        let i = gid.index();
        while self.write_held.len() <= i {
            self.write_held.push(Lockset::new());
        }
        &mut self.write_held[i]
    }

    /// The locks that actually protect an access of `kind`: writes are only
    /// protected by exclusive-mode locks, reads by any mode.
    fn effective_locks(&mut self, gid: Gid, kind: AccessKind) -> Lockset {
        if kind.is_write() {
            self.write_held_mut(gid).clone()
        } else {
            self.held_mut(gid).clone()
        }
    }

    fn on_access(
        &mut self,
        gid: Gid,
        addr: Addr,
        object: &Arc<str>,
        kind: AccessKind,
        stack: &Stack,
        loc: SourceLoc,
    ) {
        let held = self.held_mut(gid).clone();
        let effective = self.effective_locks(gid, kind);
        let current = LastAccess {
            gid,
            kind,
            stack: stack.clone(),
            loc,
            locks: held.clone(),
        };
        match self.vars.get_mut(&addr.0) {
            None => {
                self.vars.insert(
                    addr.0,
                    EraserVar {
                        object: object.clone(),
                        state: VarState::Exclusive(gid),
                        candidate: effective,
                        last: current,
                        reported: false,
                    },
                );
            }
            Some(var) => {
                let mut check = false;
                match var.state {
                    VarState::Exclusive(owner) if owner == gid => {
                        // Still exclusive; remember the most recent lockset
                        // but do not refine yet (classic Eraser).
                        var.candidate = effective;
                    }
                    VarState::Exclusive(_) => {
                        var.state = if kind.is_write() || var.last.kind.is_write() {
                            VarState::SharedModified
                        } else {
                            VarState::Shared
                        };
                        var.candidate.intersect_with(&effective);
                        check = var.state == VarState::SharedModified;
                    }
                    VarState::Shared => {
                        var.candidate.intersect_with(&effective);
                        if kind.is_write() {
                            var.state = VarState::SharedModified;
                            check = true;
                        }
                    }
                    VarState::SharedModified => {
                        var.candidate.intersect_with(&effective);
                        check = true;
                    }
                }
                if check && var.candidate.is_empty() && !var.reported {
                    // Suppress pairs where both sides used sync/atomic.
                    if !(kind.is_atomic() && var.last.kind.is_atomic()) {
                        var.reported = true;
                        let report = RaceReport {
                            addr,
                            object: var.object.clone(),
                            prior: RaceAccess {
                                gid: var.last.gid,
                                kind: var.last.kind,
                                stack: var.last.stack.clone(),
                                loc: var.last.loc,
                                locks_held: var.last.locks.clone(),
                            },
                            current: RaceAccess {
                                gid,
                                kind,
                                stack: stack.clone(),
                                loc,
                                locks_held: held,
                            },
                            detector: DetectorKind::Eraser,
                            program: None,
                            repro_seed: None,
                        };
                        self.reports.push(report);
                    }
                }
                if let Some(var) = self.vars.get_mut(&addr.0) {
                    var.last = current;
                }
            }
        }
    }
}

impl Monitor for Eraser {
    fn on_event(&mut self, event: &Event) {
        match &event.kind {
            EventKind::Access {
                addr,
                object,
                kind,
                stack,
                loc,
            } => {
                let (object, stack) = (object.clone(), stack.clone());
                self.on_access(event.gid, *addr, &object, *kind, &stack, *loc);
            }
            EventKind::Acquire { lock, mode } => {
                self.held_mut(event.gid).insert(LockId::new(lock.0));
                if *mode == LockMode::Write {
                    self.write_held_mut(event.gid).insert(LockId::new(lock.0));
                }
            }
            EventKind::Release { lock, .. } => {
                self.held_mut(event.gid).remove(LockId::new(lock.0));
                self.write_held_mut(event.gid).remove(LockId::new(lock.0));
            }
            _ => {}
        }
    }
}
