//! [`Study`] — the one-call reproduction of the whole paper.
//!
//! Runs every experiment at a configurable scale and assembles a
//! [`StudyReport`] whose [`render`](StudyReport::render) output is the
//! paper's evaluation section regenerated: Table 1, Figure 1's medians,
//! Figures 3–4 with the §3.5 statistics, Tables 2–3 as mixture recovery,
//! and the detector-overhead probe.

use grs_corpus::Table1;
use grs_deploy::sim::SimResult;
use grs_fleet::{Census, Language};

use crate::experiments::{
    figure1, figure3_figure4, overhead_probe, overhead_workload, table1, table2, table3,
    DeploymentStats, OverheadProbe, TallyConfig, TallyResult,
};

/// Experiment scales.
#[derive(Debug, Clone)]
pub struct Study {
    /// Seed for every stochastic component.
    pub seed: u64,
    /// Go-corpus scale for Table 1 (Java runs at 10×; `0.002` ≈ 92 KLoC Go).
    pub table1_go_scale: f64,
    /// Fleet scale for Figure 1 (`0.05` ≈ 9.8K processes).
    pub fleet_scale: f64,
    /// Table 2/3 population configuration.
    pub tally: TallyConfig,
    /// Runs for the overhead probe.
    pub overhead_runs: u32,
}

impl Study {
    /// A configuration that finishes in seconds (used by tests).
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        Study {
            seed,
            table1_go_scale: 0.0005,
            fleet_scale: 0.01,
            tally: TallyConfig::quick(seed),
            overhead_runs: 10,
        }
    }

    /// The scale used for the published numbers in `EXPERIMENTS.md`
    /// (a couple of minutes end to end).
    #[must_use]
    pub fn standard(seed: u64) -> Self {
        Study {
            seed,
            table1_go_scale: 0.002,
            fleet_scale: 0.05,
            tally: TallyConfig {
                scale_divisor: 20.0,
                runs_per_instance: 40,
                seed,
            },
            overhead_runs: 30,
        }
    }

    /// Runs every experiment.
    #[must_use]
    pub fn run(&self) -> StudyReport {
        let t1 = table1(self.table1_go_scale, self.seed);
        let fleet = figure1(self.fleet_scale, self.seed);
        let (campaign, stats) = figure3_figure4(self.seed);
        let t2 = table2(&self.tally);
        let t3 = table3(&self.tally);
        let overhead = overhead_probe(&overhead_workload(), self.overhead_runs, self.seed);
        StudyReport {
            table1: t1,
            fleet,
            campaign,
            deployment: stats,
            table2: t2,
            table3: t3,
            overhead,
        }
    }
}

/// Everything the paper's evaluation section reports, regenerated.
#[derive(Debug)]
pub struct StudyReport {
    /// Table 1.
    pub table1: Table1,
    /// Figure 1's census.
    pub fleet: Census,
    /// Figures 3–4.
    pub campaign: SimResult,
    /// §3.5 headline statistics.
    pub deployment: DeploymentStats,
    /// Table 2 mixture recovery.
    pub table2: TallyResult,
    /// Table 3 mixture recovery.
    pub table3: TallyResult,
    /// §3.5 overhead probe.
    pub overhead: OverheadProbe,
}

impl StudyReport {
    /// Renders the full report as text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("================ Table 1 ================\n");
        s.push_str(&self.table1.render());
        s.push_str(&format!(
            "ratios Go/Java: creation {:.2}x (paper ~1.14x), p2p {:.2}x (3.7x), group {:.2}x (1.9x), maps {:.2}x (1.34x)\n\n",
            self.table1.creation_ratio(),
            self.table1.p2p_ratio(),
            self.table1.group_ratio(),
            self.table1.map_ratio()
        ));
        s.push_str("================ Figure 1 ================\n");
        for lang in Language::all() {
            let cdf = self.fleet.cdf(lang);
            s.push_str(&format!(
                "{lang:<7} median {:>6}  p90 {:>6}  max {:>7}\n",
                cdf.median(),
                cdf.quantile(0.9),
                cdf.max()
            ));
        }
        s.push_str("(paper medians: NodeJS 16, Python 16, Java 256, Go 2048)\n\n");
        s.push_str("================ Figures 3-4 / Section 3.5 ================\n");
        let d = &self.deployment;
        s.push_str(&format!(
            "detected {} (~2000)  fixed {} (1011)  engineers {} (210)  patches {} (790)  new/day {:.1} (~5)\n",
            d.total_detected, d.total_fixed, d.unique_engineers, d.unique_patches, d.new_per_day
        ));
        let out = |i: usize| self.campaign.daily[i].outstanding;
        s.push_str(&format!(
            "outstanding day10 {} -> day70 {} (shepherded drop); day115 {} -> day179 {} (post-shepherding rise)\n\n",
            out(10),
            out(70),
            out(115),
            out(179)
        ));
        s.push_str("================ Table 2 ================\n");
        s.push_str(&self.table2.render());
        s.push_str("\n================ Table 3 ================\n");
        s.push_str(&self.table3.render());
        s.push_str(&format!(
            "\n================ Overhead (Section 3.5) ================\ndetector on/off: {:.2}x (paper: 4x test time; TSan 2x-20x)\n",
            self.overhead.ratio()
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_study_runs_end_to_end() {
        let report = Study::quick(3).run();
        let rendered = report.render();
        assert!(rendered.contains("Table 1"));
        assert!(rendered.contains("Figure 1"));
        assert!(rendered.contains("Table 2"));
        assert!(rendered.contains("Table 3"));
        assert!(rendered.contains("Overhead"));
        // Core shape checks survive at quick scale.
        assert!(report.table1.p2p_ratio() > 1.5);
        assert_eq!(report.fleet.cdf(Language::Go).median(), 2048);
        assert!(report.deployment.total_detected > report.deployment.total_fixed);
        assert!(report.table2.classifier_accuracy >= 0.7);
        assert!(report.table3.classifier_accuracy >= 0.7);
    }
}
