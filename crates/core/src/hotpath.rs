//! Hot-path throughput probe shared by `bench_events`, the §3.5 overhead
//! example, and the flat-shadow regression tests.
//!
//! PR 7 replaces the detectors' HashMap shadow state with flat,
//! index-addressed arrays and routes replay through the batched `.grtrace`
//! decoder. This module packages the event-dense workload those changes
//! optimize, and a probe that measures both layers on it:
//!
//! * the **live campaign** path — schedule + instrument + detect, the
//!   figure every earlier PR reported; and
//! * the **batch replay** path — decode once, then drive the detector's
//!   struct-of-arrays hot loop over the same events repeatedly. This is
//!   the execute-once/analyze-many loop the flat rewrite targets, and the
//!   events/sec headline the ISSUE's ≥10× acceptance bound applies to.
//!
//! Both paths run in `flat` mode (the shipping detectors) or `oracle`
//! mode (the legacy HashMap cores, compiled only under the test-only
//! `oracle` feature). The probe also folds every deterministic output —
//! campaign run digests, trace digest, replay reports, peak shadow words
//! — into one [`HotpathProbe::digest`] so CI can assert the two modes
//! never diverge semantically while diverging in speed.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::Instant;

use grs_detector::{DetectorArena, DetectorChoice};
use grs_fleet::{Campaign, CampaignConfig, CampaignUnit};
use grs_runtime::{record, DecodedTrace, Program, RunConfig, Strategy};

/// The event-dense benchmark program: a long sequential compute phase
/// (2 000 read-modify-writes across 8 cells under a named frame, so every
/// event carries a two-deep stack) followed by a small channel-joined
/// concurrent tail that exercises the happens-before machinery and the
/// shared-read pruning. Detection work, not goroutine setup, dominates.
fn dense() -> Program {
    Program::new("dense", |ctx| {
        let _f = ctx.frame("ComputePhase");
        let cells: Vec<_> = (0..8).map(|i| ctx.cell(&format!("c{i}"), 0i64)).collect();
        for round in 0..250i64 {
            for cell in &cells {
                ctx.update(cell, |v| v + round);
            }
        }
        let x = ctx.cell("x", 0i64);
        let done = ctx.chan::<()>("done", 2);
        for _ in 0..2 {
            let (x, done) = (x.clone(), done.clone());
            ctx.go("w", move |ctx| {
                let _ = ctx.read(&x);
                done.send(ctx, ());
            });
        }
        for _ in 0..2 {
            let _ = done.recv(ctx);
        }
        ctx.write(&x, 1);
    })
}

/// The dense workload as a campaign unit (race-free: the channel barrier
/// joins both readers before the final write).
#[must_use]
pub fn dense_unit() -> CampaignUnit {
    CampaignUnit {
        name: "dense".into(),
        program: dense(),
        expected_racy: Some(false),
    }
}

/// Measurements from one [`hotpath_probe`] run.
#[derive(Debug, Clone)]
pub struct HotpathProbe {
    /// `"flat"` or `"oracle"`.
    pub mode: &'static str,
    /// Runs completed by the timed live campaign.
    pub campaign_runs: u64,
    /// Events dispatched by the timed live campaign.
    pub campaign_events: u64,
    /// Live-campaign throughput: schedule + instrument + detect.
    pub campaign_events_per_sec: f64,
    /// Timed passes of the batch-replay loop.
    pub replay_passes: u32,
    /// Events pushed through the replay hot loop (`passes × trace len`).
    pub replay_events: u64,
    /// Batch-replay throughput: the decode-once/analyze-many hot loop.
    pub replay_events_per_sec: f64,
    /// Peak FastTrack shadow footprint across campaign and replay.
    pub peak_shadow_words: u64,
    /// Largest interned-stack depot across the campaign.
    pub depot_stacks: u64,
    /// Mean occupancy of the decoder's SoA chunks (1.0 = every chunk full).
    pub batch_fill_rate: f64,
    /// Order-sensitive hash of every deterministic output: campaign run
    /// digests, trace digest, replay events/reports, shadow peaks. Flat
    /// and oracle modes must produce the same value; speed is the only
    /// permitted difference.
    pub digest: u64,
}

impl HotpathProbe {
    /// The headline ratio: this probe's batch-replay throughput over the
    /// baseline's live-campaign throughput — "how much faster is analyzing
    /// a recorded stream with flat shadow memory than executing under the
    /// legacy detector".
    #[must_use]
    pub fn speedup_over(&self, baseline: &HotpathProbe) -> f64 {
        self.replay_events_per_sec / baseline.campaign_events_per_sec.max(f64::MIN_POSITIVE)
    }
}

fn arena(oracle: bool) -> DetectorArena {
    if !oracle {
        return DetectorArena::new();
    }
    #[cfg(feature = "oracle")]
    return DetectorArena::new_oracle();
    #[cfg(not(feature = "oracle"))]
    panic!("oracle mode requires building with `--features oracle`")
}

/// Runs the dense workload through both hot paths and reports throughput.
///
/// `seeds` controls the live campaign size; `passes` controls how many
/// times the replay loop re-analyzes the recorded trace. Both paths get
/// one untimed warmup iteration.
///
/// # Panics
///
/// In `oracle` mode when the crate was built without the test-only
/// `oracle` feature.
#[must_use]
pub fn hotpath_probe(oracle: bool, seeds: usize, passes: u32) -> HotpathProbe {
    let config = CampaignConfig::smoke()
        .seeds_per_unit(seeds)
        .workers(1)
        .detectors(vec![DetectorChoice::FastTrack])
        .strategies(vec![Strategy::Random])
        .oracle_shadow(oracle);
    let campaign = Campaign::over_units(config, vec![dense_unit()]);
    let _ = campaign.run(); // warm up allocations and branch predictors
    let started = Instant::now();
    let result = campaign.run();
    let campaign_secs = started.elapsed().as_secs_f64();
    assert_eq!(result.racy_runs(), 0, "the dense unit is race-free");

    // The replay hot loop: record the dense schedule once, decode once,
    // then re-analyze the decoded stream `passes` times.
    let (_, trace) = record(&dense(), &RunConfig::with_seed(1));
    let bytes = trace.encode();
    let decoded = DecodedTrace::decode(&bytes).expect("a just-encoded trace always decodes");
    let choices = [DetectorChoice::FastTrack];
    let mut replay_arena = arena(oracle);
    let mut outcomes =
        replay_arena.replay_many_decoded_observed(&decoded, &choices, &grs_obs::NULL_SINK);
    let started = Instant::now();
    for _ in 0..passes {
        outcomes =
            replay_arena.replay_many_decoded_observed(&decoded, &choices, &grs_obs::NULL_SINK);
    }
    let replay_secs = started.elapsed().as_secs_f64();
    let replay_events = decoded.len() as u64 * u64::from(passes);

    let replay_peak = outcomes
        .iter()
        .map(|(_, out)| out.peak_shadow_words as u64)
        .max()
        .unwrap_or(0);

    // Fold every deterministic output into one digest. `DefaultHasher`
    // is keyed with process-independent constants, so flat and oracle
    // builds — and separate CI processes — can compare values directly.
    let mut h = DefaultHasher::new();
    result.deterministic_digest().hash(&mut h);
    trace.digest().hash(&mut h);
    for (choice, out) in &outcomes {
        format!("{choice}").hash(&mut h);
        out.events.hash(&mut h);
        (out.peak_shadow_words as u64).hash(&mut h);
        for report in &out.reports {
            format!("{report}").hash(&mut h);
        }
    }

    HotpathProbe {
        mode: if oracle { "oracle" } else { "flat" },
        campaign_runs: result.total_runs() as u64,
        campaign_events: result.total_events(),
        campaign_events_per_sec: result.total_events() as f64 / campaign_secs.max(1e-9),
        replay_passes: passes,
        replay_events,
        replay_events_per_sec: replay_events as f64 / replay_secs.max(1e-9),
        peak_shadow_words: (result.peak_shadow_words() as u64).max(replay_peak),
        depot_stacks: result.max_depot_stacks() as u64,
        batch_fill_rate: decoded.fill_rate(),
        digest: h.finish(),
    }
}
