//! `grs` — the umbrella crate for the PLDI'22 study reproduction.
//!
//! *"A Study of Real-World Data Races in Golang"* (Chabbi & Ramanathan,
//! Uber) is reproduced here as a family of crates; this one re-exports them
//! under stable module names and provides one runner per table/figure of
//! the paper's evaluation in [`experiments`].
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`runtime`] | `grs-runtime` | deterministic Go-semantics runtime |
//! | [`clock`] | `grs-clock` | vector clocks, epochs, locksets |
//! | [`detector`] | `grs-detector` | FastTrack / Eraser / TSan + explorer |
//! | [`patterns`] | `grs-patterns` | executable §4 pattern corpus |
//! | [`deploy`] | `grs-deploy` | §3.3 pipeline + campaign simulation |
//! | [`golite`] | `grs-golite` | Go subset frontend, scanner, lints |
//! | [`corpus`] | `grs-corpus` | synthetic monorepos (Table 1) |
//! | [`interp`] | `grs-interp` | Go-lite interpreter on the runtime |
//! | [`fleet`] | `grs-fleet` | concurrency census (Figure 1) + parallel campaign engine |
//! | [`obs`] | `grs-obs` | metrics registry, span tracing, §3.5 campaign timelines |
//!
//! # Example: detect Listing 1's race end to end
//!
//! ```
//! use grs::detector::{ExploreConfig, Explorer};
//! use grs::patterns;
//!
//! let listing1 = patterns::find("loop_index_capture").expect("in corpus");
//! let result = Explorer::new(ExploreConfig::quick()).explore(&listing1.racy_program());
//! assert!(result.found_race());
//! println!("{}", result.unique_races[0]);
//! ```

pub use grs_clock as clock;
pub use grs_corpus as corpus;
pub use grs_deploy as deploy;
pub use grs_detector as detector;
pub use grs_fleet as fleet;
pub use grs_golite as golite;
pub use grs_interp as interp;
pub use grs_obs as obs;
pub use grs_patterns as patterns;
pub use grs_runtime as runtime;

pub mod classify;
pub mod experiments;
pub mod hotpath;
pub mod study;

pub use classify::classify;
pub use hotpath::{dense_unit, hotpath_probe, HotpathProbe};
pub use experiments::{
    figure1, figure3_figure4, overhead_probe, overhead_workload, static_dynamic_agreement,
    table1, table2, table3,
    AgreementResult, AgreementRow, CategoryTally, DeploymentStats, OverheadProbe, TallyConfig,
};
pub use study::{Study, StudyReport};

/// The workspace-wide prelude: the ~15 types nearly every experiment,
/// example, and test imports, re-exported explicitly (no glob-of-globs, so
/// rustdoc attributes each item to its home crate).
///
/// `grs_deploy`'s tracker-dynamics simulation (`sim::TrackerSim`) keeps its
/// historical `Intake*` prelude aliases; `Campaign`/`CampaignConfig`/
/// `CampaignResult` here always mean the execution engine
/// (`grs_fleet::campaign`), and the streaming intake server is
/// `IntakeService`.
///
/// ```
/// use grs::prelude::*;
///
/// let result = Campaign::over_patterns(CampaignConfig::new().seeds_per_unit(2)).run();
/// assert!(result.detection_rate() > 0.0);
/// ```
pub mod prelude {
    pub use grs_deploy::service::{IntakeError, IntakeService, IntakeSummary};
    pub use grs_deploy::sim::{
        SimConfig as IntakeConfig, SimResult as IntakeResult, TrackerSim as IntakeSim,
    };
    pub use grs_deploy::store::Snapshot;
    #[allow(deprecated)]
    pub use grs_deploy::Pipeline;
    pub use grs_deploy::{race_fingerprint, Fingerprint, OwnerDb};
    pub use grs_detector::{DetectorArena, DetectorChoice, ExploreConfig, Explorer, RaceReport};
    pub use grs_fleet::{
        corpus_suite, pattern_suite, Campaign, CampaignConfig, CampaignResult, CampaignUnit,
    };
    pub use grs_obs::{MetricsRegistry, ObsReport, ObsSink, CampaignTimeline, TimelineConfig};
    pub use grs_runtime::{Program, RunConfig, Runtime, Strategy, Trace};
}
