//! One runner per table/figure of the paper's evaluation.
//!
//! | Runner | Paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — construct densities, Go vs Java |
//! | [`figure1`] | Figure 1 — fleet concurrency CDF |
//! | [`figure3_figure4`] | Figures 3–4 + §3.5 — deployment campaign |
//! | [`table2`] | Table 2 — races by Go feature |
//! | [`table3`] | Table 3 — language-agnostic races |
//! | [`overhead_probe`] | §3.5 — detector runtime overhead |
//! | [`static_dynamic_agreement`] | §5 — static lint rules vs the dynamic detector |

use std::time::Instant;

use grs_corpus::table1::{self as t1, Table1, Table1Config};
use grs_deploy::sim::{SimConfig, SimResult, TrackerSim};
use grs_detector::{ExploreConfig, Explorer, Tsan};
use grs_fleet::{census, Census, CensusConfig};
use grs_golite::{lint_file, parse_file, Rule};
use grs_patterns::{gosrc, registry, Category, Pattern, Table};
use grs_runtime::{NullMonitor, Program, RunConfig, Runtime};

use crate::classify::classify;

/// Runs the Table 1 experiment (synthetic monorepos + scanners).
#[must_use]
pub fn table1(go_scale: f64, seed: u64) -> Table1 {
    t1::generate_and_scan(&Table1Config::balanced(go_scale), seed)
}

/// Runs the Figure 1 experiment (fleet census).
#[must_use]
pub fn figure1(fleet_scale: f64, seed: u64) -> Census {
    census(&CensusConfig::paper_scaled(fleet_scale), seed)
}

/// Headline §3.5 statistics extracted from a campaign run.
#[derive(Debug, Clone, Copy)]
pub struct DeploymentStats {
    /// Total races detected over the window (paper: ~2000).
    pub total_detected: u32,
    /// Races fixed (paper: 1011).
    pub total_fixed: u32,
    /// Distinct fixing engineers (paper: 210).
    pub unique_engineers: u32,
    /// Distinct fixing patches (paper: 790).
    pub unique_patches: u32,
    /// Steady-state new reports per day (paper: ~5).
    pub new_per_day: f64,
}

/// Runs the six-month deployment campaign behind Figures 3 and 4.
#[must_use]
pub fn figure3_figure4(seed: u64) -> (SimResult, DeploymentStats) {
    let result = TrackerSim::new(SimConfig::paper()).run(seed);
    let stats = DeploymentStats {
        total_detected: result.total_filed,
        total_fixed: result.total_fixed,
        unique_engineers: result.unique_engineers,
        unique_patches: result.unique_patches,
        new_per_day: result.steady_state_new_per_day(30),
    };
    (result, stats)
}

/// Configuration for the Table 2/3 mixture-recovery experiments.
#[derive(Debug, Clone)]
pub struct TallyConfig {
    /// Divide the paper's per-category counts by this factor to size the
    /// injected population (e.g. `10.0` → ~100 program instances for
    /// Table 2).
    pub scale_divisor: f64,
    /// Explorer runs per program instance.
    pub runs_per_instance: usize,
    /// Base seed.
    pub seed: u64,
}

impl TallyConfig {
    /// A configuration small enough for tests (~1 instance per category).
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        TallyConfig {
            scale_divisor: 400.0,
            runs_per_instance: 40,
            seed,
        }
    }

    /// The benchmark configuration (~10% of the paper's population).
    #[must_use]
    pub fn bench(seed: u64) -> Self {
        TallyConfig {
            scale_divisor: 10.0,
            runs_per_instance: 40,
            seed,
        }
    }
}

/// One row of the reproduced Table 2 / Table 3.
#[derive(Debug, Clone)]
pub struct CategoryTally {
    /// The category (row label).
    pub category: Category,
    /// The paper's count (None for the illegible err-capture cell).
    pub paper_count: Option<u32>,
    /// Instances injected into the synthetic population.
    pub injected: u32,
    /// Instances where the explorer detected at least one race.
    pub detected: u32,
    /// Detected instances the classifier assigned to this category.
    pub classified_here: u32,
}

/// Result of a mixture-recovery experiment.
#[derive(Debug, Clone)]
pub struct TallyResult {
    /// Per-category rows, in paper order.
    pub rows: Vec<CategoryTally>,
    /// Fraction of detected instances whose classification matched the
    /// injected ground truth.
    pub classifier_accuracy: f64,
}

impl TallyResult {
    /// Renders rows in the paper's table layout.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("| Category                                        | Paper | Injected | Detected | Classified |\n");
        s.push_str("|--------------------------------------------------|-------|----------|----------|------------|\n");
        for r in &self.rows {
            s.push_str(&format!(
                "| {:<48} | {:>5} | {:>8} | {:>8} | {:>10} |\n",
                r.category.description(),
                r.paper_count
                    .map_or_else(|| "n/a".to_string(), |c| c.to_string()),
                r.injected,
                r.detected,
                r.classified_here
            ));
        }
        s.push_str(&format!(
            "| classifier accuracy: {:.1}%\n",
            self.classifier_accuracy * 100.0
        ));
        s
    }
}

/// Reproduces Table 2 (Go-feature categories).
#[must_use]
pub fn table2(config: &TallyConfig) -> TallyResult {
    tally(config, Table::GoFeature)
}

/// Reproduces Table 3 (language-agnostic categories).
#[must_use]
pub fn table3(config: &TallyConfig) -> TallyResult {
    tally(config, Table::LanguageAgnostic)
}

fn patterns_for(category: Category) -> Vec<Pattern> {
    registry()
        .into_iter()
        .filter(|p| p.category == category)
        .collect()
}

fn tally(config: &TallyConfig, table: Table) -> TallyResult {
    let explorer = Explorer::new(
        ExploreConfig::quick()
            .runs(config.runs_per_instance)
            .base_seed(config.seed),
    );
    let mut rows = Vec::new();
    let mut total_detected = 0u32;
    let mut total_correct = 0u32;
    // First pass: count per-category classifications across the whole
    // population (a report can be classified into any category, so tallies
    // must be accumulated globally).
    let mut classified: std::collections::HashMap<Category, u32> =
        std::collections::HashMap::new();
    let mut detected_per_cat: std::collections::HashMap<Category, u32> =
        std::collections::HashMap::new();
    let mut injected_per_cat: std::collections::HashMap<Category, u32> =
        std::collections::HashMap::new();

    for &category in Category::all() {
        if category.table() != table {
            continue;
        }
        let pats = patterns_for(category);
        if pats.is_empty() {
            continue;
        }
        // Population size: paper count / divisor (min 1). The err-capture
        // row has no paper count; inject one instance and report it as n/a.
        let n = category
            .paper_count()
            .map_or(1, |c| ((f64::from(c) / config.scale_divisor).round() as u32).max(1));
        injected_per_cat.insert(category, n);
        for i in 0..n {
            let pattern = &pats[i as usize % pats.len()];
            let result = explorer.explore(&pattern.racy_program());
            if let Some(first) = result.unique_races.first() {
                *detected_per_cat.entry(category).or_insert(0) += 1;
                total_detected += 1;
                let predicted = classify(first);
                *classified.entry(predicted).or_insert(0) += 1;
                if predicted == category {
                    total_correct += 1;
                }
            }
        }
    }

    for &category in Category::all() {
        if category.table() != table {
            continue;
        }
        if patterns_for(category).is_empty() {
            continue;
        }
        rows.push(CategoryTally {
            category,
            paper_count: category.paper_count(),
            injected: injected_per_cat.get(&category).copied().unwrap_or(0),
            detected: detected_per_cat.get(&category).copied().unwrap_or(0),
            classified_here: classified.get(&category).copied().unwrap_or(0),
        });
    }

    TallyResult {
        rows,
        classifier_accuracy: if total_detected == 0 {
            0.0
        } else {
            f64::from(total_correct) / f64::from(total_detected)
        },
    }
}

/// One row of the static-vs-dynamic agreement matrix: the same bug, once
/// as Go-lite source in front of the lint engine and once as an
/// executable program in front of the dynamic explorer.
#[derive(Debug, Clone)]
pub struct AgreementRow {
    /// The executable pattern's registry ID.
    pub pattern_id: &'static str,
    /// The lint rule under test.
    pub rule: Rule,
    /// The lint fired `rule` on the racy source (want `true`).
    pub static_racy: bool,
    /// The lint fired `rule` on the fixed source (want `false`).
    pub static_fixed: bool,
    /// The explorer detected a race in the racy program (want `true`).
    pub dynamic_racy: bool,
    /// The explorer detected a race in the fixed program (want `false`).
    pub dynamic_fixed: bool,
}

impl AgreementRow {
    /// Both verdict pairs match: lint fires exactly where the explorer
    /// observes a race.
    #[must_use]
    pub fn agrees(&self) -> bool {
        self.static_racy == self.dynamic_racy && self.static_fixed == self.dynamic_fixed
    }

    /// The ideal cell: racy flagged by both tools, fixed flagged by neither.
    #[must_use]
    pub fn perfect(&self) -> bool {
        self.static_racy && self.dynamic_racy && !self.static_fixed && !self.dynamic_fixed
    }
}

/// Result of the agreement experiment.
#[derive(Debug, Clone)]
pub struct AgreementResult {
    /// One row per lint rule, in `GR001`…`GR018` order.
    pub rows: Vec<AgreementRow>,
    /// Fraction of (rendition, variant) verdict pairs where the two tools
    /// agree: 1.0 means the static engine is a perfect oracle for what the
    /// dynamic detector observes on this corpus.
    pub agreement: f64,
}

impl AgreementResult {
    /// Renders the matrix as a markdown table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(
            "| Rule  | Pattern                  | Static racy | Static fixed | Dynamic racy | Dynamic fixed | Agree |\n",
        );
        s.push_str(
            "|-------|--------------------------|-------------|--------------|--------------|---------------|-------|\n",
        );
        for r in &self.rows {
            s.push_str(&format!(
                "| {} | {:<24} | {:>11} | {:>12} | {:>12} | {:>13} | {:>5} |\n",
                r.rule.id(),
                r.pattern_id,
                r.static_racy,
                r.static_fixed,
                r.dynamic_racy,
                r.dynamic_fixed,
                if r.agrees() { "yes" } else { "NO" },
            ));
        }
        s.push_str(&format!("| agreement: {:.1}%\n", self.agreement * 100.0));
        s
    }
}

/// Scores the static lint engine against the dynamic explorer over the
/// Go-rendition corpus: for each rule's racy/fixed source pair, does the
/// lint fire exactly where the explorer observes a race in the executable
/// twin?
///
/// `runs` is the explorer's schedule budget per program; 60 suffices for
/// every pattern in the corpus.
///
/// # Panics
/// Panics if a rendition references an unknown pattern, an unknown rule
/// ID, or Go source that does not parse — all three are corpus bugs, not
/// data-dependent conditions.
#[must_use]
pub fn static_dynamic_agreement(runs: usize, seed: u64) -> AgreementResult {
    let explorer = Explorer::new(ExploreConfig::quick().runs(runs).base_seed(seed));
    let fires = |src: &str, rule: Rule| -> bool {
        let file = parse_file(src).expect("rendition source parses");
        lint_file(&file).iter().any(|f| f.rule == rule)
    };
    let mut rows = Vec::new();
    for r in gosrc::renditions() {
        let rule = Rule::from_id(r.rule).expect("rendition names a known rule");
        let pattern =
            grs_patterns::find(r.pattern_id).expect("rendition has an executable twin");
        rows.push(AgreementRow {
            pattern_id: r.pattern_id,
            rule,
            static_racy: fires(r.racy, rule),
            static_fixed: fires(r.fixed, rule),
            dynamic_racy: explorer.explore(&pattern.racy_program()).found_race(),
            dynamic_fixed: explorer.explore(&pattern.fixed_program()).found_race(),
        });
    }
    let pairs = rows.len() * 2;
    let agreeing: usize = rows
        .iter()
        .map(|r| {
            usize::from(r.static_racy == r.dynamic_racy)
                + usize::from(r.static_fixed == r.dynamic_fixed)
        })
        .sum();
    AgreementResult {
        rows,
        agreement: if pairs == 0 {
            0.0
        } else {
            agreeing as f64 / pairs as f64
        },
    }
}

/// A quick wall-clock probe of detector overhead (§3.5 reports 4× test
/// time; Criterion benches measure this precisely — this probe is for
/// examples and smoke tests).
#[derive(Debug, Clone, Copy)]
pub struct OverheadProbe {
    /// Nanoseconds per run without a detector.
    pub baseline_ns: u128,
    /// Nanoseconds per run under the TSan-style detector.
    pub detector_ns: u128,
}

impl OverheadProbe {
    /// The slowdown factor.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.baseline_ns == 0 {
            return 0.0;
        }
        self.detector_ns as f64 / self.baseline_ns as f64
    }
}

/// Measures one workload program with and without the detector.
#[must_use]
pub fn overhead_probe(program: &Program, runs: u32, seed: u64) -> OverheadProbe {
    let start = Instant::now();
    for i in 0..runs {
        let cfg = RunConfig::with_seed(seed + u64::from(i));
        let _ = Runtime::new(cfg).run(program, NullMonitor);
    }
    let baseline_ns = start.elapsed().as_nanos() / u128::from(runs.max(1));
    let start = Instant::now();
    for i in 0..runs {
        let cfg = RunConfig::with_seed(seed + u64::from(i));
        let _ = Runtime::new(cfg).run(program, Tsan::new());
    }
    let detector_ns = start.elapsed().as_nanos() / u128::from(runs.max(1));
    OverheadProbe {
        baseline_ns,
        detector_ns,
    }
}

/// A representative unit-test-like workload for the overhead probe: a
/// sequential compute phase dense in instrumented accesses (where detector
/// cost dominates, as in instrumented Go binaries) followed by a worker
/// pool exchanging values over channels under locks.
#[must_use]
pub fn overhead_workload() -> Program {
    Program::new("overhead_workload", |ctx| {
        // Phase 1: instrumentation-dense sequential work.
        let cells: Vec<_> = (0..8).map(|i| ctx.cell(&format!("acc{i}"), 0i64)).collect();
        for round in 0..120i64 {
            for cell in &cells {
                ctx.update(cell, |v| v + round);
            }
        }
        // Phase 2: concurrent pipeline.
        let mu = ctx.mutex("mu");
        let total = ctx.cell("total", 0i64);
        let results = ctx.chan::<i64>("results", 8);
        let wg = ctx.waitgroup("wg");
        for w in 0..4i64 {
            wg.add(ctx, 1);
            let (mu, total, results, wg) =
                (mu.clone(), total.clone(), results.clone(), wg.clone());
            ctx.go("worker", move |ctx| {
                for i in 0..10 {
                    mu.lock(ctx);
                    ctx.update(&total, |v| v + i);
                    mu.unlock(ctx);
                    results.send(ctx, w * 100 + i);
                }
                wg.done(ctx);
            });
        }
        let mut received = 0;
        while received < 40 {
            let _ = results.recv(ctx);
            received += 1;
        }
        wg.wait(ctx);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_runs_and_has_paper_shape() {
        let t = table1(0.0005, 3);
        assert!(t.p2p_ratio() > 1.5, "Go must dominate p2p sync");
        assert!(t.go.loc > 10_000);
    }

    #[test]
    fn figure1_medians() {
        let f = figure1(0.01, 4);
        assert_eq!(f.cdf(grs_fleet::Language::Go).median(), 2048);
    }

    #[test]
    fn campaign_stats_are_plausible() {
        let (result, stats) = figure3_figure4(7);
        assert_eq!(result.daily.len(), 180);
        assert!(stats.total_detected > stats.total_fixed);
        assert!(stats.unique_patches <= stats.total_fixed);
    }

    #[test]
    fn table2_quick_recovery() {
        let r = table2(&TallyConfig::quick(5));
        assert!(r.rows.len() >= 9);
        // Every injected instance must be detected.
        for row in &r.rows {
            assert_eq!(
                row.detected, row.injected,
                "{}: detection failed",
                row.category
            );
        }
        assert!(r.classifier_accuracy >= 0.7, "{}", r.render());
    }

    #[test]
    fn table3_quick_recovery() {
        let r = table3(&TallyConfig::quick(6));
        assert!(r.rows.len() >= 8);
        for row in &r.rows {
            assert_eq!(
                row.detected, row.injected,
                "{}: detection failed",
                row.category
            );
        }
        assert!(r.classifier_accuracy >= 0.7, "{}", r.render());
    }

    #[test]
    fn agreement_matrix_is_perfect_on_the_corpus() {
        let r = static_dynamic_agreement(60, 9);
        assert_eq!(r.rows.len(), 18, "one row per lint rule");
        for row in &r.rows {
            assert!(
                row.perfect(),
                "{} ({}) disagrees:\n{}",
                row.rule.id(),
                row.pattern_id,
                r.render()
            );
        }
        assert!((r.agreement - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn overhead_probe_shows_slowdown() {
        // The detector must cost something; the magnitude is measured
        // precisely by the Criterion bench. A 10-run wall-clock comparison
        // is noisy on a loaded single-CPU runner, so give the probe a few
        // independent attempts before declaring the detector free.
        let p = overhead_workload();
        let slower = (0..3).any(|attempt| {
            let probe = overhead_probe(&p, 10, 1 + attempt);
            probe.detector_ns >= probe.baseline_ns && probe.ratio() >= 1.0
        });
        assert!(slower, "detector never measured slower than baseline");
    }
}
