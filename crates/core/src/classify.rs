//! Rule-based root-cause classification of race reports.
//!
//! The paper's Tables 2–3 come from *manually* labeling 1011 fixed races;
//! it explicitly leaves automation as future work ("Automatically triaging
//! the root cause ... is an interesting area of research worth exploring
//! but is outside the scope of our current effort", §3.3.1, and Remark 2).
//! This module is a first cut at that future work for the simulated corpus:
//! a decision list over the contents of a [`RaceReport`] — the object's
//! name shape (map structure words, slice header words), the stack frames,
//! the access kinds (atomic vs plain), and the locks held at each side.
//!
//! The Table 2/3 experiments use it to *recover* an injected category
//! mixture from detector output alone, and report its accuracy against the
//! known ground truth.

use grs_detector::RaceReport;
use grs_patterns::Category;

/// Classifies one race report into a Table 2/3 category.
#[must_use]
pub fn classify(report: &RaceReport) -> Category {
    let object = report.object.to_string();
    let frames: Vec<String> = {
        let (a, b) = report.stacks();
        a.func_names()
            .into_iter()
            .chain(b.func_names())
            .map(str::to_string)
            .collect()
    };
    let has_frame = |needle: &str| frames.iter().any(|f| f.contains(needle));
    let one_atomic = report.prior.kind.is_atomic() ^ report.current.kind.is_atomic();
    let both_hold_common_lock = report
        .prior
        .locks_held
        .shares_lock_with(&report.current.locks_held);
    let exactly_one_locked = (report.prior.locks_held.is_empty()
        != report.current.locks_held.is_empty())
        && !both_hold_common_lock;

    // Decision list: most specific evidence first.
    if both_hold_common_lock {
        // A true race while both sides hold the same lock is only possible
        // when the lock was held in shared (read) mode: Listing 11.
        return Category::RLockWrite;
    }
    if one_atomic {
        return Category::AtomicMisuse;
    }
    if has_frame("Future.") || object.starts_with("f.") {
        return Category::MessagePassingShm;
    }
    if has_frame("fetch") && object.contains("partial") {
        return Category::MessagePassingShm;
    }
    if has_frame("Client.") {
        return Category::ContractViolation;
    }
    if has_frame("WaitGrpExample") || has_frame("processItem") || has_frame("GatherStats") {
        return Category::GroupSync;
    }
    if has_frame("deferred") {
        return Category::NamedReturnCapture;
    }
    if object == "err" {
        return Category::ErrCapture;
    }
    if object == "result" || object == "resp" {
        return Category::NamedReturnCapture;
    }
    if object == "job" || object == "id" || has_frame("ProcessJob") || has_frame("notify") {
        return Category::LoopIndexCapture;
    }
    if has_frame("parallel-subtest") {
        return Category::DisabledTests;
    }
    if has_frame("subtest") || has_frame("Pricer.") {
        return Category::ParallelTest;
    }
    if has_frame("CriticalSection") || has_frame("Stats.") || has_frame("SafeCounter") {
        return Category::PassByValue;
    }
    if object.contains("[structure]") {
        return Category::MapConcurrent;
    }
    if object.contains("[header]") || object.contains('[') {
        return Category::SliceConcurrent;
    }
    if object.starts_with("pkg.") {
        return Category::GlobalVar;
    }
    if object.contains("metrics") {
        return Category::MetricsLogging;
    }
    if object.starts_with("cfg.") || has_frame("reload") {
        return Category::ComplexInteraction;
    }
    if has_frame("poll") || object.contains("interval") {
        return Category::StatementOrder;
    }
    if has_frame("enrich") {
        return Category::RemovedConcurrency;
    }
    if has_frame("sumShard") {
        return Category::MajorRefactor;
    }
    if exactly_one_locked {
        // Locked on one side, forgotten on the other: partial locking.
        return Category::MissingLock;
    }
    // The paper's dominant catch-all.
    Category::MissingLock
}

#[cfg(test)]
mod tests {
    use super::*;
    use grs_detector::{ExploreConfig, Explorer};
    use grs_patterns::registry;

    /// The classifier must recover the ground-truth category for most of
    /// the corpus (the experiments report the exact accuracy).
    #[test]
    fn classifier_recovers_most_pattern_categories() {
        let explorer = Explorer::new(ExploreConfig::quick().runs(60));
        let mut total = 0;
        let mut correct = 0;
        let mut misses = Vec::new();
        for pattern in registry() {
            let result = explorer.explore(&pattern.racy_program());
            let Some(first) = result.unique_races.first() else {
                continue;
            };
            total += 1;
            let predicted = classify(first);
            if predicted == pattern.category {
                correct += 1;
            } else {
                misses.push((pattern.id, pattern.category, predicted));
            }
        }
        assert!(total >= 20, "most patterns should be detected");
        let accuracy = correct as f64 / total as f64;
        assert!(
            accuracy >= 0.8,
            "classifier accuracy {accuracy:.2}; misses: {misses:#?}"
        );
    }
}
