//! Offline drop-in replacement for the subset of `rand` 0.8 used by this
//! workspace.
//!
//! The reproduction runs in environments without crates.io access, so the
//! real `rand` cannot be fetched. This stub keeps the call sites unchanged
//! (`use rand::rngs::StdRng`, `Rng::gen_range`, `SliceRandom::shuffle`, …)
//! while backing them with SplitMix64 — a small, well-studied 64-bit
//! generator whose statistical quality is ample for seeded simulation
//! workloads. It is **not** the upstream ChaCha-based `StdRng`: streams
//! differ from the real crate, but every consumer in this repository only
//! relies on determinism-per-seed, not on a specific stream.

/// Uniform sampling from a half-open range, implemented per primitive type.
pub trait SampleUniform: Sized {
    /// Draws a value in `[lo, hi)` from `rng`.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

/// The raw entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        // 53 uniformly random mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + (hi - lo) * unit
    }
}

/// The user-facing sampling methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from a half-open `lo..hi` range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_half_open(range.start, range.end, self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding interface (mirrors `rand::SeedableRng` minus the byte-array
/// constructors nobody here uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 stream. Fixed 8-byte state, `Copy`-cheap, passes BigCrush
    /// for the volumes used here.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up scramble so seeds 0 and 1 diverge immediately.
            let mut rng = StdRng {
                state: seed ^ 0x5D58_8B65_6C07_8965,
            };
            let _ = rng.next_u64();
            rng
        }
    }
}

/// Slice helpers (mirrors `rand::seq::SliceRandom`).
pub mod seq {
    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0..1_000_000u64)).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
