//! Language-semantics tests for the interpreter: each Go-lite construct
//! behaves like its Go counterpart. Programs communicate results through a
//! channel read by `main`, and a final `panic` marks failures (which the
//! runtime surfaces as goroutine panics).

use grs_interp::Interp;
use grs_runtime::{NullMonitor, RunConfig, Runtime};

/// Runs `main` and asserts a clean run (no panics/deadlocks/leaks).
fn run_ok(src: &str) {
    let interp = Interp::from_source(src).unwrap_or_else(|e| panic!("parse error: {e}"));
    let program = interp.program("semantics", "main");
    let (outcome, _) = Runtime::new(RunConfig::with_seed(1)).run(&program, NullMonitor);
    assert!(
        outcome.is_clean(),
        "program failed: errors={:?} deadlock={:?} leaked={:?}",
        outcome.errors,
        outcome.deadlock,
        outcome.leaked
    );
}

/// Runs `main` and asserts the program panicked with a message containing
/// `needle`.
fn run_panics(src: &str, needle: &str) {
    let interp = Interp::from_source(src).unwrap_or_else(|e| panic!("parse error: {e}"));
    let program = interp.program("semantics", "main");
    let (outcome, _) = Runtime::new(RunConfig::with_seed(1)).run(&program, NullMonitor);
    assert!(
        outcome.errors.iter().any(|e| e.to_string().contains(needle)),
        "expected panic containing {needle:?}, got {:?}",
        outcome.errors
    );
}

/// Go-lite has no assert; this helper wraps sources with one.
fn check(body: &str) -> String {
    format!(
        r#"
package main

func assert(cond bool, msg string) {{
    if !cond {{
        panic(msg)
    }}
}}

func main() {{
{body}
}}
"#
    )
}

#[test]
fn arithmetic_and_comparisons() {
    run_ok(&check(
        r#"
    assert(2+3*4 == 14, "precedence")
    assert((2+3)*4 == 20, "parens")
    assert(10/3 == 3, "int division")
    assert(10%3 == 1, "modulo")
    assert(7&3 == 3, "and")
    assert(4|1 == 5, "or")
    assert(1<<4 == 16, "shl")
    assert(-5 < 0 && 5 > 0, "signs")
    assert("a"+"b" == "ab", "concat")
    assert("abc" < "abd", "string order")
    "#,
    ));
}

#[test]
fn short_circuit_evaluation() {
    run_ok(&check(
        r#"
    hits := 0
    bump := func() bool {
        hits = hits + 1
        return true
    }
    ok := false || bump()
    assert(ok, "or result")
    ok2 := false && bump()
    assert(!ok2, "and result")
    assert(hits == 1, "rhs of && must not run")
    "#,
    ));
}

#[test]
fn closures_capture_by_reference() {
    run_ok(&check(
        r#"
    x := 1
    inc := func() { x = x + 1 }
    inc()
    inc()
    assert(x == 3, "closure mutated captured variable")
    "#,
    ));
}

#[test]
fn defer_runs_lifo_with_eager_args() {
    run_ok(&check(
        r#"
    order := []int{}
    f := func() {
        record := func(n int) { order = append(order, n) }
        x := 1
        defer record(x) // captures x == 1 NOW
        x = 2
        defer record(x) // captures x == 2 NOW
        x = 3
    }
    f()
    assert(len(order) == 2, "two defers")
    assert(order[0] == 2, "LIFO first")
    assert(order[1] == 1, "LIFO second")
    "#,
    ));
}

#[test]
fn named_returns_and_naked_return() {
    run_ok(
        r#"
package main

func assert(cond bool, msg string) {
    if !cond {
        panic(msg)
    }
}

func f(naked bool) (result int) {
    result = 10
    if naked {
        return
    }
    return 20
}

func deferred() (n int) {
    defer func() { n = n + 1 }()
    return 5
}

func main() {
    assert(f(true) == 10, "naked return reads the named cell")
    assert(f(false) == 20, "return expr writes the named cell")
    assert(deferred() == 6, "defer mutates the named result")
}
"#,
    );
}

#[test]
fn structs_methods_and_receivers() {
    run_ok(
        r#"
package main

type Counter struct {
    n int
}

func (c *Counter) bump() {
    c.n = c.n + 1
}

func (c Counter) bumpCopy() {
    c.n = c.n + 100 // mutates a copy only
}

func assert(cond bool, msg string) {
    if !cond {
        panic(msg)
    }
}

func main() {
    c := Counter{n: 5}
    c.bump()
    c.bump()
    assert(c.n == 7, "pointer receiver mutates")
    c.bumpCopy()
    assert(c.n == 7, "value receiver copies")
    p := &c
    p.bump()
    assert(c.n == 8, "method via pointer")
}
"#,
    );
}

#[test]
fn pointers_share_and_deref() {
    run_ok(&check(
        r#"
    x := 1
    p := &x
    *p = 9
    assert(x == 9, "write through pointer")
    assert(*p == 9, "read through pointer")
    "#,
    ));
}

#[test]
fn slices_and_maps() {
    run_ok(&check(
        r#"
    s := []int{1, 2, 3}
    s = append(s, 4)
    assert(len(s) == 4, "append grows")
    assert(s[3] == 4, "index")
    s[0] = 100
    assert(s[0] == 100, "set")
    total := 0
    for _, v := range s {
        total = total + v
    }
    assert(total == 109, "range sum")

    m := make(map[string]int)
    m["a"] = 1
    m["b"] = 2
    assert(m["a"] == 1, "map get")
    assert(len(m) == 2, "map len")
    delete(m, "a")
    assert(len(m) == 1, "delete")
    count := 0
    for k, v := range m {
        _ = k
        count = count + v
    }
    assert(count == 2, "map range")
    "#,
    ));
}

#[test]
fn channels_and_close() {
    run_ok(&check(
        r#"
    ch := make(chan int, 2)
    ch <- 1
    ch <- 2
    close(ch)
    a := <-ch
    b := <-ch
    c, ok := <-ch
    assert(a == 1 && b == 2, "fifo")
    assert(!ok, "closed")
    assert(c == nil, "zero value after close")
    "#,
    ));
}

#[test]
fn select_with_default() {
    run_ok(&check(
        r#"
    ch := make(chan int, 1)
    picked := 0
    select {
    case v := <-ch:
        picked = v
    default:
        picked = -1
    }
    assert(picked == -1, "default fires on empty channel")
    ch <- 7
    select {
    case v := <-ch:
        picked = v
    default:
        picked = -1
    }
    assert(picked == 7, "recv arm fires when ready")
    "#,
    ));
}

#[test]
fn select_send_arm() {
    run_ok(&check(
        r#"
    ch := make(chan int, 1)
    sent := false
    select {
    case ch <- 5:
        sent = true
    default:
    }
    assert(sent, "send arm fires with buffer space")
    select {
    case ch <- 6:
        panic("buffer full, send must not fire")
    default:
    }
    assert(<-ch == 5, "value delivered")
    "#,
    ));
}

#[test]
fn switch_statement() {
    run_ok(&check(
        r#"
    grade := func(score int) string {
        switch {
        case score >= 90:
            return "A"
        case score >= 80:
            return "B"
        default:
            return "C"
        }
    }
    assert(grade(95) == "A", "tagless switch")
    assert(grade(85) == "B", "second case")
    assert(grade(10) == "C", "default")
    day := 3
    name := ""
    switch day {
    case 1, 2:
        name = "early"
    case 3:
        name = "midweek"
    default:
        name = "late"
    }
    assert(name == "midweek", "tagged switch")
    "#,
    ));
}

#[test]
fn loops_break_continue() {
    run_ok(&check(
        r#"
    sum := 0
    for i := 0; i < 10; i++ {
        if i == 3 {
            continue
        }
        if i == 6 {
            break
        }
        sum = sum + i
    }
    assert(sum == 0+1+2+4+5, "break/continue")
    n := 0
    for n < 5 {
        n++
    }
    assert(n == 5, "condition-only for")
    "#,
    ));
}

#[test]
fn goroutines_and_waitgroup() {
    run_ok(&check(
        r#"
    var wg sync.WaitGroup
    var mu sync.Mutex
    total := 0
    for i := 0; i < 5; i++ {
        wg.Add(1)
        go func(i int) {
            mu.Lock()
            total = total + i
            mu.Unlock()
            wg.Done()
        }(i)
    }
    wg.Wait()
    assert(total == 10, "all goroutines ran")
    "#,
    ));
}

#[test]
fn multi_value_returns_spread() {
    run_ok(
        r#"
package main

func pair() (int, string) {
    return 7, "seven"
}

func assert(cond bool, msg string) {
    if !cond {
        panic(msg)
    }
}

func main() {
    n, s := pair()
    assert(n == 7, "first")
    assert(s == "seven", "second")
    a, _ := pair()
    assert(a == 7, "blank discards")
}
"#,
    );
}

#[test]
fn panic_surfaces_as_goroutine_panic() {
    run_panics(&check(r#"panic("boom")"#), "boom");
}

#[test]
fn undefined_variable_is_an_error() {
    run_panics(&check("x = missing"), "undefined");
}

#[test]
fn division_by_zero_is_an_error() {
    run_panics(
        &check(
            r#"
    zero := 0
    x := 1 / zero
    _ = x
    "#,
        ),
        "divide by zero",
    );
}

#[test]
fn global_variables_initialize_in_order() {
    run_ok(
        r#"
package main

var base = 10
var derived = base * 2

func assert(cond bool, msg string) {
    if !cond {
        panic(msg)
    }
}

func main() {
    assert(base == 10, "base")
    assert(derived == 20, "derived sees base")
    derived = 0
    assert(derived == 0, "globals are mutable")
}
"#,
    );
}

#[test]
fn range_over_channel_drains_until_close() {
    run_ok(&check(
        r#"
    ch := make(chan int, 3)
    go func() {
        ch <- 1
        ch <- 2
        ch <- 3
        close(ch)
    }()
    total := 0
    for v := range ch {
        total = total + v
    }
    assert(total == 6, "drained all values")
    "#,
    ));
}

#[test]
fn range_over_int_go_1_22() {
    run_ok(&check(
        r#"
    sum := 0
    for i := range 5 {
        sum = sum + i
    }
    assert(sum == 10, "range over int")
    "#,
    ));
}
