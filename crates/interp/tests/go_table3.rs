//! Table 3's language-agnostic shapes as Go source, executed through the
//! interpreter: missing/partial locking, globals, statement order, and the
//! parallel-test idiom (§4.8) modeled as concurrently launched subtests.

use grs_detector::{ExploreConfig, Explorer};
use grs_interp::Interp;

fn explore(src: &str, name: &str) -> grs_detector::ExploreResult {
    let interp = Interp::from_source(src).unwrap_or_else(|e| panic!("{name}: parse error {e}"));
    let program = interp.program(name, "main");
    Explorer::new(ExploreConfig::quick().runs(60)).explore(&program)
}

fn assert_racy(src: &str, name: &str) {
    let r = explore(src, name);
    assert!(r.found_race(), "{name}: no race detected: {:?}", r.sample_outcome);
}

fn assert_clean(src: &str, name: &str) {
    let r = explore(src, name);
    assert!(
        !r.found_race(),
        "{name}: false positive {}",
        r.unique_races[0]
    );
    assert_eq!(r.error_runs, 0, "{name}: errors {:?}", r.sample_outcome);
}

#[test]
fn partial_locking_go_source() {
    // The writer locks; the reader forgot — Observation 10's most common
    // shape.
    assert_racy(
        r#"
package main

var version int
var mu sync.Mutex

func setConfig(v int) {
    mu.Lock()
    version = v
    mu.Unlock()
}

func getConfig() int {
    return version // no lock!
}

func main() {
    done := make(chan bool, 1)
    go func() {
        setConfig(2)
        done <- true
    }()
    _ = getConfig()
    <-done
}
"#,
        "partial_locking_go",
    );
}

#[test]
fn consistent_locking_go_source_is_clean() {
    assert_clean(
        r#"
package main

var version int
var mu sync.Mutex

func setConfig(v int) {
    mu.Lock()
    version = v
    mu.Unlock()
}

func getConfig() int {
    mu.Lock()
    v := version
    mu.Unlock()
    return v
}

func main() {
    done := make(chan bool, 1)
    go func() {
        setConfig(2)
        done <- true
    }()
    _ = getConfig()
    <-done
}
"#,
        "consistent_locking_go",
    );
}

#[test]
fn global_counter_go_source() {
    assert_racy(
        r#"
package main

var requestCount int

func handle() {
    requestCount = requestCount + 1
}

func main() {
    done := make(chan bool, 3)
    for i := 0; i < 3; i++ {
        go func() {
            handle()
            done <- true
        }()
    }
    <-done
    <-done
    <-done
}
"#,
        "global_counter_go",
    );
}

#[test]
fn statement_order_go_source() {
    assert_racy(
        r#"
package main

type Poller struct {
    interval int
}

func main() {
    p := Poller{}
    done := make(chan bool, 1)
    go func() {
        _ = p.interval // reads config...
        done <- true
    }()
    p.interval = 30 // ...assigned after the go statement
    <-done
}
"#,
        "statement_order_go",
    );
}

#[test]
fn parallel_subtests_go_source() {
    // §4.8: table-driven subtests run "in parallel" (modeled as goroutines)
    // sharing one fixture.
    assert_racy(
        r#"
package main

type Fixture struct {
    mode int
}

func main() {
    fixture := Fixture{}
    cases := []int{1, 2, 3}
    done := make(chan bool, 3)
    for _, c := range cases {
        go func(c int) {
            fixture.mode = c // t.Parallel() subtests share the fixture
            _ = fixture.mode
            done <- true
        }(c)
    }
    <-done
    <-done
    <-done
}
"#,
        "parallel_subtests_go",
    );
}

#[test]
fn parallel_subtests_private_fixture_clean() {
    assert_clean(
        r#"
package main

type Fixture struct {
    mode int
}

func main() {
    cases := []int{1, 2, 3}
    done := make(chan bool, 3)
    for _, c := range cases {
        go func(c int) {
            fixture := Fixture{} // each subtest builds its own
            fixture.mode = c
            _ = fixture.mode
            done <- true
        }(c)
    }
    <-done
    <-done
    <-done
}
"#,
        "parallel_private_fixture_go",
    );
}

#[test]
fn channel_pipeline_refactor_clean() {
    // The "fixed by a major refactor" end state: ownership transferred by
    // messages, no shared accumulator.
    assert_clean(
        r#"
package main

func main() {
    results := make(chan int, 3)
    for i := 0; i < 3; i++ {
        go func(i int) {
            results <- i * 10
        }(i)
    }
    total := 0
    for i := 0; i < 3; i++ {
        total = total + <-results
    }
    if total != 30 {
        panic("bad total")
    }
}
"#,
        "pipeline_refactor_go",
    );
}
