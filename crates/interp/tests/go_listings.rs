//! End-to-end: the paper's listings as Go source, compiled by the Go-lite
//! frontend, executed on the instrumented runtime, and raced by the
//! dynamic detector. This is the closest the reproduction gets to
//! "run `go test -race` on the Zenodo artifact".

use grs_detector::{ExploreConfig, Explorer};
use grs_interp::Interp;

fn explore(src: &str, name: &str) -> grs_detector::ExploreResult {
    let interp = Interp::from_source(src).unwrap_or_else(|e| panic!("{name}: parse error {e}"));
    let program = interp.program(name, "main");
    Explorer::new(ExploreConfig::quick().runs(60)).explore(&program)
}

fn assert_racy(src: &str, name: &str) {
    let r = explore(src, name);
    assert!(
        r.error_runs == 0 || r.found_race(),
        "{name}: interpreter errors without a race: {:?}",
        r.sample_outcome
    );
    assert!(r.found_race(), "{name}: no race detected");
}

fn assert_clean(src: &str, name: &str) {
    let r = explore(src, name);
    assert!(
        !r.found_race(),
        "{name}: false positive {}",
        r.unique_races[0]
    );
    assert_eq!(r.error_runs, 0, "{name}: runtime errors: {:?}", r.sample_outcome);
    assert_eq!(r.deadlock_runs, 0, "{name}: deadlocks");
}

#[test]
fn listing1_go_source_races() {
    assert_racy(
        r#"
package main

func processJob(j int) int {
    return j * 2
}

func main() {
    jobs := []int{10, 20, 30}
    done := make(chan bool, 3)
    for _, job := range jobs {
        go func() {
            processJob(job)
            done <- true
        }()
    }
    <-done
    <-done
    <-done
}
"#,
        "listing1_go",
    );
}

#[test]
fn listing1_go_source_fixed_is_clean() {
    assert_clean(
        r#"
package main

func processJob(j int) int {
    return j * 2
}

func main() {
    jobs := []int{10, 20, 30}
    done := make(chan bool, 3)
    for _, job := range jobs {
        go func(job int) {
            processJob(job)
            done <- true
        }(job)
    }
    <-done
    <-done
    <-done
}
"#,
        "listing1_go_fixed",
    );
}

#[test]
fn listing2_err_idiom_races() {
    assert_racy(
        r#"
package main

func foo() (int, string) {
    return 1, ""
}

func bar(x int) (int, string) {
    return x, "bar failed"
}

func main() {
    done := make(chan bool, 1)
    x, err := foo()
    if err != "" {
        return
    }
    go func() {
        _, err = bar(x)
        if err != "" {
            x = 0
        }
        done <- true
    }()
    y, err := foo()
    _ = y
    _ = err
    <-done
}
"#,
        "listing2_go",
    );
}

#[test]
fn listing3_named_return_races() {
    assert_racy(
        r#"
package main

func namedReturnCallee(done chan bool) (result int) {
    result = 10
    go func() {
        if result > 0 {
            done <- true
        } else {
            done <- false
        }
    }()
    return 20
}

func main() {
    done := make(chan bool, 1)
    retVal := namedReturnCallee(done)
    _ = retVal
    <-done
}
"#,
        "listing3_go",
    );
}

#[test]
fn listing6_concurrent_map_races() {
    assert_racy(
        r#"
package main

func getOrder(uuid int) string {
    if uuid > 1 {
        return "failed"
    }
    return ""
}

func main() {
    uuids := []int{1, 2, 3}
    errMap := make(map[int]string)
    done := make(chan bool, 3)
    for _, uuid := range uuids {
        go func(uuid int) {
            err := getOrder(uuid)
            if err != "" {
                errMap[uuid] = err
            }
            done <- true
        }(uuid)
    }
    <-done
    <-done
    <-done
    _ = len(errMap)
}
"#,
        "listing6_go",
    );
}

#[test]
fn listing7_mutex_by_value_races() {
    assert_racy(
        r#"
package main

var a int

func criticalSection(m sync.Mutex) {
    m.Lock()
    a = a + 1
    m.Unlock()
}

func main() {
    var mutex sync.Mutex
    done := make(chan bool, 2)
    go func(m sync.Mutex) {
        criticalSection(m)
        done <- true
    }(mutex)
    go func(m sync.Mutex) {
        criticalSection(m)
        done <- true
    }(mutex)
    <-done
    <-done
}
"#,
        "listing7_go",
    );
}

#[test]
fn listing7_fixed_pointer_is_clean() {
    assert_clean(
        r#"
package main

var a int

func criticalSection(m *sync.Mutex) {
    m.Lock()
    a = a + 1
    m.Unlock()
}

func main() {
    var mutex sync.Mutex
    done := make(chan bool, 2)
    go func() {
        criticalSection(&mutex)
        done <- true
    }()
    go func() {
        criticalSection(&mutex)
        done <- true
    }()
    <-done
    <-done
}
"#,
        "listing7_go_fixed",
    );
}

#[test]
fn listing9_future_select_races_or_leaks() {
    // The Future pattern: completion goroutine vs cancellation arm.
    let src = r#"
package main

type Future struct {
    response int
    err      string
}

func main() {
    f := Future{}
    ch := make(chan int)
    cancelled := make(chan bool)
    go func() {
        sleep(3)
        f.response = 42
        f.err = ""
        ch <- 1
    }()
    go func() {
        sleep(2)
        close(cancelled)
    }()
    select {
    case <-ch:
        _ = f.err
    case <-cancelled:
        f.err = "ErrCancelled"
    }
}
"#;
    let interp = Interp::from_source(src).expect("compiles");
    let program = interp.program("listing9_go", "main");
    let r = Explorer::new(ExploreConfig::quick().runs(80)).explore(&program);
    assert!(r.found_race(), "cancellation write must race the completion");
    assert!(
        r.leaked_runs > 0,
        "the sender must leak when cancellation wins"
    );
}

#[test]
fn listing10_waitgroup_add_inside_races() {
    assert_racy(
        r#"
package main

func main() {
    itemIds := []int{1, 2, 3, 4}
    var wg sync.WaitGroup
    results := make([]int, 4)
    for i, id := range itemIds {
        go func(i int, id int) {
            wg.Add(1)
            defer wg.Done()
            results[i] = id * 10
        }(i, id)
    }
    wg.Wait()
    total := 0
    for _, r := range results {
        total = total + r
    }
    _ = total
}
"#,
        "listing10_go",
    );
}

#[test]
fn listing10_fixed_is_clean() {
    assert_clean(
        r#"
package main

func main() {
    itemIds := []int{1, 2, 3, 4}
    var wg sync.WaitGroup
    results := make([]int, 4)
    for i, id := range itemIds {
        wg.Add(1)
        go func(i int, id int) {
            defer wg.Done()
            results[i] = id * 10
        }(i, id)
    }
    wg.Wait()
    total := 0
    for _, r := range results {
        total = total + r
    }
    _ = total
}
"#,
        "listing10_go_fixed",
    );
}

#[test]
fn listing11_rlock_write_races() {
    assert_racy(
        r#"
package main

type HealthGate struct {
    mutex   sync.RWMutex
    ready   bool
    accepts int
}

func (g *HealthGate) updateGate() {
    g.mutex.RLock()
    defer g.mutex.RUnlock()
    if !g.ready {
        g.ready = true
        g.accepts = g.accepts + 1
    }
}

func main() {
    g := HealthGate{}
    var wg sync.WaitGroup
    wg.Add(2)
    go func() {
        g.updateGate()
        wg.Done()
    }()
    go func() {
        g.updateGate()
        wg.Done()
    }()
    wg.Wait()
}
"#,
        "listing11_go",
    );
}

#[test]
fn listing11_fixed_write_lock_is_clean() {
    assert_clean(
        r#"
package main

type HealthGate struct {
    mutex   sync.RWMutex
    ready   bool
    accepts int
}

func (g *HealthGate) updateGate() {
    g.mutex.Lock()
    defer g.mutex.Unlock()
    if !g.ready {
        g.ready = true
        g.accepts = g.accepts + 1
    }
}

func main() {
    g := HealthGate{}
    var wg sync.WaitGroup
    wg.Add(2)
    go func() {
        g.updateGate()
        wg.Done()
    }()
    go func() {
        g.updateGate()
        wg.Done()
    }()
    wg.Wait()
}
"#,
        "listing11_go_fixed",
    );
}

#[test]
fn listing5_slice_header_copy_races() {
    // The paper's subtlest slice race: safeAppend locks correctly, but
    // passing `myResults` by value copies the slice header without the
    // lock.
    assert_racy(
        r#"
package main

func foo(id int) int {
    return id * 10
}

func main() {
    var myResults []int
    var mutex sync.Mutex
    safeAppend := func(res int) {
        mutex.Lock()
        myResults = append(myResults, res)
        mutex.Unlock()
    }
    done := make(chan bool, 3)
    uuids := []int{1, 2, 3}
    for _, uuid := range uuids {
        go func(id int, results []int) {
            res := foo(id)
            safeAppend(res)
            done <- true
        }(uuid, myResults)
    }
    <-done
    <-done
    <-done
}
"#,
        "listing5_go",
    );
}

#[test]
fn listing5_fixed_no_value_pass_is_clean() {
    assert_clean(
        r#"
package main

func foo(id int) int {
    return id * 10
}

func main() {
    var myResults []int
    var mutex sync.Mutex
    safeAppend := func(res int) {
        mutex.Lock()
        myResults = append(myResults, res)
        mutex.Unlock()
    }
    done := make(chan bool, 3)
    uuids := []int{1, 2, 3}
    for _, uuid := range uuids {
        go func(id int) {
            res := foo(id)
            safeAppend(res)
            done <- true
        }(uuid)
    }
    <-done
    <-done
    <-done
    mutex.Lock()
    _ = len(myResults)
    mutex.Unlock()
}
"#,
        "listing5_go_fixed",
    );
}

#[test]
fn double_checked_locking_go_source_races() {
    assert_racy(
        r#"
package main

var instance int
var mu sync.Mutex

func getInstance() int {
    if instance == 0 {
        mu.Lock()
        if instance == 0 {
            instance = 99
        }
        mu.Unlock()
    }
    return instance
}

func main() {
    done := make(chan bool, 2)
    go func() {
        getInstance()
        done <- true
    }()
    go func() {
        getInstance()
        done <- true
    }()
    <-done
    <-done
}
"#,
        "double_checked_go",
    );
}

#[test]
fn once_fixed_lazy_init_is_clean() {
    assert_clean(
        r#"
package main

var instance int
var initOnce sync.Once

func getInstance() int {
    initOnce.Do(func() {
        instance = 99
    })
    return instance
}

func main() {
    done := make(chan bool, 2)
    go func() {
        getInstance()
        done <- true
    }()
    go func() {
        getInstance()
        done <- true
    }()
    <-done
    <-done
}
"#,
        "once_fixed_go",
    );
}
