//! Lexical environments.
//!
//! A scope maps names to instrumented cells. Closures hold an [`Env`]
//! handle; because the handle shares the scope chain, a closure's free
//! variables alias the *same cells* as the enclosing function — Go's
//! transparent capture-by-reference (Observation 3), which is what makes
//! the captured-variable races reproducible at the interpreter level.

use std::collections::HashMap;
use std::sync::{Arc, Mutex as StdMutex};

use grs_runtime::{Cell, Ctx};

use crate::value::Value;

struct EnvNode {
    parent: Option<Env>,
    vars: StdMutex<HashMap<String, Cell<Value>>>,
}

/// A handle to one lexical scope (cheap to clone; clones share the scope).
#[derive(Clone)]
pub struct Env {
    node: Arc<EnvNode>,
}

impl Env {
    /// A fresh root scope.
    #[must_use]
    pub fn root() -> Self {
        Env {
            node: Arc::new(EnvNode {
                parent: None,
                vars: StdMutex::new(HashMap::new()),
            }),
        }
    }

    /// A child scope whose lookups fall through to `self`.
    #[must_use]
    pub fn child(&self) -> Env {
        Env {
            node: Arc::new(EnvNode {
                parent: Some(self.clone()),
                vars: StdMutex::new(HashMap::new()),
            }),
        }
    }

    /// Declares `name` in this scope with a fresh instrumented cell.
    pub fn declare(&self, ctx: &Ctx, name: &str, value: Value) -> Cell<Value> {
        let cell = ctx.cell(name, value);
        self.node
            .vars
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), cell.clone());
        cell
    }

    /// Looks `name` up in this scope only.
    #[must_use]
    pub fn lookup_local(&self, name: &str) -> Option<Cell<Value>> {
        self.node
            .vars
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// Looks `name` up through the scope chain.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<Cell<Value>> {
        if let Some(c) = self.lookup_local(name) {
            return Some(c);
        }
        self.node.parent.as_ref()?.lookup(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grs_runtime::{NullMonitor, Program, RunConfig, Runtime};

    #[test]
    fn child_scopes_shadow_and_share() {
        let p = Program::new("env", |ctx| {
            let root = Env::root();
            root.declare(ctx, "x", Value::Int(1));
            let child = root.child();
            // Child sees the parent's x (same cell).
            let cell = child.lookup("x").expect("inherited");
            ctx.write(&cell, Value::Int(2));
            assert!(matches!(
                root.lookup("x").expect("root x").load(),
                Value::Int(2)
            ));
            // Shadowing declares a new cell in the child only.
            child.declare(ctx, "x", Value::Int(99));
            assert!(matches!(
                child.lookup("x").expect("shadowed").load(),
                Value::Int(99)
            ));
            assert!(matches!(
                root.lookup("x").expect("root x").load(),
                Value::Int(2)
            ));
            assert!(child.lookup("missing").is_none());
        });
        let (outcome, _) = Runtime::new(RunConfig::with_seed(0)).run(&p, NullMonitor);
        assert!(outcome.is_clean());
    }
}
