//! The interpreter's dynamic value model.
//!
//! Every Go-lite variable lives in an instrumented runtime
//! runtime [`grs_runtime::Cell`], so each read and write of interpreted
//! is a preemption point and a detector event — closures that capture
//! variables share the cells, exactly like Go's capture-by-reference.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex as StdMutex};

use grs_golite::ast::{Block, Signature};
use grs_runtime::{Cell, Chan, Ctx, GoMap, GoSlice, Mutex, Once, RwMutex, WaitGroup};

use crate::env::Env;
use crate::InterpError;

/// A Go-lite runtime value.
#[derive(Clone)]
pub enum Value {
    /// `nil` (also the zero value of pointers, errors, interfaces).
    Nil,
    /// Booleans.
    Bool(bool),
    /// Integers (Go-lite folds all integer kinds into `i64`).
    Int(i64),
    /// Strings.
    Str(Arc<str>),
    /// A slice (reference type; shares its header and backing array).
    Slice(GoSlice<Value>),
    /// A map (reference type; thread-unsafe structure, as in Go).
    Map(GoMap<Key, Value>),
    /// A channel.
    Chan(Chan<Value>),
    /// A `sync.Mutex` **value** (assigning/copying it duplicates the lock —
    /// Observation 6).
    Mutex(Mutex),
    /// A `sync.RWMutex` value.
    RwMutex(RwMutex),
    /// A `sync.WaitGroup` value.
    WaitGroup(WaitGroup),
    /// A `sync.Once` value.
    Once(Once),
    /// A struct instance (fields are instrumented cells).
    Struct(StructRef),
    /// A pointer to a variable or field.
    Pointer(Cell<Value>),
    /// A function or closure (with its captured environment).
    Func(FuncValue),
}

impl Value {
    /// A short type tag for error messages.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Nil => "nil",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Str(_) => "string",
            Value::Slice(_) => "slice",
            Value::Map(_) => "map",
            Value::Chan(_) => "chan",
            Value::Mutex(_) => "sync.Mutex",
            Value::RwMutex(_) => "sync.RWMutex",
            Value::WaitGroup(_) => "sync.WaitGroup",
            Value::Once(_) => "sync.Once",
            Value::Struct(_) => "struct",
            Value::Pointer(_) => "pointer",
            Value::Func(_) => "func",
        }
    }

    /// Go truthiness: only booleans are conditions.
    pub fn as_bool(&self) -> Result<bool, InterpError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(InterpError::plain(format!(
                "non-bool {} used as condition",
                other.type_name()
            ))),
        }
    }

    /// Integer extraction.
    pub fn as_int(&self) -> Result<i64, InterpError> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(InterpError::plain(format!(
                "expected int, found {}",
                other.type_name()
            ))),
        }
    }

    /// Structural equality for `==`/`!=` (scalars, nil, and reference
    /// identity-free comparisons).
    pub fn go_eq(&self, other: &Value) -> Result<bool, InterpError> {
        Ok(match (self, other) {
            (Value::Nil, Value::Nil) => true,
            (Value::Nil, _) | (_, Value::Nil) => false,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (a, b) => {
                return Err(InterpError::plain(format!(
                    "cannot compare {} with {}",
                    a.type_name(),
                    b.type_name()
                )))
            }
        })
    }

    /// Deep copy with Go's value semantics: struct fields become fresh
    /// cells, and a contained `sync.Mutex` becomes an *independent* lock
    /// ([`Mutex::copy_value`]) — reproducing Listing 7's bug when structs
    /// or mutexes are passed by value. Reference types (slices, maps,
    /// channels, pointers) share as in Go.
    #[must_use]
    pub fn deep_copy(&self, ctx: &Ctx) -> Value {
        match self {
            Value::Mutex(m) => Value::Mutex(m.copy_value(ctx)),
            Value::RwMutex(_) => {
                // Copying an RWMutex value likewise severs the lock.
                Value::RwMutex(ctx.rwmutex("rwmutex (copy)"))
            }
            Value::WaitGroup(_) => Value::WaitGroup(ctx.waitgroup("waitgroup (copy)")),
            Value::Once(_) => Value::Once(ctx.once("once (copy)")),
            Value::Struct(s) => Value::Struct(s.copy_value(ctx)),
            // Reference types and scalars: plain clone.
            other => other.clone(),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Nil => f.write_str("nil"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Slice(_) => f.write_str("<slice>"),
            Value::Map(_) => f.write_str("<map>"),
            Value::Chan(c) => write!(f, "<{}>", c.name()),
            Value::Mutex(m) => write!(f, "<{}>", m.name()),
            Value::RwMutex(m) => write!(f, "<{}>", m.name()),
            Value::WaitGroup(w) => write!(f, "<{}>", w.name()),
            Value::Once(o) => write!(f, "<{}>", o.name()),
            Value::Struct(s) => write!(f, "<{}>", s.type_name),
            Value::Pointer(_) => f.write_str("<ptr>"),
            Value::Func(fv) => write!(f, "<func {}>", fv.name),
        }
    }
}

/// Map keys: the comparable scalar subset of [`Value`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Key {
    /// `nil` key.
    Nil,
    /// Boolean key.
    Bool(bool),
    /// Integer key.
    Int(i64),
    /// String key.
    Str(String),
}

impl Key {
    /// Converts a value into a key; errors on non-comparable values.
    pub fn from_value(v: &Value) -> Result<Key, InterpError> {
        Ok(match v {
            Value::Nil => Key::Nil,
            Value::Bool(b) => Key::Bool(*b),
            Value::Int(i) => Key::Int(*i),
            Value::Str(s) => Key::Str(s.to_string()),
            other => {
                return Err(InterpError::plain(format!(
                    "{} is not a valid map key",
                    other.type_name()
                )))
            }
        })
    }

    /// Converts back into a value.
    #[must_use]
    pub fn to_value(&self) -> Value {
        match self {
            Key::Nil => Value::Nil,
            Key::Bool(b) => Value::Bool(*b),
            Key::Int(i) => Value::Int(*i),
            Key::Str(s) => Value::Str(Arc::from(s.as_str())),
        }
    }
}

/// A shared struct instance: each field is an instrumented cell.
#[derive(Clone)]
pub struct StructRef {
    /// The declared type name.
    pub type_name: Arc<str>,
    fields: Arc<StdMutex<HashMap<String, Cell<Value>>>>,
}

impl StructRef {
    /// Creates an instance with the given field cells.
    #[must_use]
    pub fn new(type_name: &str, fields: HashMap<String, Cell<Value>>) -> Self {
        StructRef {
            type_name: Arc::from(type_name),
            fields: Arc::new(StdMutex::new(fields)),
        }
    }

    /// The cell behind `name`, creating a nil field on first touch of an
    /// undeclared name (Go-lite is dynamically checked).
    pub fn field(&self, ctx: &Ctx, name: &str) -> Cell<Value> {
        let mut f = self.fields.lock().unwrap_or_else(|e| e.into_inner());
        f.entry(name.to_string())
            .or_insert_with(|| ctx.cell(&format!("{}.{name}", self.type_name), Value::Nil))
            .clone()
    }

    /// Go value semantics: copying a struct copies every field into fresh
    /// cells (deep-copying mutex values along the way).
    #[must_use]
    pub fn copy_value(&self, ctx: &Ctx) -> StructRef {
        let src = self.fields.lock().unwrap_or_else(|e| e.into_inner());
        let mut fields = HashMap::new();
        for (name, cell) in src.iter() {
            let v = cell.load().deep_copy(ctx);
            fields.insert(
                name.clone(),
                ctx.cell(&format!("{}.{name} (copy)", self.type_name), v),
            );
        }
        StructRef {
            type_name: self.type_name.clone(),
            fields: Arc::new(StdMutex::new(fields)),
        }
    }
}

/// A function or closure value.
#[derive(Clone)]
pub struct FuncValue {
    /// Display name (declared name or `"func literal"`).
    pub name: Arc<str>,
    /// The signature.
    pub sig: Arc<Signature>,
    /// The body.
    pub body: Arc<Block>,
    /// The captured lexical environment (closures capture by reference).
    pub env: Env,
    /// Bound receiver for method values: `(param name, is_pointer, value)`.
    pub receiver: Option<(String, bool, Box<Value>)>,
}
