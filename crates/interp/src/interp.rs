//! The tree-walking evaluator.
//!
//! Faithfulness notes (each is load-bearing for a §4 pattern):
//!
//! * `:=` in a scope that already declares the name **reuses the cell**
//!   (Go's redeclaration rule) — so `x, err := f(); y, err := g()` keeps
//!   one `err` variable, the substrate of Listing 2.
//! * `for … range` declares its loop variables **once**; iterations write
//!   the same cells — Listing 1's captured loop variable.
//! * Named results are cells declared at function entry; `return expr`
//!   **writes** them before deferred functions run — Listings 3–4.
//! * Call-site argument passing consults the declared parameter type:
//!   value-typed structs and `sync.Mutex` are deep-copied (a copied mutex
//!   is an independent lock), pointer parameters share — Listings 7–8.
//! * `defer` evaluates its arguments immediately and runs the call at
//!   function exit, LIFO, after named results are written.

use std::collections::HashMap;
use std::sync::Arc;

use grs_golite::ast::{
    Block, CommClause, Decl, Expr, File, FuncDecl, Param, RangeClause, Signature, Stmt, Type,
};
use grs_golite::parser::parse_file;
use grs_golite::token::Pos;
use grs_runtime::chan::RecvResult;
use grs_runtime::{Cell, Ctx, GoMap, GoSlice, Program};

use crate::env::Env;
use crate::value::{FuncValue, Key, StructRef, Value};
use crate::InterpError;

/// A method's compiled form.
struct Method {
    recv_name: String,
    recv_is_ptr: bool,
    sig: Arc<Signature>,
    body: Arc<Block>,
}

/// Immutable compiled program state shared across goroutines.
struct Shared {
    funcs: HashMap<String, (Arc<Signature>, Arc<Block>)>,
    methods: HashMap<(String, String), Method>,
    struct_types: HashMap<String, Vec<Param>>,
    global_vars: Vec<grs_golite::ast::VarDecl>,
}

/// A compiled Go-lite program, ready to instantiate as runtime
/// [`Program`]s.
///
/// # Example
///
/// ```
/// use grs_detector::{ExploreConfig, Explorer};
/// use grs_interp::Interp;
///
/// let src = r#"
/// package main
///
/// func main() {
///     count := 0
///     done := make(chan bool, 2)
///     for i := 0; i < 2; i = i + 1 {
///         go func() {
///             count = count + 1   // unsynchronized!
///             done <- true
///         }()
///     }
///     <-done
///     <-done
/// }
/// "#;
/// let interp = Interp::from_source(src).expect("compiles");
/// let program = interp.program("racy_counter", "main");
/// let result = Explorer::new(ExploreConfig::quick()).explore(&program);
/// assert!(result.found_race());
/// ```
pub struct Interp {
    shared: Arc<Shared>,
}

impl Interp {
    /// Compiles Go-lite source.
    ///
    /// # Errors
    ///
    /// Returns lexing/parsing errors.
    pub fn from_source(src: &str) -> Result<Interp, grs_golite::ParseError> {
        Ok(Self::from_file(parse_file(src)?))
    }

    /// Compiles Go-lite source with structured errors — the campaign-scale
    /// entry point: a failure is a [`CompileError`] naming its phase and
    /// position, never a panic.
    ///
    /// # Errors
    ///
    /// Returns [`CompilePhase::Parse`](crate::CompilePhase::Parse) errors
    /// for anything the lexer/parser rejects.
    pub fn compile(src: &str) -> Result<Interp, crate::CompileError> {
        Self::from_source(src)
            .map_err(|e| crate::CompileError::parse(Some(e.pos), e.message))
    }

    /// Compiles a parsed file.
    #[must_use]
    pub fn from_file(file: File) -> Interp {
        let mut funcs = HashMap::new();
        let mut methods = HashMap::new();
        let mut struct_types = HashMap::new();
        let mut global_vars = Vec::new();
        for decl in file.decls {
            match decl {
                Decl::Func(FuncDecl {
                    receiver: Some(recv),
                    name,
                    sig,
                    body: Some(body),
                    ..
                }) => {
                    let (type_name, is_ptr) = match &recv.ty {
                        Type::Pointer(inner) => {
                            (inner.name().unwrap_or("?").to_string(), true)
                        }
                        other => (other.name().unwrap_or("?").to_string(), false),
                    };
                    methods.insert(
                        (type_name, name.clone()),
                        Method {
                            recv_name: recv.name.clone(),
                            recv_is_ptr: is_ptr,
                            sig: Arc::new(sig),
                            body: Arc::new(body),
                        },
                    );
                }
                Decl::Func(FuncDecl {
                    receiver: None,
                    name,
                    sig,
                    body: Some(body),
                    ..
                }) => {
                    funcs.insert(name, (Arc::new(sig), Arc::new(body)));
                }
                Decl::Func(_) => {}
                Decl::Type(t) => {
                    if let Type::Struct(fields) = t.ty {
                        struct_types.insert(t.name, fields);
                    }
                }
                Decl::Var(v) | Decl::Const(v) => global_vars.push(v),
            }
        }
        Interp {
            shared: Arc::new(Shared {
                funcs,
                methods,
                struct_types,
                global_vars,
            }),
        }
    }

    /// Builds a runtime [`Program`] that initializes package-level
    /// variables and then calls the zero-argument function `entry`.
    #[must_use]
    pub fn program(&self, name: &str, entry: &str) -> Program {
        let shared = Arc::clone(&self.shared);
        let entry = entry.to_string();
        Program::new(name, move |ctx| {
            let globals = Env::root();
            let rt = Rt {
                ctx,
                shared: Arc::clone(&shared),
                globals: globals.clone(),
            };
            if let Err(e) = rt.bootstrap_and_run(&entry) {
                panic!("go-lite: {e}");
            }
        })
    }

    /// [`Interp::program`] with the lowering preconditions checked up
    /// front: the entry function must exist and take no parameters.
    /// Violations are structured [`CompileError`](crate::CompileError)s
    /// instead of runtime panics inside the program body — the contract
    /// the campaign's skip accounting is built on.
    ///
    /// # Errors
    ///
    /// Returns a [`CompilePhase::Lower`](crate::CompilePhase::Lower) error
    /// when `entry` is undefined or takes parameters.
    pub fn program_checked(
        &self,
        name: &str,
        entry: &str,
    ) -> Result<Program, crate::CompileError> {
        match self.shared.funcs.get(entry) {
            None => Err(crate::CompileError::lower(format!(
                "entry function `{entry}` is not declared"
            ))),
            Some((sig, _)) if !sig.params.is_empty() => {
                Err(crate::CompileError::lower(format!(
                    "entry function `{entry}` must take no parameters, has {}",
                    sig.params.len()
                )))
            }
            Some(_) => Ok(self.program(name, entry)),
        }
    }
}

/// Control flow through statement execution.
enum Flow {
    Normal,
    Return(Vec<Value>),
    Break,
    Continue,
}

type EResult<T> = Result<T, InterpError>;

/// A call whose callee and arguments were evaluated eagerly (the `go` /
/// `defer` rule) but whose invocation is postponed.
enum PreparedCall {
    Func(FuncValue, Vec<Value>),
    Sync(Value, String, Vec<Value>),
    Builtin(String, Vec<Value>),
}

/// Per-function-call state: defers and named result cells.
struct FrameState {
    defers: Vec<PreparedCall>,
    named_results: Vec<Cell<Value>>,
}

/// The evaluator for one goroutine.
struct Rt<'c> {
    ctx: &'c Ctx,
    shared: Arc<Shared>,
    globals: Env,
}

impl<'c> Rt<'c> {
    fn bootstrap_and_run(&self, entry: &str) -> EResult<()> {
        // Package-level variables, in order. Top-level functions are NOT
        // pre-declared into the global scope: a stored `FuncValue` whose
        // `env` is the very scope holding its cell is an `Arc` cycle that
        // outlives the run and leaks the whole program graph. Identifier
        // resolution falls back to [`Rt::top_level_func`] instead.
        for v in &self.shared.global_vars.clone() {
            self.exec_var_decl(&self.globals, v)?;
        }
        let fv = match self.top_level_func(entry) {
            Some(Value::Func(f)) => f,
            _ => return Err(InterpError::plain(format!("entry function {entry} not found"))),
        };
        self.call_function(&fv, Vec::new())?;
        Ok(())
    }

    /// Lazily materializes the top-level function `name` as a value. The
    /// `FuncValue` is synthesized per resolution (never stored in the
    /// global scope) so the global Env owns no reference to itself.
    fn top_level_func(&self, name: &str) -> Option<Value> {
        let (sig, body) = self.shared.funcs.get(name)?;
        Some(Value::Func(FuncValue {
            name: Arc::from(name),
            sig: Arc::clone(sig),
            body: Arc::clone(body),
            env: self.globals.clone(),
            receiver: None,
        }))
    }

    // ---- declarations & zero values ----

    fn exec_var_decl(&self, env: &Env, v: &grs_golite::ast::VarDecl) -> EResult<()> {
        if v.values.is_empty() {
            let ty = v
                .ty
                .as_ref()
                .ok_or_else(|| InterpError::at(v.pos, "var needs a type or initializer"))?;
            for name in &v.names {
                let zero = self.zero_value(ty);
                if name != "_" {
                    env.declare(self.ctx, name, zero);
                }
            }
            return Ok(());
        }
        let values = self.eval_rhs_list(env, &v.values, v.names.len())?;
        for (name, value) in v.names.iter().zip(values) {
            if name != "_" {
                env.declare(self.ctx, name, value);
            }
        }
        Ok(())
    }

    fn zero_value(&self, ty: &Type) -> Value {
        match ty {
            Type::Name(n) => match n.as_str() {
                "int" | "int8" | "int16" | "int32" | "int64" | "uint" | "uint8" | "uint16"
                | "uint32" | "uint64" | "byte" | "rune" | "float32" | "float64" => Value::Int(0),
                "string" => Value::Str(Arc::from("")),
                "bool" => Value::Bool(false),
                "sync.Mutex" => Value::Mutex(self.ctx.mutex("mutex")),
                "sync.RWMutex" => Value::RwMutex(self.ctx.rwmutex("rwmutex")),
                "sync.WaitGroup" => Value::WaitGroup(self.ctx.waitgroup("wg")),
                "sync.Once" => Value::Once(self.ctx.once("once")),
                name => {
                    if let Some(fields) = self.shared.struct_types.get(name) {
                        Value::Struct(self.new_struct(name, fields.clone()))
                    } else {
                        Value::Nil
                    }
                }
            },
            Type::Slice(_) => Value::Slice(GoSlice::empty(self.ctx, "slice")),
            Type::Map(_, _) => Value::Map(GoMap::make(self.ctx, "map")),
            Type::Struct(fields) => Value::Struct(self.new_struct("struct", fields.clone())),
            _ => Value::Nil,
        }
    }

    fn new_struct(&self, name: &str, fields: Vec<Param>) -> StructRef {
        let mut map = HashMap::new();
        for f in &fields {
            let zero = self.zero_value(&f.ty);
            map.insert(
                f.name.clone(),
                self.ctx.cell(&format!("{name}.{}", f.name), zero),
            );
        }
        StructRef::new(name, map)
    }

    /// Should an argument bound to a parameter of this type be deep-copied
    /// (Go value semantics) rather than shared?
    fn is_value_type(&self, ty: &Type) -> bool {
        match ty {
            Type::Name(n) => {
                matches!(
                    n.as_str(),
                    "sync.Mutex" | "sync.RWMutex" | "sync.WaitGroup" | "sync.Once"
                ) || self.shared.struct_types.contains_key(n.as_str())
            }
            Type::Struct(_) | Type::Array(_, _) => true,
            _ => false,
        }
    }

    // ---- function calls ----

    fn call_function(&self, fv: &FuncValue, args: Vec<Value>) -> EResult<Vec<Value>> {
        let _frame = self.ctx.frame(&fv.name);
        let fenv = fv.env.child();
        if let Some((name, _is_ptr, value)) = &fv.receiver {
            if name != "_" && !name.is_empty() {
                fenv.declare(self.ctx, name, (**value).clone());
            }
        }
        if args.len() != fv.sig.params.len() {
            return Err(InterpError::plain(format!(
                "{} expects {} argument(s), got {}",
                fv.name,
                fv.sig.params.len(),
                args.len()
            )));
        }
        for (param, arg) in fv.sig.params.iter().zip(args) {
            let bound = match (&param.ty, arg) {
                // Passing a slice copies its three-word header (the meta
                // fields) while sharing the backing array — instrumented
                // header reads with whatever locks the caller holds, which
                // is exactly Listing 5's subtle race.
                (Type::Slice(_), Value::Slice(s)) => Value::Slice(s.copy_value(self.ctx)),
                (_, arg) if self.is_value_type(&param.ty) => arg.deep_copy(self.ctx),
                (_, arg) => arg,
            };
            if !param.name.is_empty() && param.name != "_" {
                fenv.declare(self.ctx, &param.name, bound);
            }
        }
        // Named results become cells that outlive the body (Listing 3).
        let mut fs = FrameState {
            defers: Vec::new(),
            named_results: Vec::new(),
        };
        let named: Vec<&Param> = fv
            .sig
            .results
            .iter()
            .filter(|r| !r.name.is_empty() && r.name != "_")
            .collect();
        for r in &named {
            let cell = fenv.declare(self.ctx, &r.name, self.zero_value(&r.ty));
            fs.named_results.push(cell);
        }
        let flow = self.exec_block(&fenv, &fv.body, &mut fs)?;
        let explicit = match flow {
            Flow::Return(vals) => vals,
            Flow::Normal => Vec::new(),
            Flow::Break | Flow::Continue => {
                return Err(InterpError::plain("break/continue outside loop"))
            }
        };
        // `return expr...` in a named-result function writes the named
        // cells — the compiler-inserted write the paper highlights.
        if !fs.named_results.is_empty() && !explicit.is_empty() {
            for (cell, v) in fs.named_results.iter().zip(explicit.iter()) {
                self.ctx.write(cell, v.clone());
            }
        }
        // Deferred calls run after the results are determined (and may
        // mutate named results — Listing 4).
        let defers = std::mem::take(&mut fs.defers);
        for prepared in defers.into_iter().rev() {
            self.run_prepared(prepared)?;
        }
        if fs.named_results.is_empty() {
            Ok(explicit)
        } else {
            Ok(fs
                .named_results
                .iter()
                .map(|c| self.ctx.read(c))
                .collect())
        }
    }

    // ---- statements ----

    fn exec_block(&self, env: &Env, block: &Block, fs: &mut FrameState) -> EResult<Flow> {
        let scope = env.child();
        for stmt in &block.stmts {
            match self.exec_stmt(&scope, stmt, fs)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    #[allow(clippy::too_many_lines)]
    fn exec_stmt(&self, env: &Env, stmt: &Stmt, fs: &mut FrameState) -> EResult<Flow> {
        match stmt {
            Stmt::Empty | Stmt::Branch { kind: "fallthrough", .. } => Ok(Flow::Normal),
            Stmt::Decl(v) => {
                self.exec_var_decl(env, v)?;
                Ok(Flow::Normal)
            }
            Stmt::Define { names, values, .. } => {
                let vals = self.eval_rhs_list(env, values, names.len())?;
                for (name, value) in names.iter().zip(vals) {
                    if name == "_" {
                        continue;
                    }
                    // Go's := redeclaration rule: reuse a cell declared in
                    // THIS scope (the `err` idiom), else declare fresh.
                    match env.lookup_local(name) {
                        Some(cell) => self.ctx.write(&cell, value),
                        None => {
                            env.declare(self.ctx, name, value);
                        }
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Assign { lhs, op, rhs, pos } => {
                if *op == "=" {
                    let vals = self.eval_rhs_list(env, rhs, lhs.len())?;
                    for (l, v) in lhs.iter().zip(vals) {
                        self.assign(env, l, v)?;
                    }
                } else {
                    // Compound assignment: read, combine, write.
                    let r = self.eval_expr(env, &rhs[0])?;
                    let current = self.eval_expr(env, &lhs[0])?;
                    let binop = &op[..op.len() - 1];
                    let combined = self
                        .binary(binop, current, r)
                        .map_err(|e| e.with_pos(*pos))?;
                    self.assign(env, &lhs[0], combined)?;
                }
                Ok(Flow::Normal)
            }
            Stmt::IncDec { expr, inc, pos } => {
                let v = self.eval_expr(env, expr)?.as_int().map_err(|e| e.with_pos(*pos))?;
                self.assign(env, expr, Value::Int(if *inc { v + 1 } else { v - 1 }))?;
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                let _ = self.eval_multi(env, e)?;
                Ok(Flow::Normal)
            }
            Stmt::Send { chan, value, pos } => {
                let ch = self.eval_expr(env, chan)?;
                let v = self.eval_expr(env, value)?;
                match ch {
                    Value::Chan(c) => {
                        c.send(self.ctx, v);
                        Ok(Flow::Normal)
                    }
                    other => Err(InterpError::at(
                        *pos,
                        format!("send on non-channel {}", other.type_name()),
                    )),
                }
            }
            Stmt::Go { call, pos } => {
                let prepared = self.prepare_call(env, call, *pos)?;
                let shared = Arc::clone(&self.shared);
                let globals = self.globals.clone();
                let name = match &prepared {
                    PreparedCall::Func(fv, _) => fv.name.to_string(),
                    PreparedCall::Sync(_, m, _) => m.clone(),
                    PreparedCall::Builtin(b, _) => b.clone(),
                };
                self.ctx.go(&name, move |ctx| {
                    let rt = Rt {
                        ctx,
                        shared,
                        globals,
                    };
                    if let Err(e) = rt.run_prepared(prepared) {
                        panic!("go-lite goroutine: {e}");
                    }
                });
                Ok(Flow::Normal)
            }
            Stmt::Defer { call, pos } => {
                // Go evaluates the callee and arguments at defer time.
                let prepared = self.prepare_call(env, call, *pos)?;
                fs.defers.push(prepared);
                Ok(Flow::Normal)
            }
            Stmt::Return { values, .. } => {
                let vals = self.eval_rhs_list(env, values, usize::MAX)?;
                Ok(Flow::Return(vals))
            }
            Stmt::If {
                init,
                cond,
                then,
                els,
                ..
            } => {
                let scope = env.child();
                if let Some(i) = init {
                    self.exec_stmt(&scope, i, fs)?;
                }
                if self.eval_expr(&scope, cond)?.as_bool()? {
                    self.exec_block(&scope, then, fs)
                } else if let Some(e) = els {
                    self.exec_stmt(&scope, e, fs)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::Block(b) => self.exec_block(env, b, fs),
            Stmt::For {
                init,
                cond,
                post,
                range,
                body,
                ..
            } => {
                if let Some(r) = range {
                    return self.exec_range(env, r, body, fs);
                }
                let scope = env.child();
                if let Some(i) = init {
                    self.exec_stmt(&scope, i, fs)?;
                }
                let mut iterations = 0u64;
                loop {
                    if let Some(c) = cond {
                        if !self.eval_expr(&scope, c)?.as_bool()? {
                            break;
                        }
                    }
                    match self.exec_block(&scope, body, fs)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    if let Some(p) = post {
                        self.exec_stmt(&scope, p, fs)?;
                    }
                    iterations += 1;
                    if iterations > 1_000_000 {
                        return Err(InterpError::plain("loop iteration bound exceeded"));
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Switch { tag, cases, .. } => {
                let tag_value = match tag {
                    Some(t) => Some(self.eval_expr(env, t)?),
                    None => None,
                };
                for case in cases {
                    let matched = if case.exprs.is_empty() {
                        true // default
                    } else {
                        let mut m = false;
                        for e in &case.exprs {
                            let v = self.eval_expr(env, e)?;
                            m = match &tag_value {
                                Some(t) => t.go_eq(&v)?,
                                None => v.as_bool()?,
                            };
                            if m {
                                break;
                            }
                        }
                        m
                    };
                    if matched {
                        let scope = env.child();
                        for s in &case.body {
                            match self.exec_stmt(&scope, s, fs)? {
                                Flow::Normal => {}
                                Flow::Break => return Ok(Flow::Normal),
                                other => return Ok(other),
                            }
                        }
                        return Ok(Flow::Normal);
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Select { cases, .. } => self.exec_select(env, cases, fs),
            Stmt::Branch { kind: "break", .. } => Ok(Flow::Break),
            Stmt::Branch { kind: "continue", .. } => Ok(Flow::Continue),
            Stmt::Branch { kind, pos, .. } => {
                Err(InterpError::at(*pos, format!("unsupported branch `{kind}`")))
            }
        }
    }

    /// `for k, v := range x { ... }` — loop variables are declared ONCE and
    /// rewritten per iteration (the Listing 1 substrate).
    fn exec_range(
        &self,
        env: &Env,
        r: &RangeClause,
        body: &Block,
        fs: &mut FrameState,
    ) -> EResult<Flow> {
        let subject = self.eval_expr(env, &r.expr)?;
        let scope = env.child();
        let key_cell = (!r.key.is_empty() && r.key != "_")
            .then(|| scope.declare(self.ctx, &r.key, Value::Nil));
        let value_cell = (!r.value.is_empty() && r.value != "_")
            .then(|| scope.declare(self.ctx, &r.value, Value::Nil));
        match subject {
            Value::Slice(s) => {
                let mut i = 0usize;
                loop {
                    if i >= s.len(self.ctx) {
                        break;
                    }
                    if let Some(kc) = &key_cell {
                        self.ctx.write(kc, Value::Int(i as i64));
                    }
                    if let Some(vc) = &value_cell {
                        let elem = s.get(self.ctx, i);
                        self.ctx.write(vc, elem);
                    }
                    match self.exec_block(&scope, body, fs)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    i += 1;
                }
                Ok(Flow::Normal)
            }
            Value::Map(m) => {
                for (k, v) in m.iterate(self.ctx) {
                    if let Some(kc) = &key_cell {
                        self.ctx.write(kc, k.to_value());
                    }
                    if let Some(vc) = &value_cell {
                        self.ctx.write(vc, v);
                    }
                    match self.exec_block(&scope, body, fs)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Value::Int(n) => {
                // `for i := range n` (Go 1.22).
                for i in 0..n {
                    if let Some(kc) = &key_cell {
                        self.ctx.write(kc, Value::Int(i));
                    }
                    match self.exec_block(&scope, body, fs)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Value::Chan(ch) => {
                // `for v := range ch` — receive until the channel closes.
                loop {
                    match ch.recv(self.ctx) {
                        RecvResult::Closed => break,
                        RecvResult::Value(v) => {
                            if let Some(kc) = &key_cell {
                                self.ctx.write(kc, v);
                            }
                            match self.exec_block(&scope, body, fs)? {
                                Flow::Break => break,
                                Flow::Return(v) => return Ok(Flow::Return(v)),
                                Flow::Normal | Flow::Continue => {}
                            }
                        }
                    }
                }
                Ok(Flow::Normal)
            }
            other => Err(InterpError::plain(format!(
                "cannot range over {}",
                other.type_name()
            ))),
        }
    }

    /// `select`: poll every arm; run `default` if none is ready; otherwise
    /// yield and retry. (Arms are polled in source order rather than Go's
    /// uniform choice; the scheduler's nondeterminism still varies which
    /// arm becomes ready first.)
    fn exec_select(
        &self,
        env: &Env,
        cases: &[CommClause],
        fs: &mut FrameState,
    ) -> EResult<Flow> {
        loop {
            let mut default_case: Option<&CommClause> = None;
            for case in cases {
                let Some(comm) = &case.comm else {
                    default_case = Some(case);
                    continue;
                };
                if let Some(flow) = self.try_comm(env, comm, &case.body, fs)? {
                    return Ok(flow);
                }
            }
            if let Some(case) = default_case {
                let scope = env.child();
                for s in &case.body {
                    match self.exec_stmt(&scope, s, fs)? {
                        Flow::Normal => {}
                        Flow::Break => return Ok(Flow::Normal),
                        other => return Ok(other),
                    }
                }
                return Ok(Flow::Normal);
            }
            self.ctx.gosched();
        }
    }

    /// Attempts one communication arm; returns `Some(flow)` if it fired.
    fn try_comm(
        &self,
        env: &Env,
        comm: &Stmt,
        body: &[Stmt],
        fs: &mut FrameState,
    ) -> EResult<Option<Flow>> {
        let scope = env.child();
        let fired = match comm {
            // `case <-ch:`
            Stmt::Expr(Expr::Unary { op: "<-", expr }) => {
                let ch = self.expect_chan(&scope, expr)?;
                ch.try_recv(self.ctx).is_some()
            }
            // `case v := <-ch:` / `case v, ok := <-ch:`
            Stmt::Define { names, values, .. } => match values.first() {
                Some(Expr::Unary { op: "<-", expr }) => {
                    let ch = self.expect_chan(&scope, expr)?;
                    match ch.try_recv(self.ctx) {
                        None => false,
                        Some(res) => {
                            let (v, ok) = match res {
                                RecvResult::Value(v) => (v, true),
                                RecvResult::Closed => (Value::Nil, false),
                            };
                            let bind = [Some(v), Some(Value::Bool(ok))];
                            for (name, val) in names.iter().zip(bind.into_iter().flatten()) {
                                if name != "_" {
                                    scope.declare(self.ctx, name, val);
                                }
                            }
                            true
                        }
                    }
                }
                _ => return Err(InterpError::plain("malformed select receive")),
            },
            // `case ch <- v:`
            Stmt::Send { chan, value, .. } => {
                let ch = self.expect_chan(&scope, chan)?;
                let v = self.eval_expr(&scope, value)?;
                ch.try_send(self.ctx, v).is_ok()
            }
            _ => return Err(InterpError::plain("unsupported select communication")),
        };
        if !fired {
            return Ok(None);
        }
        for s in body {
            match self.exec_stmt(&scope, s, fs)? {
                Flow::Normal => {}
                Flow::Break => return Ok(Some(Flow::Normal)),
                other => return Ok(Some(other)),
            }
        }
        Ok(Some(Flow::Normal))
    }

    fn expect_chan(&self, env: &Env, e: &Expr) -> EResult<grs_runtime::Chan<Value>> {
        match self.eval_expr(env, e)? {
            Value::Chan(c) => Ok(c),
            other => Err(InterpError::plain(format!(
                "expected channel, found {}",
                other.type_name()
            ))),
        }
    }

    // ---- assignment ----

    fn assign(&self, env: &Env, lhs: &Expr, value: Value) -> EResult<()> {
        match lhs {
            Expr::Ident(_, name) if name == "_" => Ok(()),
            Expr::Ident(pos, name) => {
                let cell = env.lookup(name).ok_or_else(|| {
                    InterpError::at(*pos, format!("assignment to undeclared `{name}`"))
                })?;
                self.ctx.write(&cell, value);
                Ok(())
            }
            Expr::Selector(base, field) => {
                let base_v = self.eval_expr(env, base)?;
                let sref = self.as_struct(base_v)?;
                let cell = sref.field(self.ctx, field);
                self.ctx.write(&cell, value);
                Ok(())
            }
            Expr::Index(base, idx) => {
                let base_v = self.eval_expr(env, base)?;
                let idx_v = self.eval_expr(env, idx)?;
                match base_v {
                    Value::Slice(s) => {
                        let i = idx_v.as_int()? as usize;
                        s.set(self.ctx, i, value);
                        Ok(())
                    }
                    Value::Map(m) => {
                        m.insert(self.ctx, Key::from_value(&idx_v)?, value);
                        Ok(())
                    }
                    other => Err(InterpError::plain(format!(
                        "cannot index-assign {}",
                        other.type_name()
                    ))),
                }
            }
            Expr::Unary { op: "*", expr } => match self.eval_expr(env, expr)? {
                Value::Pointer(cell) => {
                    self.ctx.write(&cell, value);
                    Ok(())
                }
                other => Err(InterpError::plain(format!(
                    "cannot dereference {}",
                    other.type_name()
                ))),
            },
            Expr::Paren(inner) => self.assign(env, inner, value),
            other => Err(InterpError::plain(format!(
                "unsupported assignment target {other:?}"
            ))),
        }
    }

    fn as_struct(&self, v: Value) -> EResult<StructRef> {
        match v {
            Value::Struct(s) => Ok(s),
            Value::Pointer(cell) => {
                // Auto-deref, as Go's `.` does.
                match self.ctx.read(&cell) {
                    Value::Struct(s) => Ok(s),
                    other => Err(InterpError::plain(format!(
                        "pointer to {} has no fields",
                        other.type_name()
                    ))),
                }
            }
            other => Err(InterpError::plain(format!(
                "{} has no fields",
                other.type_name()
            ))),
        }
    }

    // ---- expressions ----

    /// Evaluates `exprs` as the RHS of an assignment expecting `want`
    /// targets (spreading one multi-value call; `usize::MAX` = take all).
    fn eval_rhs_list(&self, env: &Env, exprs: &[Expr], want: usize) -> EResult<Vec<Value>> {
        if exprs.len() == 1 {
            let vals = self.eval_multi(env, &exprs[0])?;
            if want != usize::MAX && vals.len() < want {
                return Err(InterpError::plain(format!(
                    "assignment mismatch: {want} target(s), {} value(s)",
                    vals.len()
                )));
            }
            return Ok(vals);
        }
        exprs.iter().map(|e| self.eval_expr(env, e)).collect()
    }

    /// Evaluates an expression that may produce multiple values (calls,
    /// channel receives with ok).
    fn eval_multi(&self, env: &Env, e: &Expr) -> EResult<Vec<Value>> {
        match e {
            Expr::Call { .. } => self.eval_call(env, e),
            Expr::Unary { op: "<-", expr } => {
                let ch = self.expect_chan(env, expr)?;
                match ch.recv(self.ctx) {
                    RecvResult::Value(v) => Ok(vec![v, Value::Bool(true)]),
                    RecvResult::Closed => Ok(vec![Value::Nil, Value::Bool(false)]),
                }
            }
            other => Ok(vec![self.eval_expr(env, other)?]),
        }
    }

    fn eval_expr(&self, env: &Env, e: &Expr) -> EResult<Value> {
        match e {
            Expr::Ident(pos, name) => match name.as_str() {
                "true" => Ok(Value::Bool(true)),
                "false" => Ok(Value::Bool(false)),
                "nil" => Ok(Value::Nil),
                _ => {
                    if let Some(cell) = env.lookup(name) {
                        return Ok(self.ctx.read(&cell));
                    }
                    self.top_level_func(name)
                        .ok_or_else(|| InterpError::at(*pos, format!("undefined: {name}")))
                }
            },
            Expr::Int(pos, text) => text
                .replace('_', "")
                .parse::<i64>()
                .or_else(|_| i64::from_str_radix(text.trim_start_matches("0x"), 16))
                .map(Value::Int)
                .map_err(|_| InterpError::at(*pos, format!("bad integer literal {text}"))),
            Expr::Float(pos, _) => Err(InterpError::at(*pos, "floats are not supported")),
            Expr::Str(_, s) => Ok(Value::Str(Arc::from(s.as_str()))),
            Expr::Rune(_, s) => Ok(Value::Int(s.chars().next().map_or(0, |c| c as i64))),
            Expr::Paren(inner) => self.eval_expr(env, inner),
            Expr::Selector(base, field) => {
                let base_v = self.eval_expr(env, base)?;
                let sref = self.as_struct(base_v)?;
                let cell = sref.field(self.ctx, field);
                Ok(self.ctx.read(&cell))
            }
            Expr::Index(base, idx) => {
                let base_v = self.eval_expr(env, base)?;
                let idx_v = self.eval_expr(env, idx)?;
                match base_v {
                    Value::Slice(s) => {
                        let i = idx_v.as_int()? as usize;
                        Ok(s.get(self.ctx, i))
                    }
                    Value::Map(m) => {
                        let k = Key::from_value(&idx_v)?;
                        Ok(m.get(self.ctx, &k).unwrap_or(Value::Nil))
                    }
                    Value::Str(s) => {
                        let i = idx_v.as_int()? as usize;
                        Ok(Value::Int(i64::from(*s.as_bytes().get(i).unwrap_or(&0))))
                    }
                    other => Err(InterpError::plain(format!(
                        "cannot index {}",
                        other.type_name()
                    ))),
                }
            }
            Expr::SliceExpr { expr, .. } => {
                // `s[a:b]` shares the backing array; Go-lite approximates
                // with the full slice (header sharing preserved).
                self.eval_expr(env, expr)
            }
            Expr::Unary { op, expr } => match *op {
                "-" => Ok(Value::Int(-self.eval_expr(env, expr)?.as_int()?)),
                "+" => self.eval_expr(env, expr),
                "!" => Ok(Value::Bool(!self.eval_expr(env, expr)?.as_bool()?)),
                "<-" => {
                    let ch = self.expect_chan(env, expr)?;
                    match ch.recv(self.ctx) {
                        RecvResult::Value(v) => Ok(v),
                        RecvResult::Closed => Ok(Value::Nil),
                    }
                }
                "&" => self.address_of(env, expr),
                "*" => match self.eval_expr(env, expr)? {
                    Value::Pointer(cell) => Ok(self.ctx.read(&cell)),
                    other => Err(InterpError::plain(format!(
                        "cannot dereference {}",
                        other.type_name()
                    ))),
                },
                other => Err(InterpError::plain(format!("unsupported unary `{other}`"))),
            },
            Expr::Binary { op, lhs, rhs } => {
                // Short-circuit logic first.
                match *op {
                    "&&" => {
                        return Ok(Value::Bool(
                            self.eval_expr(env, lhs)?.as_bool()?
                                && self.eval_expr(env, rhs)?.as_bool()?,
                        ))
                    }
                    "||" => {
                        return Ok(Value::Bool(
                            self.eval_expr(env, lhs)?.as_bool()?
                                || self.eval_expr(env, rhs)?.as_bool()?,
                        ))
                    }
                    _ => {}
                }
                let l = self.eval_expr(env, lhs)?;
                let r = self.eval_expr(env, rhs)?;
                self.binary(op, l, r)
            }
            Expr::Call { .. } => {
                let mut vals = self.eval_call(env, e)?;
                if vals.len() == 1 {
                    Ok(vals.remove(0))
                } else if vals.is_empty() {
                    Ok(Value::Nil)
                } else {
                    Err(InterpError::plain(
                        "multi-value expression in single-value context",
                    ))
                }
            }
            Expr::FuncLit { sig, body, .. } => Ok(Value::Func(FuncValue {
                name: Arc::from("func literal"),
                sig: Arc::new((**sig).clone()),
                body: Arc::new(body.clone()),
                env: env.clone(), // capture by reference
                receiver: None,
            })),
            Expr::CompositeLit { ty, elems } => self.composite(env, ty.as_deref(), elems),
            Expr::TypeExpr(_) => Err(InterpError::plain("type used as value")),
        }
    }

    fn address_of(&self, env: &Env, expr: &Expr) -> EResult<Value> {
        match expr {
            Expr::Ident(pos, name) => {
                let cell = env
                    .lookup(name)
                    .ok_or_else(|| InterpError::at(*pos, format!("undefined: {name}")))?;
                Ok(Value::Pointer(cell))
            }
            Expr::Selector(base, field) => {
                let base_v = self.eval_expr(env, base)?;
                let sref = self.as_struct(base_v)?;
                Ok(Value::Pointer(sref.field(self.ctx, field)))
            }
            Expr::CompositeLit { .. } => {
                let v = self.eval_expr(env, expr)?;
                Ok(Value::Pointer(self.ctx.cell("&composite", v)))
            }
            other => Err(InterpError::plain(format!(
                "cannot take the address of {other:?}"
            ))),
        }
    }

    fn binary(&self, op: &str, l: Value, r: Value) -> EResult<Value> {
        Ok(match op {
            "+" => match (&l, &r) {
                (Value::Str(a), Value::Str(b)) => {
                    Value::Str(Arc::from(format!("{a}{b}").as_str()))
                }
                _ => Value::Int(l.as_int()? + r.as_int()?),
            },
            "-" => Value::Int(l.as_int()? - r.as_int()?),
            "*" => Value::Int(l.as_int()? * r.as_int()?),
            "/" => {
                let d = r.as_int()?;
                if d == 0 {
                    return Err(InterpError::plain("integer divide by zero"));
                }
                Value::Int(l.as_int()? / d)
            }
            "%" => {
                let d = r.as_int()?;
                if d == 0 {
                    return Err(InterpError::plain("integer divide by zero"));
                }
                Value::Int(l.as_int()? % d)
            }
            "&" => Value::Int(l.as_int()? & r.as_int()?),
            "|" => Value::Int(l.as_int()? | r.as_int()?),
            "^" => Value::Int(l.as_int()? ^ r.as_int()?),
            "<<" => Value::Int(l.as_int()? << r.as_int()?),
            ">>" => Value::Int(l.as_int()? >> r.as_int()?),
            "&^" => Value::Int(l.as_int()? & !r.as_int()?),
            "==" => Value::Bool(l.go_eq(&r)?),
            "!=" => Value::Bool(!l.go_eq(&r)?),
            "<" => self.compare(&l, &r, |o| o.is_lt())?,
            "<=" => self.compare(&l, &r, |o| o.is_le())?,
            ">" => self.compare(&l, &r, |o| o.is_gt())?,
            ">=" => self.compare(&l, &r, |o| o.is_ge())?,
            other => return Err(InterpError::plain(format!("unsupported operator `{other}`"))),
        })
    }

    fn compare(
        &self,
        l: &Value,
        r: &Value,
        pick: impl Fn(std::cmp::Ordering) -> bool,
    ) -> EResult<Value> {
        let ord = match (l, r) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => {
                return Err(InterpError::plain(format!(
                    "cannot order {} and {}",
                    l.type_name(),
                    r.type_name()
                )))
            }
        };
        Ok(Value::Bool(pick(ord)))
    }

    fn composite(
        &self,
        env: &Env,
        ty: Option<&Type>,
        elems: &[(Option<Expr>, Expr)],
    ) -> EResult<Value> {
        match ty {
            Some(Type::Name(name)) => {
                let fields = self
                    .shared
                    .struct_types
                    .get(name)
                    .cloned()
                    .unwrap_or_default();
                let sref = self.new_struct(name, fields);
                for (key, value_expr) in elems {
                    let field = key
                        .as_ref()
                        .and_then(Expr::as_ident)
                        .ok_or_else(|| {
                            InterpError::plain("struct literals need keyed fields")
                        })?;
                    let v = self.eval_expr(env, value_expr)?;
                    let cell = sref.field(self.ctx, field);
                    self.ctx.write(&cell, v);
                }
                Ok(Value::Struct(sref))
            }
            Some(Type::Slice(_)) | None => {
                let s = GoSlice::empty(self.ctx, "slice literal");
                for (_, value_expr) in elems {
                    let v = self.eval_expr(env, value_expr)?;
                    s.append(self.ctx, v);
                }
                Ok(Value::Slice(s))
            }
            Some(Type::Map(_, _)) => {
                let m = GoMap::make(self.ctx, "map literal");
                for (key, value_expr) in elems {
                    let k = key
                        .as_ref()
                        .ok_or_else(|| InterpError::plain("map literals need keys"))?;
                    let kv = self.eval_expr(env, k)?;
                    let v = self.eval_expr(env, value_expr)?;
                    m.insert(self.ctx, Key::from_value(&kv)?, v);
                }
                Ok(Value::Map(m))
            }
            Some(other) => Err(InterpError::plain(format!(
                "unsupported composite literal type {other:?}"
            ))),
        }
    }

    // ---- calls ----

    /// Evaluates the callee and arguments of a call for `go`/`defer`
    /// without invoking it (Go evaluates both eagerly at those sites).
    fn prepare_call(&self, env: &Env, call: &Expr, pos: Pos) -> EResult<PreparedCall> {
        let Expr::Call { func, args, .. } = call else {
            return Err(InterpError::at(pos, "expected a function call"));
        };
        let callee = self.eval_callee(env, func)?;
        let mut arg_values = Vec::with_capacity(args.len());
        for a in args {
            arg_values.push(self.eval_expr(env, a)?);
        }
        match callee {
            Callee::Func(f) => Ok(PreparedCall::Func(f, arg_values)),
            Callee::SyncMethod(recv, method) => Ok(PreparedCall::Sync(recv, method, arg_values)),
            Callee::Builtin(name)
                if matches!(name.as_str(), "close" | "panic" | "println" | "print") =>
            {
                Ok(PreparedCall::Builtin(name, arg_values))
            }
            Callee::Builtin(name) => Err(InterpError::at(
                pos,
                format!("builtin {name} cannot be used with go/defer"),
            )),
        }
    }

    /// Runs a prepared `go`/`defer` call.
    fn run_prepared(&self, prepared: PreparedCall) -> EResult<()> {
        match prepared {
            PreparedCall::Func(fv, args) => {
                self.call_function(&fv, args)?;
            }
            PreparedCall::Sync(recv, method, args) => {
                self.call_sync_method(&recv, &method, args)?;
            }
            PreparedCall::Builtin(name, args) => match name.as_str() {
                "close" => match args.first() {
                    Some(Value::Chan(c)) => c.close(self.ctx),
                    _ => return Err(InterpError::plain("close needs a channel")),
                },
                "panic" => {
                    return Err(InterpError::plain(format!(
                        "panic: {:?}",
                        args.first().cloned().unwrap_or(Value::Nil)
                    )))
                }
                "println" | "print" => {}
                other => {
                    return Err(InterpError::plain(format!(
                        "builtin {other} cannot be deferred"
                    )))
                }
            },
        }
        Ok(())
    }

    fn eval_call(&self, env: &Env, e: &Expr) -> EResult<Vec<Value>> {
        let Expr::Call { func, args, .. } = e else {
            return Err(InterpError::plain("not a call"));
        };
        match self.eval_callee(env, func)? {
            Callee::Builtin(name) => self.call_builtin(env, &name, args),
            Callee::SyncMethod(recv, method) => {
                let mut argv = Vec::new();
                for a in args {
                    argv.push(self.eval_expr(env, a)?);
                }
                self.call_sync_method(&recv, &method, argv)?;
                Ok(Vec::new())
            }
            Callee::Func(fv) => {
                let mut argv = Vec::new();
                for a in args {
                    argv.push(self.eval_expr(env, a)?);
                }
                self.call_function(&fv, argv)
            }
        }
    }

    fn eval_callee(&self, env: &Env, func: &Expr) -> EResult<Callee> {
        match func {
            Expr::Ident(_, name)
                if matches!(
                    name.as_str(),
                    "make"
                        | "new"
                        | "len"
                        | "cap"
                        | "append"
                        | "close"
                        | "delete"
                        | "panic"
                        | "println"
                        | "print"
                        | "sleep"
                        | "gosched"
                ) && env.lookup(name).is_none()
                    && !self.shared.funcs.contains_key(name.as_str()) =>
            {
                Ok(Callee::Builtin(name.clone()))
            }
            Expr::Selector(base, method) => {
                let base_v = self.eval_expr(env, base)?;
                match &base_v {
                    Value::Mutex(_) | Value::RwMutex(_) | Value::WaitGroup(_) | Value::Once(_)
                        if matches!(
                            method.as_str(),
                            "Lock" | "Unlock" | "RLock" | "RUnlock" | "Add" | "Done" | "Wait"
                                | "Do"
                        ) =>
                    {
                        Ok(Callee::SyncMethod(base_v, method.clone()))
                    }
                    Value::Struct(s) => self.method_value(&base_v, &s.type_name, method, false),
                    Value::Pointer(cell) => {
                        let inner = self.ctx.read(cell);
                        match &inner {
                            Value::Struct(s) => {
                                let tn = s.type_name.clone();
                                self.method_value(&inner, &tn, method, true)
                            }
                            Value::Mutex(_)
                            | Value::RwMutex(_)
                            | Value::WaitGroup(_)
                            | Value::Once(_) => Ok(Callee::SyncMethod(inner, method.clone())),
                            other => Err(InterpError::plain(format!(
                                "no method {method} on pointer to {}",
                                other.type_name()
                            ))),
                        }
                    }
                    Value::Func(_) => Err(InterpError::plain(format!(
                        "cannot call method {method} on a func"
                    ))),
                    other => Err(InterpError::plain(format!(
                        "no method {method} on {}",
                        other.type_name()
                    ))),
                }
            }
            other => match self.eval_expr(env, other)? {
                Value::Func(f) => Ok(Callee::Func(f)),
                v => Err(InterpError::plain(format!(
                    "cannot call {}",
                    v.type_name()
                ))),
            },
        }
    }

    /// Resolves a declared method into a bound [`FuncValue`], applying
    /// receiver value-vs-pointer semantics.
    fn method_value(
        &self,
        base: &Value,
        type_name: &str,
        method: &str,
        via_pointer: bool,
    ) -> EResult<Callee> {
        // sync.Mutex-like fields accessed through a struct use the sync
        // dispatch, so only declared methods reach here.
        let m = self
            .shared
            .methods
            .get(&(type_name.to_string(), method.to_string()))
            .ok_or_else(|| {
                InterpError::plain(format!("undefined method {type_name}.{method}"))
            })?;
        // Value receiver: the method operates on a COPY of the struct
        // (pointer receivers share). `via_pointer` callers always share the
        // underlying instance first.
        let receiver_value = if m.recv_is_ptr {
            base.clone()
        } else {
            let _ = via_pointer;
            base.deep_copy(self.ctx)
        };
        Ok(Callee::Func(FuncValue {
            name: Arc::from(format!("{type_name}.{method}").as_str()),
            sig: Arc::clone(&m.sig),
            body: Arc::clone(&m.body),
            env: self.globals.clone(),
            receiver: Some((m.recv_name.clone(), m.recv_is_ptr, Box::new(receiver_value))),
        }))
    }

    fn call_sync_method(&self, recv: &Value, method: &str, args: Vec<Value>) -> EResult<()> {
        match (recv, method) {
            (Value::Mutex(m), "Lock") => m.lock(self.ctx),
            (Value::Mutex(m), "Unlock") => m.unlock(self.ctx),
            (Value::RwMutex(m), "Lock") => m.lock(self.ctx),
            (Value::RwMutex(m), "Unlock") => m.unlock(self.ctx),
            (Value::RwMutex(m), "RLock") => m.rlock(self.ctx),
            (Value::RwMutex(m), "RUnlock") => m.runlock(self.ctx),
            (Value::WaitGroup(w), "Add") => {
                let delta = args
                    .first()
                    .ok_or_else(|| InterpError::plain("Add needs a delta"))?
                    .as_int()?;
                w.add(self.ctx, delta);
            }
            (Value::WaitGroup(w), "Done") => w.done(self.ctx),
            (Value::WaitGroup(w), "Wait") => w.wait(self.ctx),
            (Value::Once(o), "Do") => {
                let Some(Value::Func(fv)) = args.into_iter().next() else {
                    return Err(InterpError::plain("Once.Do needs a func argument"));
                };
                let mut inner: Result<(), InterpError> = Ok(());
                o.do_once(self.ctx, |_ctx| {
                    inner = self.call_function(&fv, Vec::new()).map(|_| ());
                });
                inner?;
            }
            (v, m) => {
                return Err(InterpError::plain(format!(
                    "no sync method {m} on {}",
                    v.type_name()
                )))
            }
        }
        Ok(())
    }

    fn call_builtin(&self, env: &Env, name: &str, args: &[Expr]) -> EResult<Vec<Value>> {
        match name {
            "make" => {
                let Some(Expr::TypeExpr(ty)) = args.first() else {
                    return Err(InterpError::plain("make needs a type argument"));
                };
                match ty.as_ref() {
                    Type::Slice(_) => {
                        let s = GoSlice::empty(self.ctx, "slice");
                        if let Some(n) = args.get(1) {
                            let n = self.eval_expr(env, n)?.as_int()?;
                            for _ in 0..n {
                                s.append(self.ctx, Value::Int(0));
                            }
                        }
                        Ok(vec![Value::Slice(s)])
                    }
                    Type::Map(_, _) => Ok(vec![Value::Map(GoMap::make(self.ctx, "map"))]),
                    Type::Chan(_, _) => {
                        let cap = match args.get(1) {
                            Some(c) => self.eval_expr(env, c)?.as_int()? as usize,
                            None => 0,
                        };
                        Ok(vec![Value::Chan(self.ctx.chan("chan", cap))])
                    }
                    other => Err(InterpError::plain(format!(
                        "cannot make {other:?}"
                    ))),
                }
            }
            "new" => {
                let Some(Expr::TypeExpr(ty)) = args.first() else {
                    // `new(T)` with a named type parses as a normal ident
                    // argument; resolve it as a type name.
                    if let Some(Expr::Ident(_, tn)) = args.first() {
                        let zero = self.zero_value(&Type::Name(tn.clone()));
                        return Ok(vec![Value::Pointer(self.ctx.cell("new", zero))]);
                    }
                    return Err(InterpError::plain("new needs a type argument"));
                };
                let zero = self.zero_value(ty);
                Ok(vec![Value::Pointer(self.ctx.cell("new", zero))])
            }
            "len" | "cap" => {
                let v = self.eval_expr(env, &args[0])?;
                let n = match v {
                    Value::Slice(s) => s.len(self.ctx) as i64,
                    Value::Map(m) => m.len(self.ctx) as i64,
                    Value::Str(s) => s.len() as i64,
                    other => {
                        return Err(InterpError::plain(format!(
                            "len of {}",
                            other.type_name()
                        )))
                    }
                };
                Ok(vec![Value::Int(n)])
            }
            "append" => {
                let base = self.eval_expr(env, &args[0])?;
                let Value::Slice(s) = base else {
                    return Err(InterpError::plain("append needs a slice"));
                };
                for a in &args[1..] {
                    let v = self.eval_expr(env, a)?;
                    s.append(self.ctx, v);
                }
                Ok(vec![Value::Slice(s)])
            }
            "close" => {
                let Value::Chan(c) = self.eval_expr(env, &args[0])? else {
                    return Err(InterpError::plain("close needs a channel"));
                };
                c.close(self.ctx);
                Ok(Vec::new())
            }
            "delete" => {
                let Value::Map(m) = self.eval_expr(env, &args[0])? else {
                    return Err(InterpError::plain("delete needs a map"));
                };
                let k = self.eval_expr(env, &args[1])?;
                m.delete(self.ctx, &Key::from_value(&k)?);
                Ok(Vec::new())
            }
            "panic" => {
                let v = self.eval_expr(env, &args[0])?;
                Err(InterpError::plain(format!("panic: {v:?}")))
            }
            "println" | "print" => {
                // Evaluate for effect; output is suppressed to keep
                // explorer runs quiet.
                for a in args {
                    let _ = self.eval_expr(env, a)?;
                }
                Ok(Vec::new())
            }
            "sleep" => {
                let n = self.eval_expr(env, &args[0])?.as_int()?;
                self.ctx.sleep(n.clamp(0, 1000) as u32);
                Ok(Vec::new())
            }
            "gosched" => {
                self.ctx.gosched();
                Ok(Vec::new())
            }
            other => Err(InterpError::plain(format!("unknown builtin {other}"))),
        }
    }
}

enum Callee {
    Func(FuncValue),
    Builtin(String),
    SyncMethod(Value, String),
}
