//! **grs-interp**: executes Go-lite programs on the instrumented runtime.
//!
//! This crate closes the loop between the project's two analysis routes:
//! the `grs-golite` frontend *parses* real Go source, and this interpreter
//! *runs* it on the `grs-runtime` substrate — every interpreted variable is
//! an instrumented cell, every goroutine a scheduled runtime goroutine — so
//! a race written in Go syntax is caught by the same dynamic detectors as
//! the hand-built pattern corpus.
//!
//! Fidelity highlights (each reproduces a §4 mechanism of the paper):
//!
//! * closures capture free variables **by reference** (shared cells),
//! * `:=` reuses a same-scope variable (the `err` idiom, Listing 2),
//! * `range` loop variables are one cell per loop (Listing 1),
//! * named results are written by `return expr` and visible to `defer`
//!   (Listings 3–4),
//! * value-typed parameters (structs, `sync.Mutex`) are deep-copied at
//!   call sites — a copied mutex is an independent lock (Listing 7),
//! * maps and slices are the runtime's thread-unsafe [`GoMap`]/[`GoSlice`]
//!   (Observations 4–5).
//!
//! Known simplifications (documented divergences): slicing `s[a:b]`
//! returns the whole slice (header sharing preserved), zero-value maps are
//! empty rather than nil, floats are unsupported, `select` polls arms in
//! source order, and select-less-forever programs exhaust the step budget
//! instead of reporting a deadlock.
//!
//! [`GoMap`]: grs_runtime::GoMap
//! [`GoSlice`]: grs_runtime::GoSlice
//!
//! # Example
//!
//! ```
//! use grs_detector::Tsan;
//! use grs_interp::Interp;
//! use grs_runtime::{RunConfig, Runtime};
//!
//! let interp = Interp::from_source(r#"
//! package main
//!
//! func main() {
//!     total := 0
//!     var wg sync.WaitGroup
//!     wg.Add(2)
//!     for i := 0; i < 2; i = i + 1 {
//!         go func() {
//!             total = total + 1
//!             wg.Done()
//!         }()
//!     }
//!     wg.Wait()
//! }
//! "#).expect("compiles");
//! let program = interp.program("counter", "main");
//! let (outcome, tsan) = Runtime::new(RunConfig::with_seed(3)).run(&program, Tsan::new());
//! assert!(outcome.is_clean());
//! // `total = total + 1` is unsynchronized: some seeds catch it.
//! let _maybe_race = tsan.reports();
//! ```

pub mod env;
pub mod interp;
pub mod value;

pub use env::Env;
pub use interp::Interp;
pub use value::{FuncValue, Key, StructRef, Value};

use grs_golite::token::Pos;

/// An interpretation error (undefined names, type mismatches, `panic()`).
///
/// At a goroutine boundary these become runtime panics, which the
/// scheduler records as [`grs_runtime::RuntimeError::GoroutinePanic`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpError {
    /// Source position, when known.
    pub pos: Option<Pos>,
    /// What went wrong.
    pub message: String,
}

impl InterpError {
    /// An error without a position.
    #[must_use]
    pub fn plain(message: impl Into<String>) -> Self {
        InterpError {
            pos: None,
            message: message.into(),
        }
    }

    /// An error at a position.
    #[must_use]
    pub fn at(pos: Pos, message: impl Into<String>) -> Self {
        InterpError {
            pos: Some(pos),
            message: message.into(),
        }
    }

    /// Attaches a position if none is set.
    #[must_use]
    pub fn with_pos(mut self, pos: Pos) -> Self {
        self.pos.get_or_insert(pos);
        self
    }
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.pos {
            Some(p) => write!(f, "{p}: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for InterpError {}

/// Which stage of the source→[`Program`](grs_runtime::Program) pipeline
/// rejected a unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompilePhase {
    /// Lexing/parsing failed — the source is not Go-lite.
    Parse,
    /// The parsed file cannot be lowered into a runnable program (e.g. no
    /// entry function).
    Lower,
}

impl std::fmt::Display for CompilePhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CompilePhase::Parse => "parse",
            CompilePhase::Lower => "lower",
        })
    }
}

/// A structured per-unit compile failure.
///
/// This is the campaign-scale error surface: at 100K source units a bad
/// unit must become a *skip record* — counted, named, and reported — not a
/// panic that takes the worker down. [`Interp::compile`] and
/// [`Interp::program_checked`] return it instead of unwinding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// The stage that failed.
    pub phase: CompilePhase,
    /// Source position, when the failure has one.
    pub pos: Option<Pos>,
    /// What went wrong.
    pub message: String,
}

impl CompileError {
    /// A parse-phase error.
    #[must_use]
    pub fn parse(pos: Option<Pos>, message: impl Into<String>) -> Self {
        CompileError {
            phase: CompilePhase::Parse,
            pos,
            message: message.into(),
        }
    }

    /// A lower-phase error.
    #[must_use]
    pub fn lower(message: impl Into<String>) -> Self {
        CompileError {
            phase: CompilePhase::Lower,
            pos: None,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.pos {
            Some(p) => write!(f, "{}: {p}: {}", self.phase, self.message),
            None => write!(f, "{}: {}", self.phase, self.message),
        }
    }
}

impl std::error::Error for CompileError {}
